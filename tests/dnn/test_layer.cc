/**
 * @file
 * Layer descriptors: shapes, MACs, parameters.
 */

#include <gtest/gtest.h>

#include "dnn/layer.hh"

using namespace bfree::dnn;

TEST(ConvLayer, OutputShapeWithPadding)
{
    const Layer l = make_conv("c", {3, 32, 32}, 16, 3, 1, 1);
    const FeatureShape out = l.outputShape();
    EXPECT_EQ(out.c, 16u);
    EXPECT_EQ(out.h, 32u);
    EXPECT_EQ(out.w, 32u);
}

TEST(ConvLayer, OutputShapeStrided)
{
    const Layer l = make_conv("c", {3, 224, 224}, 64, 7, 2, 3);
    const FeatureShape out = l.outputShape();
    EXPECT_EQ(out.h, 112u);
    EXPECT_EQ(out.w, 112u);
}

TEST(ConvLayer, MacsAndParamsHandComputed)
{
    // 3x3 conv, 3 -> 16 channels, 32x32 output:
    // macs = 32*32*16*3*3*3 = 442368; params = 16*3*3*3 + 16 = 448.
    const Layer l = make_conv("c", {3, 32, 32}, 16, 3, 1, 1);
    EXPECT_EQ(l.macs(), 442368u);
    EXPECT_EQ(l.params(), 448u);
}

TEST(ConvLayer, AsymmetricKernels)
{
    // Inception's 1x7 factorization.
    const Layer l = make_conv2("c", {192, 17, 17}, 192, 1, 7, 1, 0, 3);
    const FeatureShape out = l.outputShape();
    EXPECT_EQ(out.h, 17u);
    EXPECT_EQ(out.w, 17u);
    EXPECT_EQ(l.params(), 192u * 192 * 7 + 192);
}

TEST(FcLayer, MacsParamsShape)
{
    const Layer l = make_fc("fc", 4096, 1000);
    EXPECT_EQ(l.macs(), 4096u * 1000);
    EXPECT_EQ(l.params(), 4096u * 1000 + 1000);
    EXPECT_EQ(l.outputShape().c, 1000u);
}

TEST(FcLayer, RowBatchingScalesMacsNotParams)
{
    Layer l = make_fc("ff", 768, 3072);
    l.fcRows = 128;
    EXPECT_EQ(l.macs(), 128ull * 768 * 3072);
    EXPECT_EQ(l.params(), 768ull * 3072 + 3072);
    EXPECT_EQ(l.inputBytes(), 128ull * 768);
    EXPECT_EQ(l.outputBytes(), 128ull * 3072);
}

TEST(PoolLayer, ShapesAndNoMacs)
{
    const Layer l =
        make_pool("p", LayerKind::MaxPool, {64, 112, 112}, 2, 2);
    const FeatureShape out = l.outputShape();
    EXPECT_EQ(out.c, 64u);
    EXPECT_EQ(out.h, 56u);
    EXPECT_EQ(l.macs(), 0u);
    EXPECT_GT(l.specialOps(), 0u);
    EXPECT_FALSE(l.isComputeLayer());
}

TEST(LstmLayer, FourGates)
{
    const Layer l = make_lstm_cell("cell", 39, 1024);
    EXPECT_EQ(l.macs(), 4ull * (39 + 1024) * 1024);
    EXPECT_EQ(l.params(), 4ull * (39 + 1024) * 1024 + 4ull * 1024);
    EXPECT_EQ(l.outputShape().c, 1024u);
}

TEST(AttentionLayer, ProjectionsAndScores)
{
    const Layer l = make_attention("attn", 128, 768, 12);
    // 4 s d^2 + 2 s^2 d.
    EXPECT_EQ(l.macs(),
              4ull * 128 * 768 * 768 + 2ull * 128 * 128 * 768);
    EXPECT_EQ(l.params(), 4ull * 768 * 768 + 4ull * 768);
}

TEST(ActivationLayers, PassThroughShapes)
{
    const Layer relu =
        make_activation("r", LayerKind::Relu, {64, 10, 10});
    EXPECT_EQ(relu.outputShape(), (FeatureShape{64, 10, 10}));
    EXPECT_EQ(relu.macs(), 0u);
    EXPECT_EQ(relu.specialOps(), 6400u);

    const Layer sm =
        make_activation("s", LayerKind::Softmax, {1000, 1, 1});
    EXPECT_EQ(sm.specialOps(), 2000u); // exp + divide per element
}

TEST(WeightBytes, FourBitHalvesStorage)
{
    Layer l = make_fc("fc", 256, 256);
    l.precisionBits = 8;
    const auto b8 = l.weightBytes();
    l.precisionBits = 4;
    EXPECT_EQ(l.weightBytes(), b8 / 2);
}

TEST(LayerKindNames, Stable)
{
    EXPECT_STREQ(layer_kind_name(LayerKind::Conv), "conv");
    EXPECT_STREQ(layer_kind_name(LayerKind::Attention), "attention");
    EXPECT_STREQ(layer_kind_name(LayerKind::LstmCell), "lstm");
}

TEST(LayerDeath, KernelLargerThanInputIsFatal)
{
    const Layer l = make_conv("bad", {3, 2, 2}, 8, 5, 1, 0);
    EXPECT_DEATH((void)l.outputShape(), "larger than");
}
