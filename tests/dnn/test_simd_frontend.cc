/**
 * @file
 * Differential proof that the vectorized front half of the tiered
 * datapath — quantize_span and the row-run im2col patch extraction —
 * is byte-identical to the scalar reference at every SIMD level this
 * binary carries: random and tie-boundary values, ragged span lengths
 * straddling every vector width, misaligned buffers, and conv shapes
 * with odd extents and stride/pad edges. Exactness here is what lets
 * the whole pipeline claim bit-parity with the legacy path.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bce/simd_kernels.hh"
#include "dnn/im2col.hh"
#include "dnn/layer.hh"
#include "dnn/quantize.hh"
#include "dnn/tensor.hh"
#include "sim/cpuid.hh"
#include "sim/random.hh"

using namespace bfree;
using namespace bfree::dnn;

namespace {

/** Run @p body per runnable SIMD level; restores the resolved level. */
template <typename Body>
void
for_each_runnable_level(Body &&body)
{
    for (const sim::SimdLevel level :
         {sim::SimdLevel::Scalar, sim::SimdLevel::Sse42,
          sim::SimdLevel::Neon, sim::SimdLevel::Avx2,
          sim::SimdLevel::Avx512}) {
        if (!sim::simd_level_compiled(level)
            || !sim::simd_level_supported(level))
            continue;
        sim::force_simd_level(level);
        body(level);
    }
    sim::reset_simd_level();
}

/** Element-by-element scalar reference of quantize_span. */
std::vector<std::int8_t>
quantize_scalar(const SymQuant &sq, const float *in, std::size_t n)
{
    std::vector<std::int8_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::int8_t>(sq.q(in[i]));
    return out;
}

void
expect_span_matches_scalar(const SymQuant &sq,
                           const std::vector<float> &in,
                           const std::string &ctx)
{
    const std::vector<std::int8_t> want =
        quantize_scalar(sq, in.data(), in.size());
    std::vector<std::int8_t> got(in.size() + 1, 127);
    quantize_span(sq, in.data(), in.size(), got.data());
    for (std::size_t i = 0; i < in.size(); ++i)
        ASSERT_EQ(want[i], got[i]) << ctx << " element " << i << " = "
                                   << in[i];
    EXPECT_EQ(127, got[in.size()]) << ctx << " wrote past the span";
}

} // namespace

// ---------------------------------------------------------------------
// quantize_span
// ---------------------------------------------------------------------

TEST(QuantizeSpan, RandomValuesExactAtEveryLevel)
{
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        sim::Rng rng(91);
        for (const double scale : {0.013, 1.0, 0.7311}) {
            SymQuant sq;
            sq.scale = scale;
            std::vector<float> in(1000);
            for (float &v : in)
                v = static_cast<float>(rng.uniformReal(-3.0, 3.0));
            expect_span_matches_scalar(sq, in, ctx);
        }
    });
}

TEST(QuantizeSpan, TieBoundariesExactAtEveryLevel)
{
    // Values landing exactly on .5 multiples of the scale are where a
    // naive add-then-truncate rounding diverges from lround; pin them
    // alongside signed zeros and clamp-edge values.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        SymQuant sq;
        sq.scale = 0.25; // ties representable exactly in binary
        std::vector<float> in;
        for (int k = -300; k <= 300; ++k)
            in.push_back(static_cast<float>(k) * 0.125f);
        in.push_back(0.0f);
        in.push_back(-0.0f);
        in.push_back(1000.0f);  // far past the clamp
        in.push_back(-1000.0f);
        expect_span_matches_scalar(sq, in, ctx);
    });
}

TEST(QuantizeSpan, RaggedLengthsExactAtEveryLevel)
{
    // Lengths 0..67 straddle the 4/8/16-lane widths and every tail
    // remainder shape.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        sim::Rng rng(92);
        SymQuant sq;
        sq.scale = 0.05;
        for (std::size_t len = 0; len <= 67; ++len) {
            std::vector<float> in(len);
            for (float &v : in)
                v = static_cast<float>(rng.uniformReal(-8.0, 8.0));
            expect_span_matches_scalar(
                sq, in, ctx + " len " + std::to_string(len));
        }
    });
}

TEST(QuantizeSpan, MisalignedBuffersExactAtEveryLevel)
{
    // The span contract promises arbitrary alignment: shift both the
    // float source and the int8 destination off every natural
    // boundary.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        sim::Rng rng(93);
        SymQuant sq;
        sq.scale = 0.031;
        std::vector<float> backing(256 + 16);
        for (float &v : backing)
            v = static_cast<float>(rng.uniformReal(-4.0, 4.0));
        for (std::size_t off = 0; off < 8; ++off) {
            const float *src = backing.data() + off;
            const std::size_t n = 128 + off;
            const std::vector<std::int8_t> want =
                quantize_scalar(sq, src, n);
            std::vector<std::int8_t> sink(n + 16, 0);
            std::int8_t *dst = sink.data() + (off % 5) + 1;
            quantize_span(sq, src, n, dst);
            ASSERT_EQ(0, std::memcmp(want.data(), dst, n))
                << ctx << " offset " << off;
        }
    });
}

TEST(QuantizeSpanDeath, WideLimitPanics)
{
    // The int8 span form cannot represent 16-bit quantization; the
    // caller keeps the legacy truncating loop there instead.
    SymQuant sq;
    sq.limit = 32767;
    const float v = 1.0f;
    std::int8_t out = 0;
    EXPECT_DEATH(quantize_span(sq, &v, 1, &out),
                 "exceeds the int8 domain");
}

// ---------------------------------------------------------------------
// im2col patch extraction
// ---------------------------------------------------------------------

namespace {

/**
 * The legacy per-element patch fill the row-run form replaced: walk
 * (c, kh, kw), quantizing each in-bounds tap and zeroing padding.
 * Padded taps quantize to 0 because q(0) == 0 for every scale.
 */
void
reference_patch(const Layer &l, const SymQuant &sq, const float *in,
                unsigned oh, unsigned ow, std::int8_t *patch)
{
    std::size_t idx = 0;
    for (unsigned c = 0; c < l.input.c; ++c) {
        for (unsigned r = 0; r < l.kernelH; ++r) {
            for (unsigned s = 0; s < l.kernelW; ++s) {
                const int ih = static_cast<int>(oh * l.strideH + r)
                               - static_cast<int>(l.padH);
                const int iw = static_cast<int>(ow * l.strideW + s)
                               - static_cast<int>(l.padW);
                float v = 0.0f;
                if (ih >= 0 && ih < static_cast<int>(l.input.h)
                    && iw >= 0 && iw < static_cast<int>(l.input.w))
                    v = in[(static_cast<std::size_t>(c) * l.input.h
                            + static_cast<std::size_t>(ih))
                               * l.input.w
                           + static_cast<std::size_t>(iw)];
                patch[idx++] = static_cast<std::int8_t>(sq.q(v));
            }
        }
    }
}

void
expect_patches_match(const Layer &l, const std::string &ctx)
{
    sim::Rng rng(94);
    const std::size_t in_elems = l.input.elements();
    std::vector<float> in(in_elems);
    for (float &v : in)
        v = static_cast<float>(rng.uniformReal(-2.0, 2.0));

    SymQuant sq;
    sq.scale = 0.02;

    // The production pipeline: quantize the whole plane once, then
    // extract int8 patches with the row-run copies.
    std::vector<std::int8_t> qin(in_elems);
    quantize_span(sq, in.data(), in_elems, qin.data());

    const std::size_t patch_len =
        std::size_t(l.input.c) * l.kernelH * l.kernelW;
    std::vector<std::int8_t> got(patch_len), want(patch_len);
    const FeatureShape out = l.outputShape();
    for (unsigned oh = 0; oh < out.h; ++oh) {
        for (unsigned ow = 0; ow < out.w; ++ow) {
            im2col_patch_i8(l, qin.data(), oh, ow, got.data());
            reference_patch(l, sq, in.data(), oh, ow, want.data());
            ASSERT_EQ(0,
                      std::memcmp(want.data(), got.data(), patch_len))
                << ctx << " patch (" << oh << ", " << ow << ")";
        }
    }
}

} // namespace

TEST(Im2ColPatchI8, RaggedShapesExactAtEveryLevel)
{
    // Odd extents, stride/pad edges, kernels larger than the padded
    // border, channel counts off every lane multiple, and asymmetric
    // kernels. Each case runs at every SIMD level because the
    // quantized plane feeding the patch walk comes from quantize_span.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        const Layer cases[] = {
            make_conv("odd", {3, 7, 7}, 4, 3, 1, 1),
            make_conv("stride", {5, 9, 9}, 4, 3, 2, 0),
            make_conv("pad2", {2, 5, 5}, 4, 5, 1, 2),
            make_conv("tiny", {1, 1, 1}, 1, 1, 1, 0),
            make_conv("lanes", {17, 6, 6}, 4, 3, 1, 1),
            make_conv("wide-pad", {3, 4, 4}, 2, 4, 3, 3),
            make_conv("k-gt-input", {2, 3, 3}, 2, 5, 1, 2),
            make_conv("stride3", {3, 11, 11}, 2, 2, 3, 0),
            make_conv2("asym", {3, 8, 5}, 2, 1, 7, 1, 0, 3),
            make_conv2("asym2", {2, 9, 9}, 2, 7, 1, 2, 3, 0),
            make_conv2("asym-pad", {2, 6, 6}, 2, 3, 3, 2, 2, 0),
        };
        for (const Layer &l : cases)
            expect_patches_match(l, ctx + " " + l.name);
    });
}

TEST(Im2ColFloat, RowRunMatchesElementwiseReferenceExactly)
{
    // The float im2col must stay bitwise equal to the elementwise
    // walk (memcpy moves the very same values), not merely close.
    const Layer cases[] = {
        make_conv("c1", {3, 7, 7}, 4, 3, 1, 1),
        make_conv("c2", {2, 5, 5}, 4, 5, 2, 2),
        make_conv2("c3", {3, 8, 5}, 2, 1, 7, 1, 0, 3),
    };
    for (const Layer &l : cases) {
        sim::Rng rng(95);
        FloatTensor input({l.input.c, l.input.h, l.input.w});
        input.fillUniform(rng, -1.0, 1.0);

        const FloatTensor got = im2col(l, input);

        const FeatureShape out = l.outputShape();
        const std::size_t patch_len =
            std::size_t(l.input.c) * l.kernelH * l.kernelW;
        for (unsigned oh = 0; oh < out.h; ++oh) {
            for (unsigned ow = 0; ow < out.w; ++ow) {
                const std::size_t row =
                    std::size_t(oh) * out.w + ow;
                std::size_t idx = 0;
                for (unsigned c = 0; c < l.input.c; ++c) {
                    for (unsigned r = 0; r < l.kernelH; ++r) {
                        for (unsigned s = 0; s < l.kernelW; ++s) {
                            const int ih =
                                static_cast<int>(oh * l.strideH + r)
                                - static_cast<int>(l.padH);
                            const int iw =
                                static_cast<int>(ow * l.strideW + s)
                                - static_cast<int>(l.padW);
                            float want = 0.0f;
                            if (ih >= 0
                                && ih < static_cast<int>(l.input.h)
                                && iw >= 0
                                && iw < static_cast<int>(l.input.w))
                                want = input.at(
                                    c, static_cast<unsigned>(ih),
                                    static_cast<unsigned>(iw));
                            ASSERT_EQ(want, got.at(row, idx))
                                << l.name << " (" << oh << "," << ow
                                << ") tap " << idx;
                            ++idx;
                        }
                    }
                }
                ASSERT_EQ(patch_len, idx);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fused quantize-into-im2col
// ---------------------------------------------------------------------

namespace {

/** The conv shapes every front end must agree on: stride > 1, stride >
 *  kernel (the fused policy shape), asymmetric kernels AND paddings,
 *  kernels larger than the input, 1x1, and lane-straddling channel
 *  counts. */
std::vector<Layer>
frontend_cases()
{
    return {
        make_conv("odd", {3, 7, 7}, 4, 3, 1, 1),
        make_conv("stride", {5, 9, 9}, 4, 3, 2, 0),
        make_conv("stride3", {3, 11, 11}, 2, 2, 3, 0),
        make_conv("pad2", {2, 5, 5}, 4, 5, 1, 2),
        make_conv("tiny", {1, 1, 1}, 1, 1, 1, 0),
        make_conv("one-by-one", {9, 5, 5}, 3, 1, 1, 0),
        make_conv("lanes", {17, 6, 6}, 4, 3, 1, 1),
        make_conv("k-gt-input", {2, 3, 3}, 2, 5, 1, 2),
        make_conv2("asym", {3, 8, 5}, 2, 1, 7, 1, 0, 3),
        make_conv2("asym-pad", {2, 6, 6}, 2, 3, 3, 2, 2, 0),
    };
}

} // namespace

TEST(Im2ColQuantizePatch, FusedMatchesLegacyBytesAtEveryLevel)
{
    // The fused front end must produce the exact bytes of the legacy
    // quantize-plane-then-copy pipeline AND the per-element reference,
    // at every SIMD level, for every edge shape — this byte identity
    // is what makes forcing any front-end mode safe anywhere.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        for (const Layer &l : frontend_cases()) {
            sim::Rng rng(96);
            const std::size_t in_elems = l.input.elements();
            std::vector<float> in(in_elems);
            for (float &v : in)
                v = static_cast<float>(rng.uniformReal(-2.0, 2.0));

            SymQuant sq;
            sq.scale = 0.02;
            std::vector<std::int8_t> qin(in_elems);
            quantize_span(sq, in.data(), in_elems, qin.data());

            const std::size_t patch_len =
                std::size_t(l.input.c) * l.kernelH * l.kernelW;
            std::vector<std::int8_t> fused(patch_len + 1, 127);
            std::vector<std::int8_t> legacy(patch_len);
            std::vector<std::int8_t> ref(patch_len);
            const FeatureShape out = l.outputShape();
            for (unsigned oh = 0; oh < out.h; ++oh) {
                for (unsigned ow = 0; ow < out.w; ++ow) {
                    im2col_quantize_patch(l, sq, in.data(), oh, ow,
                                          fused.data());
                    im2col_patch_i8(l, qin.data(), oh, ow,
                                    legacy.data());
                    reference_patch(l, sq, in.data(), oh, ow,
                                    ref.data());
                    ASSERT_EQ(0, std::memcmp(legacy.data(),
                                             fused.data(), patch_len))
                        << ctx << " " << l.name << " fused!=legacy ("
                        << oh << "," << ow << ")";
                    ASSERT_EQ(0, std::memcmp(ref.data(), fused.data(),
                                             patch_len))
                        << ctx << " " << l.name << " fused!=ref ("
                        << oh << "," << ow << ")";
                    ASSERT_EQ(127, fused[patch_len])
                        << ctx << " " << l.name
                        << " wrote past the patch";
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Elided addressing: SpanView materialization over the staged plane
// ---------------------------------------------------------------------

namespace {

using bce::simd::SpanView;

/** Run the whole elided pipeline for @p l and compare every patch,
 *  both through per-patch materialize_span_view and the row-block
 *  materialize_span_block, against im2col_patch_i8. */
void
expect_elision_matches(const Layer &l, bool slack8,
                       const std::string &ctx)
{
    constexpr std::size_t slack = SpanView::slackBytes;
    sim::Rng rng(97);
    const std::size_t in_elems = l.input.elements();
    std::vector<float> in(in_elems);
    for (float &v : in)
        v = static_cast<float>(rng.uniformReal(-2.0, 2.0));

    SymQuant sq;
    sq.scale = 0.02;
    std::vector<std::int8_t> qin(in_elems + slack, 0);
    quantize_span(sq, in.data(), in_elems, qin.data());

    const ElisionLayout el = elision_layout(l);
    std::vector<std::int8_t> staging;
    const std::int8_t *plane = qin.data();
    if (el.staged) {
        staging.assign(el.stagingBytes + slack, 55);
        stage_plane_i8(l, qin.data(), staging.data());
        plane = staging.data();
    }
    std::vector<std::int32_t> offsets(el.nRuns);
    elided_offsets(l, offsets.data());

    SpanView view;
    view.offsets = offsets.data();
    view.nRuns = el.nRuns;
    view.runLen = el.runLen;
    view.slack8 = slack8;

    const std::size_t patch_len =
        std::size_t(l.input.c) * l.kernelH * l.kernelW;
    ASSERT_EQ(patch_len, view.len()) << ctx;
    const FeatureShape out = l.outputShape();
    std::vector<std::int8_t> want(patch_len);
    std::vector<std::int8_t> one(patch_len + slack);
    std::vector<std::int8_t> row(std::size_t(out.w) * patch_len
                                 + slack);
    for (unsigned oh = 0; oh < out.h; ++oh) {
        view.base = plane
                    + std::size_t(oh) * l.strideH * el.rowBytes;
        bce::simd::materialize_span_block(view, out.w, l.strideW,
                                          row.data(), patch_len);
        for (unsigned ow = 0; ow < out.w; ++ow) {
            im2col_patch_i8(l, qin.data(), oh, ow, want.data());
            SpanView pv = view;
            pv.base = view.base + std::size_t(ow) * l.strideW;
            bce::simd::materialize_span_view(pv, one.data());
            ASSERT_EQ(0, std::memcmp(want.data(), one.data(),
                                     patch_len))
                << ctx << " " << l.name << " view (" << oh << ","
                << ow << ")";
            ASSERT_EQ(0,
                      std::memcmp(want.data(),
                                  row.data()
                                      + std::size_t(ow) * patch_len,
                                  patch_len))
                << ctx << " " << l.name << " block (" << oh << ","
                << ow << ")";
        }
    }
}

} // namespace

TEST(SpanViewElision, ReproducesPatchBytesAtEveryLevel)
{
    // Staged (padded) and in-place layouts, slack8 fast path and
    // exact-width path, against the row-run patch copies the span
    // kernels otherwise consume.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        for (const Layer &l : frontend_cases())
            for (const bool slack8 : {false, true})
                expect_elision_matches(
                    l, slack8,
                    ctx + (slack8 ? " slack8" : " exact"));
    });
}

TEST(SpanViewBlock, SpillStaysInsidePatchSlots)
{
    // The transposed block loop's regression shape: 3-byte runs in a
    // 9-byte patch slot, where an 8-byte copy from run 1 on would
    // cross into the NEXT patch's already-written bytes. Every byte of
    // every slot must match the per-patch exact materialization.
    constexpr std::size_t slack = SpanView::slackBytes;
    const std::size_t nRuns = 3, runLen = 3, nPatches = 5;
    const std::size_t patchLen = nRuns * runLen;
    std::vector<std::int8_t> plane(64 + slack);
    for (std::size_t i = 0; i < plane.size(); ++i)
        plane[i] = static_cast<std::int8_t>(i * 7 + 3);
    const std::int32_t offsets[3] = {0, 17, 40};

    SpanView view;
    view.base = plane.data();
    view.offsets = offsets;
    view.nRuns = nRuns;
    view.runLen = runLen;

    std::vector<std::int8_t> want(nPatches * patchLen + slack, 0);
    std::vector<std::int8_t> got(nPatches * patchLen + slack, 0);
    view.slack8 = false;
    bce::simd::materialize_span_block(view, nPatches, 2, want.data(),
                                      patchLen);
    view.slack8 = true;
    bce::simd::materialize_span_block(view, nPatches, 2, got.data(),
                                      patchLen);
    ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                             nPatches * patchLen));
}

TEST(SpanViewStride, UniformStrideAddressingMatchesOffsets)
{
    // offsets == null selects base + i * stride addressing; both forms
    // must materialize the same bytes.
    constexpr std::size_t slack = SpanView::slackBytes;
    const std::size_t nRuns = 6, runLen = 5, stride = 11;
    std::vector<std::int8_t> plane(stride * nRuns + slack);
    for (std::size_t i = 0; i < plane.size(); ++i)
        plane[i] = static_cast<std::int8_t>(i * 13 + 1);
    std::vector<std::int32_t> offsets(nRuns);
    for (std::size_t i = 0; i < nRuns; ++i)
        offsets[i] = static_cast<std::int32_t>(i * stride);

    SpanView byStride;
    byStride.base = plane.data();
    byStride.stride = stride;
    byStride.nRuns = nRuns;
    byStride.runLen = runLen;

    SpanView byOffsets = byStride;
    byOffsets.stride = 0;
    byOffsets.offsets = offsets.data();

    for (const bool slack8 : {false, true}) {
        std::vector<std::int8_t> a(nRuns * runLen + slack, 9);
        std::vector<std::int8_t> b(nRuns * runLen + slack, 9);
        SpanView va = byStride;
        SpanView vb = byOffsets;
        va.slack8 = slack8;
        vb.slack8 = slack8;
        bce::simd::materialize_span_view(va, a.data());
        bce::simd::materialize_span_view(vb, b.data());
        ASSERT_EQ(0,
                  std::memcmp(a.data(), b.data(), nRuns * runLen))
            << (slack8 ? "slack8" : "exact");
    }
}
