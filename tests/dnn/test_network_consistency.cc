/**
 * @file
 * Builder coherence: in the sequential networks every layer's declared
 * input shape must equal its predecessor's output; transformers must
 * be internally consistent in (seq, d_model).
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"

using namespace bfree::dnn;

namespace {

/** Walk a sequential (unbranched) network checking shape chaining. */
void
check_sequential(const Network &net)
{
    FeatureShape current = net.input();
    for (const Layer &l : net.layers()) {
        switch (l.kind) {
          case LayerKind::Conv:
          case LayerKind::MaxPool:
          case LayerKind::AvgPool:
          case LayerKind::Relu:
          case LayerKind::Sigmoid:
          case LayerKind::Tanh:
            EXPECT_EQ(l.input, current) << l.name;
            current = l.outputShape();
            break;
          case LayerKind::Softmax:
            EXPECT_EQ(l.input.elements(), current.elements())
                << l.name;
            current = l.outputShape();
            break;
          case LayerKind::Fc:
            // FC flattens whatever precedes it.
            EXPECT_EQ(std::uint64_t(l.inFeatures), current.elements())
                << l.name;
            current = l.outputShape();
            break;
          default:
            FAIL() << "unexpected layer kind in sequential net: "
                   << l.name;
        }
    }
}

} // namespace

TEST(NetworkConsistency, Vgg16ChainsExactly)
{
    check_sequential(make_vgg16());
}

TEST(NetworkConsistency, TinyCnnChainsExactly)
{
    check_sequential(make_tiny_cnn());
}

TEST(NetworkConsistency, BertLayersAgreeOnModelShape)
{
    for (const Network &net : {make_bert_base(), make_bert_large()}) {
        unsigned d_model = 0;
        unsigned seq = 0;
        for (const Layer &l : net.layers()) {
            if (l.kind == LayerKind::Attention) {
                if (d_model == 0) {
                    d_model = l.dModel;
                    seq = l.seqLen;
                }
                EXPECT_EQ(l.dModel, d_model) << l.name;
                EXPECT_EQ(l.seqLen, seq) << l.name;
            }
            if (l.kind == LayerKind::LayerNorm) {
                EXPECT_EQ(l.dModel, d_model) << l.name;
                EXPECT_EQ(l.seqLen, seq) << l.name;
            }
            if (l.kind == LayerKind::Fc) {
                // FFN shapes: d -> 4d -> d.
                EXPECT_TRUE((l.inFeatures == d_model
                             && l.outFeatures == 4 * d_model)
                            || (l.inFeatures == 4 * d_model
                                && l.outFeatures == d_model))
                    << l.name;
                EXPECT_EQ(l.fcRows, seq) << l.name;
            }
        }
        EXPECT_GT(d_model, 0u);
    }
}

TEST(NetworkConsistency, InceptionConcatenationsAddUp)
{
    // Every Inception block's branch outputs are concatenated; the
    // builder encodes the concatenated channel count in the next
    // block's input. Verify the totals are consistent at the known
    // stage boundaries.
    const Network net = make_inception_v3();
    // Find the first layer of each named stage and check its input
    // channels (torchvision's well-known values).
    struct Expect
    {
        const char *layer;
        unsigned in_c;
    };
    const Expect expectations[] = {
        {"mixed5b.b1x1", 192},  {"mixed5c.b1x1", 256},
        {"mixed5d.b1x1", 288},  {"mixed6a.b3x3", 288},
        {"mixed6b.b1x1", 768},  {"mixed6e.b1x1", 768},
        {"mixed7a.b3x3_1", 768}, {"mixed7b.b1x1", 1280},
        {"mixed7c.b1x1", 2048},
    };
    for (const Expect &e : expectations) {
        bool found = false;
        for (const Layer &l : net.layers()) {
            if (l.name == e.layer) {
                EXPECT_EQ(l.input.c, e.in_c) << e.layer;
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found) << e.layer;
    }
}

TEST(NetworkConsistency, GridSizesShrinkThroughInception)
{
    // 299 -> 149 -> 147 -> 73 -> 71 -> 35 -> 17 -> 8 along the trunk.
    const Network net = make_inception_v3();
    unsigned h_mixed5b = 0;
    unsigned h_mixed6b = 0;
    unsigned h_mixed7b = 0;
    for (const Layer &l : net.layers()) {
        if (l.name == "mixed5b.b1x1")
            h_mixed5b = l.input.h;
        if (l.name == "mixed6b.b1x1")
            h_mixed6b = l.input.h;
        if (l.name == "mixed7b.b1x1")
            h_mixed7b = l.input.h;
    }
    EXPECT_EQ(h_mixed5b, 35u);
    EXPECT_EQ(h_mixed6b, 17u);
    EXPECT_EQ(h_mixed7b, 8u);
}

TEST(NetworkConsistency, LstmStateDimensionsMatch)
{
    const Network net = make_lstm();
    ASSERT_EQ(net.layers().size(), 1u);
    const Layer &cell = net.layers()[0];
    EXPECT_EQ(cell.lstmInput + cell.lstmHidden, cell.input.c);
    EXPECT_EQ(cell.outputShape().c, cell.lstmHidden);
}
