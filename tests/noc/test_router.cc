/**
 * @file
 * Systolic routers and the inter-slice ring.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/ring.hh"
#include "noc/router.hh"

using namespace bfree::noc;
using namespace bfree::sim;
using bfree::mem::EnergyAccount;
using bfree::mem::EnergyCategory;
using bfree::tech::TechParams;

namespace {

struct RouterFixture
{
    TechParams tech;
    EventQueue queue;
    ClockDomain clock{1.5e9};
    EnergyAccount energy;
    Router router{queue, "r0", clock, tech, energy};
};

} // namespace

TEST(Router, DeliversAfterOneHopCycle)
{
    RouterFixture f;
    std::vector<Flit> received;
    f.router.connect([&](const Flit &flit) { received.push_back(flit); });

    f.router.send(Flit{0xDEAD, 7});
    f.queue.run();

    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].payload, 0xDEADu);
    EXPECT_EQ(received[0].tag, 7u);
    EXPECT_EQ(f.clock.ticksToCycles(f.queue.now()).value(), 1u);
}

TEST(Router, BurstDrainsOnePerCycle)
{
    RouterFixture f;
    std::vector<Tick> arrival_ticks;
    f.router.connect(
        [&](const Flit &) { arrival_ticks.push_back(f.queue.now()); });

    f.router.send(Flit{1, 0});
    f.router.send(Flit{2, 1});
    f.router.send(Flit{3, 2});
    f.queue.run();

    ASSERT_EQ(arrival_ticks.size(), 3u);
    EXPECT_LT(arrival_ticks[0], arrival_ticks[1]);
    EXPECT_LT(arrival_ticks[1], arrival_ticks[2]);
    EXPECT_EQ(f.router.flitsForwarded(), 3u);
}

TEST(Router, ChargesHopEnergy)
{
    RouterFixture f;
    f.router.connect([](const Flit &) {});
    f.router.send(Flit{});
    f.queue.run();
    EXPECT_NEAR(f.energy.joules(EnergyCategory::Router),
                f.tech.routerHopPj * 1e-12, 1e-20);
}

TEST(Router, ChainedRoutersAccumulateLatency)
{
    TechParams tech;
    EventQueue queue;
    ClockDomain clock(1.5e9);
    EnergyAccount energy;
    Router r0(queue, "r0", clock, tech, energy);
    Router r1(queue, "r1", clock, tech, energy);

    bool done = false;
    r0.connect([&](const Flit &flit) { r1.send(flit); });
    r1.connect([&](const Flit &) { done = true; });

    r0.send(Flit{42, 0});
    queue.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(clock.ticksToCycles(queue.now()).value(), 2u);
}

TEST(SystolicChainFormula, KnownValues)
{
    // One stage: no hops, just the steps.
    EXPECT_EQ(systolic_chain_cycles(1, 10, 1), 10u);
    // Eight stages, one wave: 7 hops + 1 step.
    EXPECT_EQ(systolic_chain_cycles(8, 1, 1), 8u);
    // Paper sub-bank: 8 stages, 100 waves.
    EXPECT_EQ(systolic_chain_cycles(8, 100, 1), 107u);
    EXPECT_EQ(systolic_chain_cycles(0, 5, 1), 0u);
}

TEST(Ring, BroadcastTimeScalesWithBytes)
{
    TechParams tech;
    EnergyAccount energy;
    RingInterconnect ring(14, tech, energy);
    const double t1 = ring.broadcast(1e6);
    const double t2 = ring.broadcast(2e6);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(t2 / t1, 2.0, 0.01);
    EXPECT_GT(energy.joules(EnergyCategory::Interconnect), 0.0);
}

TEST(Ring, BandwidthExceedsDram)
{
    // The ring must not bottleneck DRAM-rate weight broadcast: 32 B /
    // cycle at 1.5 GHz = 48 GB/s > 20 GB/s.
    TechParams tech;
    EnergyAccount energy;
    RingInterconnect ring(14, tech, energy);
    EXPECT_GT(ring.busBytesPerCycle() * ring.clockHz(), 20e9);
}

TEST(Ring, TransferChargesPerHop)
{
    TechParams tech;
    EnergyAccount e1;
    EnergyAccount e2;
    RingInterconnect ring1(14, tech, e1);
    RingInterconnect ring2(14, tech, e2);
    ring1.transfer(1e6, 1);
    ring2.transfer(1e6, 7);
    EXPECT_GT(e2.joules(EnergyCategory::Interconnect),
              e1.joules(EnergyCategory::Interconnect));
}

TEST(RouterDeath, UnconnectedRouterPanics)
{
    RouterFixture f;
    f.router.send(Flit{});
    EXPECT_DEATH(f.queue.run(), "no downstream");
}
