/**
 * @file
 * Systolic routers and the inter-slice ring.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/ring.hh"
#include "noc/router.hh"

using namespace bfree::noc;
using namespace bfree::sim;
using bfree::mem::EnergyAccount;
using bfree::mem::EnergyCategory;
using bfree::tech::TechParams;

namespace {

struct RouterFixture
{
    TechParams tech;
    EventQueue queue;
    ClockDomain clock{1.5e9};
    EnergyAccount energy;
    Router router{queue, "r0", clock, tech, energy};
};

} // namespace

TEST(Router, DeliversAfterOneHopCycle)
{
    RouterFixture f;
    std::vector<Flit> received;
    f.router.connect([&](const Flit &flit) { received.push_back(flit); });

    f.router.send(Flit{0xDEAD, 7});
    f.queue.run();

    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].payload, 0xDEADu);
    EXPECT_EQ(received[0].tag, 7u);
    EXPECT_EQ(f.clock.ticksToCycles(f.queue.now()).value(), 1u);
}

TEST(Router, BurstDrainsOnePerCycle)
{
    RouterFixture f;
    std::vector<Tick> arrival_ticks;
    f.router.connect(
        [&](const Flit &) { arrival_ticks.push_back(f.queue.now()); });

    f.router.send(Flit{1, 0});
    f.router.send(Flit{2, 1});
    f.router.send(Flit{3, 2});
    f.queue.run();

    ASSERT_EQ(arrival_ticks.size(), 3u);
    EXPECT_LT(arrival_ticks[0], arrival_ticks[1]);
    EXPECT_LT(arrival_ticks[1], arrival_ticks[2]);
    EXPECT_EQ(f.router.flitsForwarded(), 3u);
}

TEST(Router, ChargesHopEnergy)
{
    RouterFixture f;
    f.router.connect([](const Flit &) {});
    f.router.send(Flit{});
    f.queue.run();
    EXPECT_NEAR(f.energy.joules(EnergyCategory::Router),
                f.tech.routerHopPj * 1e-12, 1e-20);
}

TEST(Router, ChainedRoutersAccumulateLatency)
{
    TechParams tech;
    EventQueue queue;
    ClockDomain clock(1.5e9);
    EnergyAccount energy;
    Router r0(queue, "r0", clock, tech, energy);
    Router r1(queue, "r1", clock, tech, energy);

    bool done = false;
    r0.connect([&](const Flit &flit) { r1.send(flit); });
    r1.connect([&](const Flit &) { done = true; });

    r0.send(Flit{42, 0});
    queue.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(clock.ticksToCycles(queue.now()).value(), 2u);
}

TEST(Router, SendBurstDeliversExactTimingMetadata)
{
    RouterFixture f;
    const Tick hop = f.clock.cyclesToTicks(
        Cycles(f.tech.routerHopCycles));
    std::vector<Flit> got;
    Tick got_first = 0;
    Tick got_cadence = 0;
    f.router.connectBurst([&](const Flit *flits, std::size_t n,
                              Tick first, Tick cadence) {
        got.assign(flits, flits + n);
        got_first = first;
        got_cadence = cadence;
    });

    f.router.sendBurst({Flit{11, 0}, Flit{22, 1}, Flit{33, 2}},
                       Cycles(5));
    f.queue.run();

    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].payload, 11u);
    EXPECT_EQ(got[2].tag, 2u);
    // First flit arrives one hop after the send; the train is spaced
    // at the requested cadence, in ticks of the router's clock.
    EXPECT_EQ(got_first, hop);
    EXPECT_EQ(got_cadence, 5 * f.clock.period());
    EXPECT_EQ(f.router.flitsForwarded(), 3u);
    EXPECT_EQ(f.router.burstsForwarded(), 1u);
}

TEST(Router, BurstEnergyMatchesScalarSendsBitwise)
{
    // A burst of n flits must charge exactly what n scalar sends
    // charge — same count AND same float accumulation order, so the
    // joules compare bitwise equal.
    TechParams tech;
    ClockDomain clock(1.5e9);

    EnergyAccount scalar_energy;
    EventQueue q1;
    Router scalar_router(q1, "s", clock, tech, scalar_energy);
    scalar_router.connect([](const Flit &) {});
    for (int i = 0; i < 7; ++i)
        scalar_router.send(Flit{static_cast<std::uint64_t>(i), 0});
    q1.run();

    EnergyAccount burst_energy;
    EventQueue q2;
    Router burst_router(q2, "b", clock, tech, burst_energy);
    burst_router.connectBurst(
        [](const Flit *, std::size_t, Tick, Tick) {});
    std::vector<Flit> train;
    for (int i = 0; i < 7; ++i)
        train.push_back(Flit{static_cast<std::uint64_t>(i), 0});
    burst_router.sendBurst(std::move(train), Cycles(1));
    q2.run();

    EXPECT_EQ(burst_energy.joules(EnergyCategory::Router),
              scalar_energy.joules(EnergyCategory::Router));
    EXPECT_EQ(burst_router.flitsForwarded(),
              scalar_router.flitsForwarded());
}

TEST(Router, BurstChainsAccumulateOneHopPerRouter)
{
    // Two routers chained through burst sinks: the second burst leaves
    // when the first arrives, so the train reaches the end after two
    // hops with the cadence preserved.
    TechParams tech;
    EventQueue queue;
    ClockDomain clock(1.5e9);
    EnergyAccount energy;
    Router r0(queue, "r0", clock, tech, energy);
    Router r1(queue, "r1", clock, tech, energy);

    Tick end_first = 0;
    Tick end_cadence = 0;
    std::size_t end_count = 0;
    r0.connectBurst([&](const Flit *flits, std::size_t n, Tick,
                        Tick cadence) {
        r1.sendBurst(std::vector<Flit>(flits, flits + n),
                     clock.ticksToCycles(cadence));
    });
    r1.connectBurst([&](const Flit *, std::size_t n, Tick first,
                        Tick cadence) {
        end_count = n;
        end_first = first;
        end_cadence = cadence;
    });

    r0.sendBurst({Flit{1, 0}, Flit{2, 1}, Flit{3, 2}, Flit{4, 3}},
                 Cycles(8));
    queue.run();

    const Tick hop = clock.cyclesToTicks(Cycles(tech.routerHopCycles));
    EXPECT_EQ(end_count, 4u);
    EXPECT_EQ(end_first, 2 * hop);
    EXPECT_EQ(end_cadence, 8 * clock.period());
    // One delivery event per router, not one per flit.
    EXPECT_EQ(queue.processed(), 2u);
}

TEST(Router, ScalarAndBurstTrafficInterleaveInOrder)
{
    RouterFixture f;
    std::vector<std::uint32_t> order;
    f.router.connect(
        [&](const Flit &flit) { order.push_back(flit.tag); });
    f.router.connectBurst([&](const Flit *flits, std::size_t n, Tick,
                              Tick) {
        for (std::size_t i = 0; i < n; ++i)
            order.push_back(flits[i].tag);
    });

    f.router.send(Flit{0, 100});
    f.router.sendBurst({Flit{0, 200}, Flit{0, 201}}, Cycles(1));
    f.queue.run();

    // Scalar was sent first, so it delivers first; the burst arrives
    // as one train at the same hop latency, after it in queue order.
    EXPECT_EQ(order,
              (std::vector<std::uint32_t>{100, 200, 201}));
    EXPECT_EQ(f.router.flitsForwarded(), 3u);
}

TEST(Router, BackToBackScalarSendsChargePerFlit)
{
    RouterFixture f;
    f.router.connect([](const Flit &) {});
    for (int i = 0; i < 5; ++i)
        f.router.send(Flit{});
    f.queue.run();
    EXPECT_NEAR(f.energy.joules(EnergyCategory::Router),
                5 * f.tech.routerHopPj * 1e-12, 1e-19);
    EXPECT_EQ(f.router.flitsForwarded(), 5u);
}

TEST(RouterDeath, EmptyBurstPanics)
{
    RouterFixture f;
    f.router.connectBurst(
        [](const Flit *, std::size_t, Tick, Tick) {});
    EXPECT_DEATH(f.router.sendBurst({}, Cycles(1)), "empty burst");
}

TEST(RouterDeath, BurstWithoutSinkPanics)
{
    RouterFixture f;
    EXPECT_DEATH(f.router.sendBurst({Flit{1, 0}}, Cycles(1)),
                 "burst sink");
}

TEST(SystolicChainFormula, KnownValues)
{
    // One stage: no hops, just the steps.
    EXPECT_EQ(systolic_chain_cycles(1, 10, 1), 10u);
    // Eight stages, one wave: 7 hops + 1 step.
    EXPECT_EQ(systolic_chain_cycles(8, 1, 1), 8u);
    // Paper sub-bank: 8 stages, 100 waves.
    EXPECT_EQ(systolic_chain_cycles(8, 100, 1), 107u);
    EXPECT_EQ(systolic_chain_cycles(0, 5, 1), 0u);
}

TEST(Ring, BroadcastTimeScalesWithBytes)
{
    TechParams tech;
    EnergyAccount energy;
    RingInterconnect ring(14, tech, energy);
    const double t1 = ring.broadcast(1e6);
    const double t2 = ring.broadcast(2e6);
    EXPECT_GT(t2, t1);
    EXPECT_NEAR(t2 / t1, 2.0, 0.01);
    EXPECT_GT(energy.joules(EnergyCategory::Interconnect), 0.0);
}

TEST(Ring, BandwidthExceedsDram)
{
    // The ring must not bottleneck DRAM-rate weight broadcast: 32 B /
    // cycle at 1.5 GHz = 48 GB/s > 20 GB/s.
    TechParams tech;
    EnergyAccount energy;
    RingInterconnect ring(14, tech, energy);
    EXPECT_GT(ring.busBytesPerCycle() * ring.clockHz(), 20e9);
}

TEST(Ring, TransferChargesPerHop)
{
    TechParams tech;
    EnergyAccount e1;
    EnergyAccount e2;
    RingInterconnect ring1(14, tech, e1);
    RingInterconnect ring2(14, tech, e2);
    ring1.transfer(1e6, 1);
    ring2.transfer(1e6, 7);
    EXPECT_GT(e2.joules(EnergyCategory::Interconnect),
              e1.joules(EnergyCategory::Interconnect));
}

TEST(RouterDeath, UnconnectedRouterPanics)
{
    RouterFixture f;
    f.router.send(Flit{});
    EXPECT_DEATH(f.queue.run(), "no downstream");
}
