/**
 * @file
 * Integration: the headline claims of the paper's abstract, end to end
 * through the public API.
 *
 *   - 1.72x performance / 3.14x energy vs Neural Cache (Inception-v3)
 *   - +5.6% cache area
 *   - 3.97x vs an iso-area systolic accelerator (VGG-16)
 *   - 101x / 3x faster and 91x / 11x more energy efficient than
 *     CPU / GPU on BERT-base
 *
 * Absolute numbers come from our model, so each claim is asserted as a
 * band around the paper's value; EXPERIMENTS.md records the measured
 * points.
 */

#include <gtest/gtest.h>

#include "core/bfree.hh"
#include "core/report.hh"

using namespace bfree::core;
using namespace bfree::dnn;
using namespace bfree::map;

namespace {

BFreeAccelerator &
accelerator()
{
    static BFreeAccelerator acc;
    return acc;
}

} // namespace

TEST(Headline, NeuralCacheComparison)
{
    ExecConfig cfg;
    cfg.mapper.forcedMode = ExecMode::ConvMode;
    const auto net = make_inception_v3();
    const auto bfree_r = accelerator().run(net, cfg);
    const auto nc_r = accelerator().runNeuralCache(net, cfg);

    const double speedup = nc_r.secondsPerInference()
                           / bfree_r.secondsPerInference();
    const double energy = nc_r.joulesPerInference()
                          / bfree_r.joulesPerInference();
    // Paper: 1.72x and 3.14x.
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 2.3);
    EXPECT_GT(energy, 2.0);
    EXPECT_LT(energy, 6.0);
}

TEST(Headline, AreaOverheadIsAboutFivePointSixPercent)
{
    const auto area = accelerator().area();
    EXPECT_GT(area.totalOverheadFraction, 0.045);
    EXPECT_LT(area.totalOverheadFraction, 0.068);
}

TEST(Headline, EyerissComparison)
{
    ExecConfig cfg;
    cfg.mapper.slices = 1;
    const auto vgg = make_vgg16();
    const double t_bfree =
        accelerator().run(vgg, cfg).secondsPerInference();
    const double t_eyeriss =
        accelerator().runEyeriss(vgg).secondsPerInference();
    // Paper: 3.97x.
    EXPECT_GT(t_eyeriss / t_bfree, 2.5);
    EXPECT_LT(t_eyeriss / t_bfree, 6.5);
}

TEST(Headline, BertBaseVsCpu)
{
    // The abstract's 101x / 91x figures are for batched execution.
    const auto bert = make_bert_base();
    ExecConfig cfg;
    cfg.batch = 16;
    const auto bfree_r = accelerator().run(bert, cfg);
    const auto cpu_r = accelerator().runCpu(bert, 16);

    const double speedup = cpu_r.secondsPerInference
                           / bfree_r.secondsPerInference();
    const double energy =
        cpu_r.joulesPerInference / bfree_r.joulesPerInference();
    // Paper: 101x faster (abstract, batch 1: 1160/5.3 ~ 219x; the
    // abstract's 101x averages configurations) and 91x the energy.
    EXPECT_GT(speedup, 60.0);
    EXPECT_LT(speedup, 400.0);
    EXPECT_GT(energy, 40.0);
    EXPECT_LT(energy, 500.0);
}

TEST(Headline, BertBaseVsGpu)
{
    const auto bert = make_bert_base();
    ExecConfig cfg;
    cfg.batch = 16;
    const auto bfree_r = accelerator().run(bert, cfg);
    const auto gpu_r = accelerator().runGpu(bert, 16);

    const double speedup = gpu_r.secondsPerInference
                           / bfree_r.secondsPerInference();
    const double energy =
        gpu_r.joulesPerInference / bfree_r.joulesPerInference();
    // Paper: 3x faster, 11x more energy efficient.
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 25.0);
    EXPECT_GT(energy, 3.0);
    EXPECT_LT(energy, 60.0);
}

TEST(Fig14, BandwidthSweepTrends)
{
    const auto vgg = make_vgg16();
    double prev = 1e9;
    for (auto kind :
         {bfree::tech::MainMemoryKind::DRAM,
          bfree::tech::MainMemoryKind::EDRAM,
          bfree::tech::MainMemoryKind::HBM}) {
        ExecConfig cfg;
        cfg.memory = kind;
        cfg.batch = 16;
        const double t =
            accelerator().run(vgg, cfg).secondsPerInference();
        EXPECT_LT(t, prev);
        prev = t;
    }
}

TEST(Fig14, BatchSixteenStreamsIntermediates)
{
    const auto vgg = make_vgg16();
    ExecConfig b1;
    b1.batch = 1;
    ExecConfig b16;
    b16.batch = 16;
    const auto r1 = accelerator().run(vgg, b1);
    const auto r16 = accelerator().run(vgg, b16);
    // Batch 1 keeps intermediates in SRAM: almost no input-load term.
    // Batch 16 spills and pays visible input load on DRAM.
    EXPECT_GT(r16.energy.joules(
                  bfree::mem::EnergyCategory::DramTransfer),
              0.0);
    EXPECT_LT(r16.time.weightLoad, r1.time.weightLoad);
}

TEST(TableIII, BFreeBeatsGpuOnLstm)
{
    const auto lstm = make_lstm();
    const auto bfree_r = accelerator().run(lstm);
    const auto gpu_r = accelerator().runGpu(lstm, 1);
    // Paper: 0.43 ms vs 96.2 ms (~220x).
    EXPECT_GT(gpu_r.secondsPerInference
                  / bfree_r.secondsPerInference(),
              30.0);
}

TEST(TableIII, BertLargeAlsoWins)
{
    const auto bert = make_bert_large();
    ExecConfig cfg;
    cfg.batch = 16;
    const auto bfree_r = accelerator().run(bert, cfg);
    const auto gpu_r = accelerator().runGpu(bert, 16);
    EXPECT_LT(bfree_r.secondsPerInference(),
              gpu_r.secondsPerInference);
}

TEST(Consistency, AllNetworksRunOnAllModels)
{
    for (const Network &net :
         {make_vgg16(), make_inception_v3(), make_lstm(),
          make_bert_base(), make_bert_large()}) {
        const auto r = accelerator().run(net);
        EXPECT_GT(r.secondsPerInference(), 0.0) << net.name();
        EXPECT_GT(r.joulesPerInference(), 0.0) << net.name();
        const auto nc = accelerator().runNeuralCache(net);
        EXPECT_GT(nc.secondsPerInference(), 0.0) << net.name();
    }
}
