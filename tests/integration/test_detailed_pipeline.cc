/**
 * @file
 * A whole quantized CNN executed through the detailed machinery:
 * every conv layer runs on the event-driven 2-D systolic grid (real
 * Subarray/BCE/Router objects), pooling and ReLU on a BCE, and the
 * classifier's softmax on the distributed softmax chain. The result
 * is compared element-wise with a plain integer reference — no
 * shortcuts anywhere in the datapath.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bce/bce.hh"
#include "dnn/layer.hh"
#include "map/detailed_slice_sim.hh"
#include "map/softmax_sim.hh"
#include "sim/random.hh"

using namespace bfree;
using namespace bfree::map;
using dnn::FeatureShape;
using dnn::Layer;

namespace {

using I8 = std::vector<std::int8_t>;
using I32 = std::vector<std::int32_t>;

/** Integer reference conv (CHW flattened, no bias). */
I32
ref_conv(const Layer &l, const I8 &input, const I8 &weights)
{
    const FeatureShape out = l.outputShape();
    I32 result(out.elements(), 0);
    for (unsigned k = 0; k < out.c; ++k)
        for (unsigned oh = 0; oh < out.h; ++oh)
            for (unsigned ow = 0; ow < out.w; ++ow) {
                std::int32_t acc = 0;
                for (unsigned c = 0; c < l.input.c; ++c)
                    for (unsigned r = 0; r < l.kernelH; ++r)
                        for (unsigned s = 0; s < l.kernelW; ++s) {
                            const int ih =
                                int(oh * l.strideH + r) - int(l.padH);
                            const int iw =
                                int(ow * l.strideW + s) - int(l.padW);
                            if (ih < 0 || iw < 0
                                || ih >= int(l.input.h)
                                || iw >= int(l.input.w))
                                continue;
                            acc += std::int32_t(
                                       weights[((std::size_t(k)
                                                     * l.input.c
                                                 + c) * l.kernelH
                                                + r) * l.kernelW
                                               + s])
                                   * input[(std::size_t(c) * l.input.h
                                            + ih) * l.input.w
                                           + iw];
                        }
                result[(std::size_t(k) * out.h + oh) * out.w + ow] =
                    acc;
            }
    return result;
}

/** Requantize an int32 map back to int8 by a right shift. */
I8
shrink(const I32 &v, unsigned shift)
{
    I8 out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = static_cast<std::int8_t>(
            std::clamp<std::int32_t>(v[i] >> shift, -128, 127));
    return out;
}

/** Run one conv layer on the detailed grid via im2col waves. */
I32
grid_conv(const Layer &l, const I8 &input, const I8 &weights,
          const tech::CacheGeometry &geom, const tech::TechParams &tech)
{
    const FeatureShape out = l.outputShape();
    const unsigned receptive = l.input.c * l.kernelH * l.kernelW;

    // Split the receptive field over as many chain rows as divide it.
    unsigned rows = 1;
    for (unsigned candidate : {8u, 4u, 3u, 2u}) {
        if (candidate <= geom.subarraysPerSubBank
            && receptive % candidate == 0) {
            rows = candidate;
            break;
        }
    }
    const unsigned slice_len = receptive / rows;

    DetailedSliceSim grid(geom, tech, rows, out.c, slice_len, 8);
    std::vector<std::vector<I8>> w(out.c);
    for (unsigned k = 0; k < out.c; ++k)
        for (unsigned r = 0; r < rows; ++r)
            w[k].push_back(
                I8(weights.begin() + std::size_t(k) * receptive
                       + r * slice_len,
                   weights.begin() + std::size_t(k) * receptive
                       + (r + 1) * slice_len));
    grid.loadWeights(w);

    std::vector<I8> waves;
    for (unsigned oh = 0; oh < out.h; ++oh)
        for (unsigned ow = 0; ow < out.w; ++ow) {
            I8 row;
            for (unsigned c = 0; c < l.input.c; ++c)
                for (unsigned r = 0; r < l.kernelH; ++r)
                    for (unsigned s = 0; s < l.kernelW; ++s) {
                        const int ih =
                            int(oh * l.strideH + r) - int(l.padH);
                        const int iw =
                            int(ow * l.strideW + s) - int(l.padW);
                        row.push_back(
                            (ih < 0 || iw < 0 || ih >= int(l.input.h)
                             || iw >= int(l.input.w))
                                ? std::int8_t(0)
                                : input[(std::size_t(c) * l.input.h
                                         + ih) * l.input.w
                                        + iw]);
                    }
            waves.push_back(std::move(row));
        }

    const DetailedGridResult r = grid.run(waves);
    I32 result(out.elements());
    for (unsigned k = 0; k < out.c; ++k)
        for (std::size_t pos = 0; pos < waves.size(); ++pos)
            result[std::size_t(k) * waves.size() + pos] =
                r.outputs[k][pos];
    return result;
}

} // namespace

TEST(DetailedPipeline, TinyCnnEndToEndOnTheDetailedMachinery)
{
    tech::CacheGeometry geom;
    tech::TechParams tech;
    sim::Rng rng(911);

    // The network: conv(1->4, 3x3 pad 1) -> relu -> maxpool2 ->
    // conv(4->8) -> relu -> maxpool2 -> softmax over the 8x2x2
    // flattened features (a classifier without the FC, to keep the
    // whole thing on the grid + chain machinery).
    const Layer conv1 = dnn::make_conv("c1", {1, 8, 8}, 4, 3, 1, 1);
    const Layer conv2 = dnn::make_conv("c2", {4, 4, 4}, 8, 3, 1, 1);

    I8 input(64);
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.uniformInt(-40, 40));
    I8 w1(4 * 9);
    I8 w2(8 * 4 * 9);
    for (auto &v : w1)
        v = static_cast<std::int8_t>(rng.uniformInt(-30, 30));
    for (auto &v : w2)
        v = static_cast<std::int8_t>(rng.uniformInt(-30, 30));

    // ---- Reference path (plain integer math). ----
    auto relu = [](I8 v) {
        for (auto &x : v)
            x = std::max<std::int8_t>(x, 0);
        return v;
    };
    auto maxpool2 = [](const I8 &v, unsigned c, unsigned hw) {
        I8 out(std::size_t(c) * (hw / 2) * (hw / 2));
        for (unsigned ch = 0; ch < c; ++ch)
            for (unsigned oh = 0; oh < hw / 2; ++oh)
                for (unsigned ow = 0; ow < hw / 2; ++ow) {
                    std::int8_t best = -128;
                    for (unsigned dy = 0; dy < 2; ++dy)
                        for (unsigned dx = 0; dx < 2; ++dx)
                            best = std::max(
                                best,
                                v[(std::size_t(ch) * hw + 2 * oh + dy)
                                      * hw
                                  + 2 * ow + dx]);
                    out[(std::size_t(ch) * (hw / 2) + oh) * (hw / 2)
                        + ow] = best;
                }
        return out;
    };

    const I8 ref_a1 =
        maxpool2(relu(shrink(ref_conv(conv1, input, w1), 6)), 4, 8);
    const I8 ref_a2 =
        maxpool2(relu(shrink(ref_conv(conv2, ref_a1, w2), 6)), 8, 4);

    // ---- Detailed path: grids for the convs. ----
    const I8 det_a1 =
        maxpool2(relu(shrink(grid_conv(conv1, input, w1, geom, tech),
                             6)),
                 4, 8);
    EXPECT_EQ(det_a1, ref_a1);
    const I8 det_a2 =
        maxpool2(relu(shrink(grid_conv(conv2, det_a1, w2, geom, tech),
                             6)),
                 8, 4);
    EXPECT_EQ(det_a2, ref_a2);

    // ---- Classifier softmax on the distributed chain. ----
    std::vector<double> logits(det_a2.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        logits[i] = det_a2[i] / 16.0;
    DistributedSoftmax softmax(geom, tech, 8);
    const SoftmaxRunResult sm = softmax.run(logits);

    // Exact reference softmax over the same logits.
    std::vector<double> ref(logits.size());
    const double max_v =
        *std::max_element(logits.begin(), logits.end());
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        ref[i] = std::exp(logits[i] - max_v);
        denom += ref[i];
    }
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(sm.probabilities[i], ref[i] / denom, 0.01) << i;

    // Same winner end to end.
    const auto got_argmax =
        std::max_element(sm.probabilities.begin(),
                         sm.probabilities.end())
        - sm.probabilities.begin();
    const auto ref_argmax =
        std::max_element(ref.begin(), ref.end()) - ref.begin();
    EXPECT_EQ(got_argmax, ref_argmax);
}
