/**
 * @file
 * Full stack for one convolution: im2col transform -> weight layout ->
 * event-driven 2-D systolic grid with real Subarray/BCE/Router objects
 * -> exact agreement with the direct convolution, cycle count matching
 * the closed form. This is the Fig. 9(c) execution in miniature.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dnn/layer.hh"
#include "map/detailed_slice_sim.hh"
#include "sim/random.hh"

using namespace bfree;
using namespace bfree::map;
using dnn::FeatureShape;
using dnn::Layer;

namespace {

/** Integer direct convolution (no bias) for exact comparison. */
std::int32_t
direct_conv(const Layer &l, const std::vector<std::int8_t> &input,
            const std::vector<std::int8_t> &weights, unsigned k,
            unsigned oh, unsigned ow)
{
    std::int32_t acc = 0;
    for (unsigned c = 0; c < l.input.c; ++c) {
        for (unsigned r = 0; r < l.kernelH; ++r) {
            for (unsigned s = 0; s < l.kernelW; ++s) {
                const int ih = static_cast<int>(oh * l.strideH + r)
                               - static_cast<int>(l.padH);
                const int iw = static_cast<int>(ow * l.strideW + s)
                               - static_cast<int>(l.padW);
                if (ih < 0 || iw < 0
                    || ih >= static_cast<int>(l.input.h)
                    || iw >= static_cast<int>(l.input.w))
                    continue;
                const std::size_t iidx =
                    (std::size_t(c) * l.input.h + ih) * l.input.w + iw;
                const std::size_t widx =
                    ((std::size_t(k) * l.input.c + c) * l.kernelH + r)
                        * l.kernelW
                    + s;
                acc += std::int32_t(weights[widx]) * input[iidx];
            }
        }
    }
    return acc;
}

/** im2col row for one output position, padded with zeros. */
std::vector<std::int8_t>
im2col_row(const Layer &l, const std::vector<std::int8_t> &input,
           unsigned oh, unsigned ow)
{
    std::vector<std::int8_t> row;
    row.reserve(std::size_t(l.input.c) * l.kernelH * l.kernelW);
    for (unsigned c = 0; c < l.input.c; ++c) {
        for (unsigned r = 0; r < l.kernelH; ++r) {
            for (unsigned s = 0; s < l.kernelW; ++s) {
                const int ih = static_cast<int>(oh * l.strideH + r)
                               - static_cast<int>(l.padH);
                const int iw = static_cast<int>(ow * l.strideW + s)
                               - static_cast<int>(l.padW);
                if (ih < 0 || iw < 0
                    || ih >= static_cast<int>(l.input.h)
                    || iw >= static_cast<int>(l.input.w)) {
                    row.push_back(0);
                } else {
                    const std::size_t iidx =
                        (std::size_t(c) * l.input.h + ih) * l.input.w
                        + iw;
                    row.push_back(input[iidx]);
                }
            }
        }
    }
    return row;
}

} // namespace

TEST(DetailedConv, SystolicGridComputesTheConvolutionExactly)
{
    // 2-channel 5x5 input, three 3x3 filters, pad 1: 25 output
    // positions per filter.
    const Layer l = dnn::make_conv("c", {2, 5, 5}, 3, 3, 1, 1);
    const FeatureShape out = l.outputShape();
    const unsigned receptive =
        l.input.c * l.kernelH * l.kernelW; // 18

    sim::Rng rng(202);
    std::vector<std::int8_t> input(l.input.elements());
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    std::vector<std::int8_t> weights(std::size_t(out.c) * receptive);
    for (auto &v : weights)
        v = static_cast<std::int8_t>(rng.uniformInt(-128, 127));

    // Map onto the grid: filters across columns (Fig. 9), the
    // receptive field split across two chain rows of 9 elements.
    const unsigned rows = 2;
    const unsigned slice_len = receptive / rows; // 9
    tech::CacheGeometry geom;
    tech::TechParams tech;
    DetailedSliceSim grid(geom, tech, rows, out.c, slice_len, 8);

    std::vector<std::vector<std::vector<std::int8_t>>> w(out.c);
    for (unsigned k = 0; k < out.c; ++k) {
        for (unsigned r = 0; r < rows; ++r) {
            w[k].push_back(std::vector<std::int8_t>(
                weights.begin()
                    + std::size_t(k) * receptive + r * slice_len,
                weights.begin()
                    + std::size_t(k) * receptive
                    + (r + 1) * slice_len));
        }
    }
    grid.loadWeights(w);

    // One input wave per output position (the im2col rows).
    std::vector<std::vector<std::int8_t>> waves;
    for (unsigned oh = 0; oh < out.h; ++oh)
        for (unsigned ow = 0; ow < out.w; ++ow)
            waves.push_back(im2col_row(l, input, oh, ow));

    const DetailedGridResult r = grid.run(waves);

    // Functional: every (filter, position) matches the direct conv.
    ASSERT_EQ(r.outputs.size(), out.c);
    for (unsigned k = 0; k < out.c; ++k) {
        ASSERT_EQ(r.outputs[k].size(), waves.size());
        unsigned wave = 0;
        for (unsigned oh = 0; oh < out.h; ++oh) {
            for (unsigned ow = 0; ow < out.w; ++ow, ++wave) {
                ASSERT_EQ(r.outputs[k][wave],
                          direct_conv(l, input, weights, k, oh, ow))
                    << "filter " << k << " position (" << oh << ","
                    << ow << ")";
            }
        }
    }

    // Timing: the closed form the analytic model uses.
    EXPECT_EQ(r.cycles,
              detailed_grid_formula(rows, out.c,
                                    static_cast<unsigned>(waves.size()),
                                    grid.cyclesPerStep(),
                                    tech.routerHopCycles));
}

TEST(DetailedConv, StridedConvolutionAlsoExact)
{
    const Layer l = dnn::make_conv("c", {1, 8, 8}, 2, 3, 2, 0);
    const FeatureShape out = l.outputShape(); // 3x3
    const unsigned receptive = 9;

    sim::Rng rng(203);
    std::vector<std::int8_t> input(l.input.elements());
    for (auto &v : input)
        v = static_cast<std::int8_t>(rng.uniformInt(-50, 50));
    std::vector<std::int8_t> weights(std::size_t(out.c) * receptive);
    for (auto &v : weights)
        v = static_cast<std::int8_t>(rng.uniformInt(-50, 50));

    tech::CacheGeometry geom;
    tech::TechParams tech;
    DetailedSliceSim grid(geom, tech, 1, out.c, receptive, 8);

    std::vector<std::vector<std::vector<std::int8_t>>> w(out.c);
    for (unsigned k = 0; k < out.c; ++k)
        w[k].push_back(std::vector<std::int8_t>(
            weights.begin() + std::size_t(k) * receptive,
            weights.begin() + std::size_t(k + 1) * receptive));
    grid.loadWeights(w);

    std::vector<std::vector<std::int8_t>> waves;
    for (unsigned oh = 0; oh < out.h; ++oh)
        for (unsigned ow = 0; ow < out.w; ++ow)
            waves.push_back(im2col_row(l, input, oh, ow));

    const DetailedGridResult r = grid.run(waves);
    unsigned wave = 0;
    for (unsigned oh = 0; oh < out.h; ++oh)
        for (unsigned ow = 0; ow < out.w; ++ow, ++wave)
            for (unsigned k = 0; k < out.c; ++k)
                ASSERT_EQ(r.outputs[k][wave],
                          direct_conv(l, input, weights, k, oh, ow));
}
