/**
 * @file
 * The Fig. 11 execution flow end to end: for every layer of a network,
 * compile the kernel, run the configuration phase against the cache
 * model through the hierarchical controllers, and verify that what the
 * BCEs would fetch (config block + LUT rows) is exactly what the
 * compiler emitted.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "map/controllers.hh"
#include "map/kernel_compiler.hh"

using namespace bfree;
using namespace bfree::map;

namespace {

struct Rig
{
    Rig()
        : cache(geom, tech),
          memory(tech::main_memory_params(tech::MainMemoryKind::DRAM),
                 cache.energy()),
          controller(cache, memory, tech), compiler(geom, opts)
    {}

    static tech::CacheGeometry
    makeGeometry()
    {
        tech::CacheGeometry g;
        g.numSlices = 2;
        g.banksPerSlice = 2;
        g.subBanksPerBank = 2;
        g.subarraysPerSubBank = 4;
        return g;
    }

    static MapperOptions
    makeOptions()
    {
        MapperOptions o;
        o.slices = 2;
        return o;
    }

    tech::CacheGeometry geom = makeGeometry();
    tech::TechParams tech;
    MapperOptions opts = makeOptions();
    mem::SramCache cache;
    mem::MainMemory memory;
    CacheController controller;
    KernelCompiler compiler;
};

} // namespace

TEST(ExecutionFlow, TinyCnnLayerByLayer)
{
    Rig rig;
    double config_seconds = 0.0;
    unsigned kernels = 0;

    const dnn::Network net = dnn::make_tiny_cnn();
    for (const dnn::Layer &layer : net.layers()) {
        const CompiledKernel k = rig.compiler.compile(layer);
        const ConfigPhaseResult r = rig.controller.configureKernel(k);
        config_seconds += r.total();
        ++kernels;

        const unsigned active =
            std::min(std::max(1u, k.mapping.activeSubarrays),
                     rig.cache.numSubarrays());
        // Every active sub-array's CB decodes to the compiled program.
        for (unsigned i = 0; i < active; ++i)
            EXPECT_EQ(rig.controller.readConfig(i), k.configBlock)
                << layer.name;
    }

    EXPECT_EQ(rig.controller.kernelsConfigured(), kernels + 1);
    // softmax configures two LUT phases -> one extra configure() call.
    EXPECT_GT(config_seconds, 0.0);
}

TEST(ExecutionFlow, BertEncoderConfiguration)
{
    Rig rig;
    dnn::Network net("encoder", {64, 16, 1});
    dnn::append_bert_encoder(net, 0, /*seq=*/16, /*d=*/64, 4);

    for (const dnn::Layer &layer : net.layers()) {
        const CompiledKernel k = rig.compiler.compile(layer);
        EXPECT_NO_FATAL_FAILURE(rig.controller.configureKernel(k))
            << layer.name;
        EXPECT_EQ(k.totalMacs(), layer.macs()) << layer.name;
    }
}

TEST(ExecutionFlow, MultiplyTableIsLiveAfterConfiguration)
{
    Rig rig;
    const dnn::Layer conv =
        dnn::make_conv("c", {3, 8, 8}, 4, 3, 1, 1);
    const CompiledKernel k = rig.compiler.compile(conv);
    rig.controller.configureKernel(k);

    // A BCE attached to a configured sub-array can multiply through
    // the freshly loaded LUT rows.
    bce::Bce engine(rig.cache.subarray(0), rig.tech,
                    rig.cache.energy());
    engine.loadMultLutImage(); // idempotent: image already present
    engine.setMode(bce::BceMode::Conv);
    EXPECT_EQ(engine.multiply(7, 9, 8), 63);
    EXPECT_EQ(engine.multiply(-13, 11, 8), -143);
}

TEST(ExecutionFlow, ReconfigurationSwitchesKernels)
{
    // The reconfigurable fabric runs a matmul kernel, then a sigmoid
    // kernel, in sequence (the paper's layer-by-layer execution).
    Rig rig;
    const CompiledKernel matmul =
        rig.compiler.compile(dnn::make_fc("fc", 32, 32));
    rig.controller.configureKernel(matmul);
    EXPECT_EQ(rig.controller.readConfig(0)->opcode,
              bce::PimOpcode::Matmul);

    const CompiledKernel sigmoid = rig.compiler.compile(
        dnn::make_activation("s", dnn::LayerKind::Sigmoid,
                             {32, 1, 1}));
    rig.controller.configureKernel(sigmoid);
    EXPECT_EQ(rig.controller.readConfig(0)->opcode,
              bce::PimOpcode::Sigmoid);
}
