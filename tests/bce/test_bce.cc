/**
 * @file
 * The BCE: functional exactness through the LUT datapath, the paper's
 * throughput rates, and energy accounting.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bce/bce.hh"
#include "sim/random.hh"

using namespace bfree::bce;
using bfree::mem::EnergyAccount;
using bfree::mem::EnergyCategory;
using bfree::mem::Subarray;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

struct Fixture
{
    CacheGeometry geom;
    TechParams tech;
    EnergyAccount energy;
    Subarray sa{geom, tech, energy};
    Bce bce{sa, tech, energy};
};

} // namespace

TEST(BceRates, PaperThroughputs)
{
    // Conv mode: 0.5 8-bit MAC/cycle; matmul mode: 4 8-bit MAC/cycle;
    // 4-bit doubles both (Section V-D).
    EXPECT_DOUBLE_EQ(Bce::macsPerCycle(BceMode::Conv, 8), 0.5);
    EXPECT_DOUBLE_EQ(Bce::macsPerCycle(BceMode::Conv, 4), 1.0);
    EXPECT_DOUBLE_EQ(Bce::macsPerCycle(BceMode::Matmul, 8), 4.0);
    EXPECT_DOUBLE_EQ(Bce::macsPerCycle(BceMode::Matmul, 4), 8.0);
    EXPECT_DOUBLE_EQ(Bce::macsPerCycle(BceMode::Conv, 16), 0.25);
    EXPECT_DOUBLE_EQ(Bce::macsPerCycle(BceMode::Matmul, 16), 2.0);
}

TEST(BceMultiply, MatmulModeExhaustiveInt8)
{
    Fixture f;
    f.bce.setMode(BceMode::Matmul);
    for (int a = -128; a <= 127; a += 3)
        for (int b = -128; b <= 127; b += 5)
            ASSERT_EQ(f.bce.multiply(a, b, 8),
                      static_cast<std::int64_t>(a) * b);
}

TEST(BceMultiply, ConvModeThroughSubarrayLut)
{
    Fixture f;
    f.bce.loadMultLutImage();
    f.bce.setMode(BceMode::Conv);
    for (int a = -128; a <= 127; a += 7)
        for (int b = -128; b <= 127; b += 11)
            ASSERT_EQ(f.bce.multiply(a, b, 8),
                      static_cast<std::int64_t>(a) * b);
    // Conv mode actually read the LUT rows.
    EXPECT_GT(f.sa.stats().lutReads, 0u);
}

TEST(BceMultiply, ConvMode4And16Bit)
{
    Fixture f;
    f.bce.loadMultLutImage();
    f.bce.setMode(BceMode::Conv);
    for (int a = -8; a <= 7; ++a)
        for (int b = -8; b <= 7; ++b)
            ASSERT_EQ(f.bce.multiply(a, b, 4),
                      static_cast<std::int64_t>(a) * b);
    bfree::sim::Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto a =
            static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        const auto b =
            static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        ASSERT_EQ(f.bce.multiply(a, b, 16),
                  static_cast<std::int64_t>(a) * b);
    }
}

TEST(BceDotProduct, MatchesReference)
{
    Fixture f;
    f.bce.loadMultLutImage();
    f.bce.setMode(BceMode::Conv);

    bfree::sim::Rng rng(11);
    const std::size_t len = 64;
    std::vector<std::int8_t> weights(len);
    std::vector<std::int8_t> inputs(len);
    std::int32_t expected = 0;
    for (std::size_t i = 0; i < len; ++i) {
        weights[i] =
            static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        inputs[i] = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        expected += std::int32_t(weights[i]) * inputs[i];
    }
    // Weights live in the sub-array at offset 256.
    f.sa.write(256, reinterpret_cast<std::uint8_t *>(weights.data()),
               len);

    const std::int32_t got =
        f.bce.dotProduct(256, inputs.data(), len, 8);
    EXPECT_EQ(got, expected);
}

TEST(BceDotProduct, CyclesMatchConvRate)
{
    Fixture f;
    f.bce.loadMultLutImage();
    f.bce.setMode(BceMode::Conv);

    std::vector<std::int8_t> weights(32, 3);
    std::vector<std::int8_t> inputs(32, 5);
    f.sa.write(0, reinterpret_cast<std::uint8_t *>(weights.data()), 32);

    const std::uint64_t before = f.bce.cycles();
    f.bce.dotProduct(0, inputs.data(), 32, 8);
    // 32 8-bit MACs at 0.5 MAC/cycle = 64 cycles.
    EXPECT_EQ(f.bce.cycles() - before, 64u);
    EXPECT_EQ(f.bce.macs(), 32u);
}

TEST(BceBroadcastMac, EightLanesInTwoCycles)
{
    Fixture f;
    f.bce.setMode(BceMode::Matmul);

    const std::int8_t b[8] = {1, -2, 3, -4, 5, -6, 7, -8};
    std::int32_t acc[8] = {};
    const std::uint64_t before = f.bce.cycles();
    f.bce.broadcastMac(9, b, 8, acc, 8);
    // One LS-4 pass + one MS-4 pass (Fig. 7).
    EXPECT_EQ(f.bce.cycles() - before, 2u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(acc[i], 9 * b[i]);
}

TEST(BceBroadcastMac, AccumulatesOverSteps)
{
    Fixture f;
    f.bce.setMode(BceMode::Matmul);
    const std::int8_t b[4] = {10, 20, 30, 40};
    std::int32_t acc[4] = {};
    f.bce.broadcastMac(2, b, 4, acc, 8);
    f.bce.broadcastMac(-1, b, 4, acc, 8);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(acc[i], 2 * b[i] - b[i]);
}

TEST(BceSpecial, MaxReduceAndAvgPool)
{
    Fixture f;
    bfree::lut::DivisionLut div(4);
    const std::int32_t values[5] = {3, -7, 12, 0, 9};
    EXPECT_EQ(f.bce.maxReduce(values, 5), 12);

    const std::int32_t window[4] = {10, 20, 30, 40};
    EXPECT_NEAR(f.bce.avgPool(window, 4, div), 25.0, 25.0 * 0.02);
}

TEST(BceSpecial, PwlEvaluationViaLutRows)
{
    Fixture f;
    const bfree::lut::PwlTable table = bfree::lut::make_sigmoid_table(32);
    const double y = f.bce.evaluatePwl(table, 0.0);
    EXPECT_NEAR(y, 0.5, 0.02);
    f.bce.flushEnergy();
    EXPECT_GT(f.energy.joules(EnergyCategory::LutAccess), 0.0);
}

TEST(BceSpecial, DivideAndRequantize)
{
    Fixture f;
    bfree::lut::DivisionLut div(4);
    EXPECT_NEAR(f.bce.divide(20.0, 4.0, div), 5.0, 0.1);

    const auto scale = bfree::lut::compute_requant_scale(0.05);
    const std::int32_t q = f.bce.requantize(1000, scale, 0, 8);
    EXPECT_NEAR(q, 50, 1);
}

TEST(BceEnergy, MatmulMacsChargeRomEnergy)
{
    Fixture f;
    f.bce.setMode(BceMode::Matmul);
    f.bce.flushEnergy();
    const double before = f.energy.joules(EnergyCategory::BceCompute);
    (void)f.bce.multiply(77, -55, 8);
    f.bce.flushEnergy();
    EXPECT_GT(f.energy.joules(EnergyCategory::BceCompute), before);
}

TEST(BceEnergy, MatmulModeCostsMorePerCycleThanConv)
{
    const TechParams t;
    EXPECT_GT(t.bceEnergyPerCyclePj(t.bceMatmulModeMw),
              t.bceEnergyPerCyclePj(t.bceConvModeMw));
}

TEST(BceConfig, LoadConfigTakesOneCycleAndStores)
{
    Fixture f;
    ConfigBlock cb;
    cb.opcode = PimOpcode::Conv;
    cb.iterations = 99;
    const std::uint64_t before = f.bce.cycles();
    f.bce.loadConfig(cb);
    EXPECT_EQ(f.bce.cycles() - before, 1u);
    EXPECT_EQ(f.bce.config().iterations, 99);
    EXPECT_EQ(f.bce.stats().configLoads, 1u);
}

TEST(BceDeath, ConvMultiplyWithoutLutImagePanics)
{
    Fixture f;
    f.bce.setMode(BceMode::Conv);
    EXPECT_DEATH((void)f.bce.multiply(3, 5, 8), "LUT image");
}

TEST(BceDeath, WrongModePanics)
{
    Fixture f;
    f.bce.loadMultLutImage();
    f.bce.setMode(BceMode::Matmul);
    std::int8_t inputs[4] = {1, 2, 3, 4};
    EXPECT_DEATH((void)f.bce.dotProduct(0, inputs, 4, 8),
                 "requires conv mode");

    f.bce.setMode(BceMode::Conv);
    std::int32_t acc[4] = {};
    EXPECT_DEATH(f.bce.broadcastMac(1, inputs, 4, acc, 8),
                 "requires matmul mode");
}
