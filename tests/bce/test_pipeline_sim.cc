/**
 * @file
 * The 3-stage BCE pipeline: fill latency, steady-state throughput,
 * structural hazards on the LUT port, and agreement with the closed
 * form.
 */

#include <gtest/gtest.h>

#include "bce/pipeline_sim.hh"
#include "sim/random.hh"

using namespace bfree::bce;

namespace {

std::vector<PipelineUop>
uops(std::initializer_list<UopResource> resources)
{
    std::vector<PipelineUop> out;
    for (UopResource res : resources)
        out.push_back({res, 1});
    return out;
}

} // namespace

TEST(PipelineSim, SingleUopTakesPipelineDepth)
{
    BcePipelineSim sim;
    const PipelineRunResult r = sim.run(uops({UopResource::Shifter}));
    EXPECT_EQ(r.cycles, BcePipelineSim::depth);
    EXPECT_EQ(r.stallCycles, 0u);
    EXPECT_EQ(r.retired, 1u);
}

TEST(PipelineSim, SteadyStateIsOnePerCycle)
{
    BcePipelineSim sim;
    std::vector<PipelineUop> stream(1000, {UopResource::Shifter, 1});
    const PipelineRunResult r = sim.run(stream);
    EXPECT_EQ(r.cycles, BcePipelineSim::depth + 1000 - 1);
    EXPECT_EQ(r.stallCycles, 0u);
    // IPC approaches 1 for long streams.
    EXPECT_GT(r.ipc(), 0.99);
}

TEST(PipelineSim, EmptyStream)
{
    BcePipelineSim sim;
    const PipelineRunResult r = sim.run({});
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.retired, 0u);
}

TEST(PipelineSim, DecoupledLutPortDoesNotStall)
{
    // The design point: 1-cycle LUT reads keep the pipeline full even
    // for back-to-back odd x odd operations.
    BcePipelineSim sim(/*lut_port_cycles=*/1);
    const PipelineRunResult r = sim.run(
        uops({UopResource::LutPort, UopResource::LutPort,
              UopResource::LutPort, UopResource::LutPort}));
    EXPECT_EQ(r.stallCycles, 0u);
    EXPECT_EQ(r.cycles, BcePipelineSim::depth + 4 - 1);
}

TEST(PipelineSim, SharedBitlineLutWouldStall)
{
    // Fig. 4's counterfactual: if LUT rows shared the full bitline
    // (3x slower), every lookup would hold stage 2 for 3 cycles and
    // back-to-back lookups would lose 2 cycles each.
    BcePipelineSim slow(/*lut_port_cycles=*/3);
    std::vector<PipelineUop> stream(10, {UopResource::LutPort, 1});
    const PipelineRunResult r = slow.run(stream);
    EXPECT_EQ(r.stallCycles, 10u * 2u);
    EXPECT_EQ(r.cycles, pipeline_formula(stream, 3));
    EXPECT_LT(r.ipc(), 0.4);
}

TEST(PipelineSim, MixedStreamMatchesFormula)
{
    bfree::sim::Rng rng(404);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<PipelineUop> stream;
        const auto n = static_cast<std::size_t>(rng.uniformInt(1, 200));
        for (std::size_t i = 0; i < n; ++i) {
            PipelineUop uop;
            switch (rng.uniformInt(0, 3)) {
              case 0:
                uop.resource = UopResource::Shifter;
                break;
              case 1:
                uop.resource = UopResource::LutPort;
                break;
              case 2:
                uop.resource = UopResource::RomPort;
                break;
              default:
                uop.resource = UopResource::None;
            }
            uop.stage2Cycles =
                static_cast<unsigned>(rng.uniformInt(1, 3));
            stream.push_back(uop);
        }
        for (unsigned port : {1u, 2u, 3u}) {
            BcePipelineSim sim(port);
            const PipelineRunResult r = sim.run(stream);
            EXPECT_EQ(r.cycles, pipeline_formula(stream, port))
                << "trial " << trial << " port " << port;
            EXPECT_EQ(r.retired, stream.size());
        }
    }
}

TEST(PipelineSim, LongShiftsBackpressure)
{
    BcePipelineSim sim;
    std::vector<PipelineUop> stream = {
        {UopResource::Shifter, 2}, // 16-bit decompose: two passes
        {UopResource::Shifter, 1},
    };
    const PipelineRunResult r = sim.run(stream);
    EXPECT_EQ(r.cycles, pipeline_formula(stream, 1));
    EXPECT_EQ(r.stallCycles, 1u);
}
