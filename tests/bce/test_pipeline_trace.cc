/**
 * @file
 * The Fig. 6 and Fig. 7 pipeline walk-throughs, cycle by cycle.
 */

#include <gtest/gtest.h>

#include "bce/pipeline_trace.hh"

using namespace bfree::bce;
using bfree::lut::MultLut;

TEST(Pow2PairSplit, FourBitEvens)
{
    // 6 = 4+2, 10 = 8+2, 12 = 8+4 split; 14 = 8+4+2 does not.
    EXPECT_EQ(pow2_pair_split(6), (std::vector<unsigned>{4, 2}));
    EXPECT_EQ(pow2_pair_split(10), (std::vector<unsigned>{8, 2}));
    EXPECT_EQ(pow2_pair_split(12), (std::vector<unsigned>{8, 4}));
    EXPECT_TRUE(pow2_pair_split(14).empty());
    EXPECT_TRUE(pow2_pair_split(8).empty()); // single power of two
    EXPECT_TRUE(pow2_pair_split(7).empty()); // odd
    EXPECT_TRUE(pow2_pair_split(0).empty());
}

TEST(Fig6Trace, ReproducesThePaperWalkthrough)
{
    // Fig. 6's example: three multiplications generate the first
    // output element. The M1 row holds a power of two ("4"), an even
    // composite split into two powers of two, and an odd pair.
    MultLut lut;
    const std::vector<unsigned> weights = {4, 6, 5};
    const std::vector<unsigned> inputs = {3, 3, 7};
    const PipelineTrace trace = trace_conv_dot(weights, inputs, lut);

    // Cycle 0: CB decode. Cycle 1: stream input + read weights.
    ASSERT_FALSE(trace.at(0).empty());
    EXPECT_EQ(trace.at(0)[0].action, TraceAction::DecodeConfig);
    EXPECT_EQ(trace.at(1)[0].action, TraceAction::LoadOperands);

    // Cycle 2 (first multiply, weight 4 = power of two): shift, no
    // LUT access.
    const auto c2 = trace.at(2);
    ASSERT_FALSE(c2.empty());
    EXPECT_EQ(c2[0].action, TraceAction::Shift);

    // Cycle 3 (weight 6 = 4 + 2): two left shifts.
    const auto c3 = trace.at(3);
    ASSERT_FALSE(c3.empty());
    EXPECT_EQ(c3[0].action, TraceAction::ShiftAddPair);

    // Cycle 4 (5 x 7, both odd): LUT accessed only here.
    const auto c4 = trace.at(4);
    ASSERT_FALSE(c4.empty());
    EXPECT_EQ(c4[0].action, TraceAction::LutAccess);
    EXPECT_EQ(trace.count(TraceAction::LutAccess), 1u);

    // Cycle 5: writeback; 3 multiplies end-to-end in 6 cycles.
    const auto c5 = trace.at(5);
    ASSERT_FALSE(c5.empty());
    EXPECT_EQ(c5.back().action, TraceAction::Writeback);
    EXPECT_EQ(trace.cycles, 6u);

    // And the arithmetic is exact: 4*3 + 6*3 + 5*7 = 65.
    EXPECT_EQ(trace.result, 65);
}

TEST(Fig6Trace, TrivialOperandsBypass)
{
    MultLut lut;
    const PipelineTrace trace =
        trace_conv_dot({0, 1, 9}, {5, 9, 1}, lut);
    EXPECT_EQ(trace.count(TraceAction::Bypass), 3u);
    EXPECT_EQ(trace.count(TraceAction::LutAccess), 0u);
    EXPECT_EQ(trace.result, 0 + 9 + 9);
}

TEST(Fig6Trace, EvenWithThreeBitsUsesOddPath)
{
    MultLut lut;
    // 14 = 2 x 7: odd part from the LUT plus a shift.
    const PipelineTrace trace = trace_conv_dot({14}, {3}, lut);
    EXPECT_EQ(trace.count(TraceAction::LutAccess), 1u);
    EXPECT_EQ(trace.result, 42);
}

TEST(Fig6Trace, AccumulatesAcrossElements)
{
    MultLut lut;
    const PipelineTrace trace =
        trace_conv_dot({3, 5, 7, 9}, {3, 5, 7, 9}, lut);
    EXPECT_EQ(trace.result, 9 + 25 + 49 + 81);
    EXPECT_EQ(trace.count(TraceAction::Accumulate), 3u);
    // One multiply per cycle: 4 multiplies + decode + load + writeback.
    EXPECT_EQ(trace.cycles, 7u);
}

TEST(Fig7Trace, EightMultipliesInTwoCycles)
{
    MultLut lut;
    const std::vector<std::int8_t> row = {1, 2, 3, 4, 5, 6, 7, 8};
    const PipelineTrace trace =
        trace_matmul_broadcast({10}, {row}, lut);

    EXPECT_EQ(trace.count(TraceAction::BroadcastLs4), 1u);
    EXPECT_EQ(trace.count(TraceAction::BroadcastMs4), 1u);
    // 10 * (1+2+...+8) = 360.
    EXPECT_EQ(trace.result, 360);
    // decode, load, LS-4, MS-4, writeback.
    EXPECT_EQ(trace.cycles, 5u);
}

TEST(Fig7Trace, SubsequentRowsOverlapTheLoad)
{
    MultLut lut;
    const std::vector<std::int8_t> row(8, 1);
    const PipelineTrace trace =
        trace_matmul_broadcast({3, -5, 7}, {row, row, row}, lut);

    // Three A operands -> three LS/MS pairs; two next-row loads that
    // share cycles with the following pass.
    EXPECT_EQ(trace.count(TraceAction::BroadcastLs4), 3u);
    EXPECT_EQ(trace.count(TraceAction::BroadcastMs4), 3u);
    EXPECT_EQ(trace.count(TraceAction::LoadNextRow), 2u);
    EXPECT_EQ(trace.result, (3 - 5 + 7) * 8);
    // 2 setup + 3 x 2 passes + 1 writeback = 9 cycles: the paper's
    // 8 multiplications per 2 cycles rate.
    EXPECT_EQ(trace.cycles, 9u);
}

TEST(Fig7Trace, RateIsFourMacsPerCycle)
{
    MultLut lut;
    // 16 A operands x 8-wide rows = 128 MACs in 32 broadcast cycles.
    std::vector<std::int32_t> a(16, 3);
    std::vector<std::vector<std::int8_t>> rows(
        16, std::vector<std::int8_t>(8, 2));
    const PipelineTrace trace = trace_matmul_broadcast(a, rows, lut);
    const double broadcast_cycles =
        static_cast<double>(trace.count(TraceAction::BroadcastLs4)
                            + trace.count(TraceAction::BroadcastMs4));
    EXPECT_DOUBLE_EQ(128.0 / broadcast_cycles, 4.0);
}

TEST(TraceFormatting, ReadableDump)
{
    MultLut lut;
    const PipelineTrace trace = trace_conv_dot({4}, {3}, lut);
    const std::string text = trace.toString();
    EXPECT_NE(text.find("cycle 0: decode-config"), std::string::npos);
    EXPECT_NE(text.find("shift"), std::string::npos);
    EXPECT_NE(text.find("result = 12"), std::string::npos);
}
