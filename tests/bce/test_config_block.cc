/**
 * @file
 * Config block encode/decode.
 */

#include <gtest/gtest.h>

#include "bce/config_block.hh"

using namespace bfree::bce;

TEST(ConfigBlock, DefaultRoundTrips)
{
    ConfigBlock cb;
    EXPECT_EQ(ConfigBlock::decode(cb.encode()), cb);
}

/** Round-trip across every opcode. */
class ConfigBlockOpcodes
    : public ::testing::TestWithParam<PimOpcode>
{};

TEST_P(ConfigBlockOpcodes, RoundTrips)
{
    ConfigBlock cb;
    cb.opcode = GetParam();
    cb.precisionBits = 4;
    cb.iterations = 12345;
    cb.startRow = 17;
    cb.endRow = 511;
    EXPECT_EQ(ConfigBlock::decode(cb.encode()), cb);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, ConfigBlockOpcodes,
    ::testing::Values(PimOpcode::Conv, PimOpcode::Matmul,
                      PimOpcode::MaxPool, PimOpcode::AvgPool,
                      PimOpcode::Relu, PimOpcode::Sigmoid,
                      PimOpcode::Tanh, PimOpcode::Exp,
                      PimOpcode::Softmax, PimOpcode::Divide,
                      PimOpcode::EwAdd, PimOpcode::EwMul,
                      PimOpcode::Requantize));

TEST(ConfigBlock, EncodedSizeIsEightBytes)
{
    EXPECT_EQ(ConfigBlock::encoded_size, 8u);
    // Fits comfortably in one sub-array row (8 bytes).
}

TEST(ConfigBlock, SixteenBitFieldsSurviveExtremes)
{
    ConfigBlock cb;
    cb.iterations = 0xFFFF;
    cb.startRow = 0xABCD;
    cb.endRow = 0x1234;
    const ConfigBlock out = ConfigBlock::decode(cb.encode()).value();
    EXPECT_EQ(out.iterations, 0xFFFF);
    EXPECT_EQ(out.startRow, 0xABCD);
    EXPECT_EQ(out.endRow, 0x1234);
}

TEST(ConfigBlock, MalformedOpcodeByteDecodesToNullopt)
{
    // A corrupt CB region must not abort the process — the BCE refuses
    // the fetch and the lint surfaces rule cb-opcode-byte.
    std::array<std::uint8_t, ConfigBlock::encoded_size> bytes{};
    bytes[0] = 0xFF;
    EXPECT_EQ(ConfigBlock::decode(bytes), std::nullopt);

    bytes[0] = static_cast<std::uint8_t>(PimOpcode::LayerNorm) + 1;
    EXPECT_EQ(ConfigBlock::decode(bytes), std::nullopt);

    bytes[0] = static_cast<std::uint8_t>(PimOpcode::LayerNorm);
    ASSERT_TRUE(ConfigBlock::decode(bytes).has_value());
    EXPECT_EQ(ConfigBlock::decode(bytes)->opcode, PimOpcode::LayerNorm);
}

TEST(Isa, OpcodeNames)
{
    EXPECT_STREQ(opcode_name(PimOpcode::Matmul), "matmul");
    EXPECT_STREQ(opcode_name(PimOpcode::Softmax), "softmax");
    EXPECT_TRUE(is_matmul_mode(PimOpcode::Matmul));
    EXPECT_FALSE(is_matmul_mode(PimOpcode::Conv));
}

TEST(Isa, InstructionMacCount)
{
    PimInstruction inst;
    inst.rows = 4;
    inst.cols = 5;
    inst.inner = 6;
    EXPECT_EQ(inst.macs(), 120u);
    EXPECT_NE(inst.toString().find("4x5x6"), std::string::npos);
}
