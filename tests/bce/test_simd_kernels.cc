/**
 * @file
 * Differential proof that every compiled-and-runnable SIMD variant of
 * the tiered span kernels is bit-, stat- and energy-exact against the
 * legacy scalar datapath — the same guarantee test_datapath_tiered
 * establishes for the dispatcher's default pick, here swept across
 * every ISA this binary carries via force_simd_level. Also covers the
 * conv-table invalidation edges the SoA rewrite must preserve:
 * mid-batch LUT-row rewrites force a reseed (observable through
 * Bce::convTableSeeds) and a stale generation is never served.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bce/bce.hh"
#include "bce/simd_kernels.hh"
#include "lut/mult_lut.hh"
#include "sim/cpuid.hh"

using namespace bfree;
using bce::BceMode;
using bce::ExecTier;

namespace {

/** One self-contained BCE rig at a chosen execution tier. */
struct Engine
{
    tech::CacheGeometry geom{};
    tech::TechParams tech{};
    mem::EnergyAccount account;
    mem::Subarray subarray{geom, tech, account};
    bce::Bce bce{subarray, tech, account};

    explicit Engine(ExecTier tier)
    {
        bce.setTier(tier);
        bce.loadMultLutImage();
    }
};

void
expect_stats_equal(const bce::BceStats &a, const bce::BceStats &b,
                   const std::string &ctx)
{
    EXPECT_EQ(a.cycles, b.cycles) << ctx;
    EXPECT_EQ(a.macs, b.macs) << ctx;
    EXPECT_EQ(a.counts.lutLookups, b.counts.lutLookups) << ctx;
    EXPECT_EQ(a.counts.romLookups, b.counts.romLookups) << ctx;
    EXPECT_EQ(a.counts.shifts, b.counts.shifts) << ctx;
    EXPECT_EQ(a.counts.adds, b.counts.adds) << ctx;
    EXPECT_EQ(a.counts.cycles, b.counts.cycles) << ctx;
    EXPECT_EQ(a.lutReadsPim, b.lutReadsPim) << ctx;
    EXPECT_EQ(a.lutReadsCache, b.lutReadsCache) << ctx;
}

/** Flush both engines and require bit-identical joules per category. */
void
expect_engines_identical(Engine &legacy, Engine &simd,
                         const std::string &ctx)
{
    expect_stats_equal(legacy.bce.stats(), simd.bce.stats(), ctx);
    legacy.bce.flushEnergy();
    simd.bce.flushEnergy();
    for (std::size_t c = 0; c < mem::num_energy_categories; ++c) {
        const auto cat = static_cast<mem::EnergyCategory>(c);
        EXPECT_EQ(legacy.account.joules(cat), simd.account.joules(cat))
            << ctx << " energy category " << c;
    }
}

/** Deterministic int8 test vector (no RNG dependence). */
std::vector<std::int8_t>
pattern(std::size_t n, int seed, int limit = 127)
{
    std::vector<std::int8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int r = static_cast<int>((i * 37 + seed * 101) % 1000);
        v[i] = static_cast<std::int8_t>(r % (2 * limit + 1) - limit);
    }
    return v;
}

/**
 * Run @p body once per (SIMD level, tally strategy) pair this binary
 * carries and this CPU can execute, with both dispatchers pinned;
 * always restores the environment-resolved choices afterwards. The
 * tally sweep is what proves the gather-free histogram kernels and
 * the gather fallback byte-identical on every ISA — eligibility is a
 * per-table decision, so both strategies must hold on the same data.
 */
template <typename Body>
void
for_each_runnable_level(Body &&body)
{
    for (const sim::SimdLevel level :
         {sim::SimdLevel::Scalar, sim::SimdLevel::Sse42,
          sim::SimdLevel::Neon, sim::SimdLevel::Avx2,
          sim::SimdLevel::Avx512}) {
        if (!sim::simd_level_compiled(level)
            || !sim::simd_level_supported(level))
            continue;
        sim::force_simd_level(level);
        for (const bce::simd::TallyMode tally :
             {bce::simd::TallyMode::Histogram,
              bce::simd::TallyMode::Gather}) {
            bce::simd::force_tally_mode(tally);
            body(level);
        }
    }
    bce::simd::reset_tally_mode();
    sim::reset_simd_level();
}

} // namespace

// ---------------------------------------------------------------------
// Full operand spaces, every runnable ISA
// ---------------------------------------------------------------------

TEST(SimdKernels, Conv8BitFullOperandSpaceExactAtEveryLevel)
{
    // All 256x256 int8 pairs laid out as one long span per operand
    // row: the exact workload the vector loop, its blocked tally and
    // its tail handling must reproduce.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        std::vector<std::int8_t> a(256), b(256);
        for (int row = -128; row <= 127; ++row) {
            for (int col = -128; col <= 127; ++col) {
                a[static_cast<std::size_t>(col + 128)] =
                    static_cast<std::int8_t>(row);
                b[static_cast<std::size_t>(col + 128)] =
                    static_cast<std::int8_t>(col);
            }
            ASSERT_EQ(
                legacy.bce.dotProductSpan(a.data(), b.data(), 256, 8),
                simd.bce.dotProductSpan(a.data(), b.data(), 256, 8))
                << ctx << " row " << row;
        }
        expect_engines_identical(legacy, simd, ctx);
    });
}

TEST(SimdKernels, Matmul8BitFullOperandSpaceExactAtEveryLevel)
{
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        legacy.bce.setMode(BceMode::Matmul);
        simd.bce.setMode(BceMode::Matmul);
        std::vector<std::int8_t> a(256), b(256);
        for (int row = -128; row <= 127; ++row) {
            for (int col = -128; col <= 127; ++col) {
                a[static_cast<std::size_t>(col + 128)] =
                    static_cast<std::int8_t>(row);
                b[static_cast<std::size_t>(col + 128)] =
                    static_cast<std::int8_t>(col);
            }
            ASSERT_EQ(
                legacy.bce.matmulDotSpan(a.data(), b.data(), 256, 8),
                simd.bce.matmulDotSpan(a.data(), b.data(), 256, 8))
                << ctx << " row " << row;
        }
        expect_engines_identical(legacy, simd, ctx);
    });
}

TEST(SimdKernels, Conv4BitClampsOutOfRangeExactlyAtEveryLevel)
{
    // 4-bit conv spans clamp to [-8, 7]; feed well-out-of-range int8
    // values so every lane exercises the clamp.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        const std::vector<std::int8_t> a = pattern(777, 31, 127);
        const std::vector<std::int8_t> b = pattern(777, 32, 127);
        ASSERT_EQ(
            legacy.bce.dotProductSpan(a.data(), b.data(), a.size(), 4),
            simd.bce.dotProductSpan(a.data(), b.data(), a.size(), 4))
            << ctx;
        expect_engines_identical(legacy, simd, ctx);
    });
}

TEST(SimdKernels, Matmul4BitInDomainExactAtEveryLevel)
{
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        legacy.bce.setMode(BceMode::Matmul);
        simd.bce.setMode(BceMode::Matmul);
        const std::vector<std::int8_t> a = pattern(513, 33, 7);
        const std::vector<std::int8_t> b = pattern(513, 34, 7);
        ASSERT_EQ(
            legacy.bce.matmulDotSpan(a.data(), b.data(), a.size(), 4),
            simd.bce.matmulDotSpan(a.data(), b.data(), a.size(), 4))
            << ctx;
        expect_engines_identical(legacy, simd, ctx);
    });
}

TEST(SimdKernels, RaggedTailLengthsExactAtEveryLevel)
{
    // Span lengths straddling every vector width and remainder shape,
    // so partial-vector tails can't hide a divergence.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        for (std::size_t len = 0; len <= 40; ++len) {
            const std::vector<std::int8_t> a =
                pattern(len, static_cast<int>(len) + 1, 127);
            const std::vector<std::int8_t> b =
                pattern(len, static_cast<int>(len) + 50, 127);
            ASSERT_EQ(
                legacy.bce.dotProductSpan(a.data(), b.data(), len, 8),
                simd.bce.dotProductSpan(a.data(), b.data(), len, 8))
                << ctx << " len " << len;
        }
        expect_engines_identical(legacy, simd, ctx);
    });
}

TEST(SimdKernels, LongSpanBlockedTallyExactAtEveryLevel)
{
    // Long enough to force multiple tally-block spills in both the
    // scalar (256-entry) and vector blocked accumulators.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        const std::vector<std::int8_t> a = pattern(65536, 41, 127);
        const std::vector<std::int8_t> b = pattern(65536, 42, 127);
        ASSERT_EQ(
            legacy.bce.dotProductSpan(a.data(), b.data(), a.size(), 8),
            simd.bce.dotProductSpan(a.data(), b.data(), a.size(), 8))
            << ctx;
        legacy.bce.setMode(BceMode::Matmul);
        simd.bce.setMode(BceMode::Matmul);
        ASSERT_EQ(
            legacy.bce.matmulDotSpan(a.data(), b.data(), a.size(), 8),
            simd.bce.matmulDotSpan(a.data(), b.data(), a.size(), 8))
            << ctx;
        expect_engines_identical(legacy, simd, ctx);
    });
}

// ---------------------------------------------------------------------
// Strict matmul domain: the legacy panic must survive vectorization
// ---------------------------------------------------------------------

namespace {

/** Mid-span out-of-domain 4-bit matmul at a pinned level: must die. */
void
run_out_of_range_matmul(sim::SimdLevel level)
{
    sim::force_simd_level(level);
    Engine e(ExecTier::Tiered);
    e.bce.setMode(BceMode::Matmul);
    // 9 overflows the 4-bit magnitude limit; it sits mid-span so the
    // kernel must detect it before any table gather could read out of
    // bounds.
    const std::int8_t a[12] = {1, 2, 3, 4, 5, 6, 9, 1, 2, 3, 4, 5};
    const std::int8_t b[12] = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
    (void)e.bce.matmulDotSpan(a, b, 12, 4);
}

} // namespace

TEST(SimdKernelsDeath, Matmul4BitOutOfRangePanicsAtEveryLevel)
{
    for (const sim::SimdLevel level :
         {sim::SimdLevel::Scalar, sim::SimdLevel::Sse42,
          sim::SimdLevel::Neon, sim::SimdLevel::Avx2,
          sim::SimdLevel::Avx512}) {
        if (!sim::simd_level_compiled(level)
            || !sim::simd_level_supported(level))
            continue;
        EXPECT_DEATH(run_out_of_range_matmul(level),
                     "exceeds 4-bit range: 9");
    }
    sim::reset_simd_level();
}

// ---------------------------------------------------------------------
// Poisoned tables: the widening-multiply fast path must stand down
// ---------------------------------------------------------------------

TEST(SimdKernels, PoisonedLutExactAtEveryLevel)
{
    // scratchWrite rewrites a LUT row byte, so the reseeded table's
    // product plane no longer equals a*b (productsExact drops) and the
    // kernels must gather poisoned products instead of multiplying.
    for_each_runnable_level([](sim::SimdLevel level) {
        const std::string ctx = sim::simd_level_name(level);
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        legacy.subarray.scratchWrite(0, 42);
        simd.subarray.scratchWrite(0, 42);

        const std::int8_t three = 3;
        const std::int32_t pl =
            legacy.bce.dotProductSpan(&three, &three, 1, 8);
        const std::int32_t pt =
            simd.bce.dotProductSpan(&three, &three, 1, 8);
        EXPECT_EQ(42, pl) << ctx; // the poisoned entry, shift 0
        EXPECT_EQ(pl, pt) << ctx;

        const std::vector<std::int8_t> a = pattern(1024, 51, 127);
        const std::vector<std::int8_t> b = pattern(1024, 52, 127);
        ASSERT_EQ(
            legacy.bce.dotProductSpan(a.data(), b.data(), a.size(), 8),
            simd.bce.dotProductSpan(a.data(), b.data(), a.size(), 8))
            << ctx;
        expect_engines_identical(legacy, simd, ctx);
    });
}

// ---------------------------------------------------------------------
// Conv-table invalidation edges
// ---------------------------------------------------------------------

TEST(SimdKernels, LutRowRewriteMidBatchForcesExactlyOneReseed)
{
    Engine e(ExecTier::Tiered);
    const std::vector<std::int8_t> a = pattern(64, 61, 127);
    const std::vector<std::int8_t> b = pattern(64, 62, 127);

    EXPECT_EQ(0u, e.bce.convTableSeeds());
    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 8);
    EXPECT_EQ(1u, e.bce.convTableSeeds()); // first use seeds

    // Steady state: further spans reuse the memoized table.
    for (int i = 0; i < 5; ++i)
        (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 8);
    EXPECT_EQ(1u, e.bce.convTableSeeds());

    // A LUT-row rewrite mid-batch moves the sub-array generation; the
    // very next span must reseed once, then settle again.
    e.subarray.scratchWrite(0, 42);
    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 8);
    EXPECT_EQ(2u, e.bce.convTableSeeds());
    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 8);
    EXPECT_EQ(2u, e.bce.convTableSeeds());

    // Every further rewrite moves the generation and costs one reseed.
    e.subarray.scratchWrite(1, 7);
    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 8);
    EXPECT_EQ(3u, e.bce.convTableSeeds());
}

TEST(SimdKernels, EachPrecisionSeedsItsOwnConvTable)
{
    Engine e(ExecTier::Tiered);
    const std::vector<std::int8_t> a = pattern(32, 71, 7);
    const std::vector<std::int8_t> b = pattern(32, 72, 7);

    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 8);
    EXPECT_EQ(1u, e.bce.convTableSeeds());
    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 4);
    EXPECT_EQ(2u, e.bce.convTableSeeds()); // 4-bit table is separate
    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 4);
    (void)e.bce.dotProductSpan(a.data(), b.data(), a.size(), 8);
    EXPECT_EQ(2u, e.bce.convTableSeeds()); // both now warm
}

TEST(SimdKernels, StaleGenerationIsNeverServed)
{
    // The dispatch-time staleness predicate the conv path relies on:
    // a table seeded against generation G must stop matching as soon
    // as the sub-array moves past G.
    Engine e(ExecTier::Tiered);
    const std::int8_t three = 3;
    (void)e.bce.dotProductSpan(&three, &three, 1, 8);

    const std::uint64_t gen = e.subarray.lutGeneration();
    e.subarray.scratchWrite(0, 42);
    EXPECT_NE(gen, e.subarray.lutGeneration());

    // Serving after the rewrite reflects the poisoned byte — proof the
    // stale table was rejected, not reused.
    EXPECT_EQ(42, e.bce.dotProductSpan(&three, &three, 1, 8));
}

// ---------------------------------------------------------------------
// run_span contract details
// ---------------------------------------------------------------------

TEST(SimdKernels, RunSpanReportsFirstOutOfRangeIndex)
{
    Engine e(ExecTier::Tiered);
    e.bce.setMode(BceMode::Matmul);
    // Build the 4-bit ROM table through a benign span first.
    const std::int8_t ok[4] = {1, 2, 3, 4};
    (void)e.bce.matmulDotSpan(ok, ok, 4, 4);

    const lut::DatapathTable t = lut::build_rom_datapath_table(
        4, lut::MultLut{});
    const std::int8_t a[6] = {1, 2, 3, 9, 10, 1};
    const std::int8_t b[6] = {1, 1, 1, 1, 1, 1};
    const bce::simd::SpanSums s = bce::simd::run_span(
        t, a, b, 6, bce::simd::SpanSemantics::MatmulStrict);
    EXPECT_FALSE(s.inRange);
    EXPECT_EQ(3u, s.firstOutOfRange);

    const bce::simd::SpanSums in = bce::simd::run_span(
        t, a, b, 3, bce::simd::SpanSemantics::MatmulStrict);
    EXPECT_TRUE(in.inRange);
    EXPECT_EQ(6, in.acc); // 1 + 2 + 3
}

TEST(SimdKernels, ZeroLengthSpanIsANoOp)
{
    for_each_runnable_level([](sim::SimdLevel level) {
        Engine legacy(ExecTier::Legacy);
        Engine simd(ExecTier::Tiered);
        EXPECT_EQ(0, legacy.bce.dotProductSpan(nullptr, nullptr, 0, 8));
        EXPECT_EQ(0, simd.bce.dotProductSpan(nullptr, nullptr, 0, 8));
        expect_engines_identical(legacy, simd,
                                 sim::simd_level_name(level));
    });
}

// ---------------------------------------------------------------------
// Tally-strategy knob
// ---------------------------------------------------------------------

TEST(SimdKernels, HistogramAndGatherEnginesByteIdentical)
{
    // Head-to-head rather than each-vs-legacy: two tiered engines, one
    // pinned to the histogram fold and one to the delta-plane gather,
    // fed the same spans. Sums, stats and energy must be identical.
    for (const sim::SimdLevel level :
         {sim::SimdLevel::Sse42, sim::SimdLevel::Avx2,
          sim::SimdLevel::Avx512}) {
        if (!sim::simd_level_compiled(level)
            || !sim::simd_level_supported(level))
            continue;
        sim::force_simd_level(level);
        const std::string ctx = sim::simd_level_name(level);
        Engine hist(ExecTier::Tiered);
        Engine gather(ExecTier::Tiered);
        for (std::size_t len : {std::size_t{7}, std::size_t{256},
                                std::size_t{9001}}) {
            const std::vector<std::int8_t> a =
                pattern(len, static_cast<int>(len), 127);
            const std::vector<std::int8_t> b =
                pattern(len, static_cast<int>(len) + 9, 127);
            bce::simd::force_tally_mode(bce::simd::TallyMode::Histogram);
            const std::int32_t rh =
                hist.bce.dotProductSpan(a.data(), b.data(), len, 8);
            bce::simd::force_tally_mode(bce::simd::TallyMode::Gather);
            const std::int32_t rg =
                gather.bce.dotProductSpan(a.data(), b.data(), len, 8);
            ASSERT_EQ(rh, rg) << ctx << " len " << len;
        }
        expect_engines_identical(hist, gather, ctx);
    }
    bce::simd::reset_tally_mode();
    sim::reset_simd_level();
}

TEST(SimdKernels, TallyEnvironmentKnobResolves)
{
    ASSERT_EQ(0, setenv("BFREE_TIERED_TALLY", "gather", 1));
    bce::simd::reset_tally_mode();
    EXPECT_EQ(bce::simd::TallyMode::Gather,
              bce::simd::active_tally_mode());

    ASSERT_EQ(0, setenv("BFREE_TIERED_TALLY", "histogram", 1));
    bce::simd::reset_tally_mode();
    EXPECT_EQ(bce::simd::TallyMode::Histogram,
              bce::simd::active_tally_mode());

    // Unset means the gather-free default.
    ASSERT_EQ(0, unsetenv("BFREE_TIERED_TALLY"));
    bce::simd::reset_tally_mode();
    EXPECT_EQ(bce::simd::TallyMode::Histogram,
              bce::simd::active_tally_mode());

    EXPECT_STREQ("histogram", bce::simd::tally_mode_name(
                                  bce::simd::TallyMode::Histogram));
    EXPECT_STREQ("gather", bce::simd::tally_mode_name(
                               bce::simd::TallyMode::Gather));
}

TEST(SimdKernelsDeath, UnknownTallyKnobIsFatal)
{
    ASSERT_EQ(0, setenv("BFREE_TIERED_TALLY", "turbo", 1));
    EXPECT_DEATH(
        {
            bce::simd::reset_tally_mode();
            (void)bce::simd::active_tally_mode();
        },
        "not a known tally");
    ASSERT_EQ(0, unsetenv("BFREE_TIERED_TALLY"));
    bce::simd::reset_tally_mode();
}
