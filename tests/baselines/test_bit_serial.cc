/**
 * @file
 * The bit-serial bitline-computing machine: exact arithmetic across
 * lanes, and cycle counts matching the published formulas (102 cycles
 * per 8-bit multiply -> PIM-OPC 0.63).
 */

#include <gtest/gtest.h>

#include "baselines/bit_serial.hh"
#include "baselines/neural_cache.hh"
#include "sim/random.hh"

using namespace bfree::baseline;

TEST(BitSerialCycles, PublishedFormulas)
{
    // Section II-C: "a 8-bit multiplication takes 102 PIM cycles".
    EXPECT_EQ(bit_serial_mult_cycles(8), 102u);
    EXPECT_EQ(bit_serial_add_cycles(8), 9u);
    // And the formula shape: n^2 + 5n - 2.
    EXPECT_EQ(bit_serial_mult_cycles(4), 34u);
    EXPECT_EQ(bit_serial_mult_cycles(16), 334u);
}

TEST(BitSerialCycles, PimOpcIsPointSixThree)
{
    // 64 bitlines / 102 cycles, the paper's PIM-OPC computation.
    const double pim_opc = 64.0 / bit_serial_mult_cycles(8);
    EXPECT_NEAR(pim_opc, 0.63, 0.01);
    // And the NeuralCacheModel uses exactly this rate.
    EXPECT_NEAR(NeuralCacheParams{}.macsPerCycle(), pim_opc, 1e-12);
}

TEST(BitSerialAdd, ExactAcrossAllLanes)
{
    bfree::sim::Rng rng(88);
    BitSerialArray array(64, 8);
    std::vector<std::uint16_t> a(64);
    std::vector<std::uint16_t> b(64);
    for (unsigned l = 0; l < 64; ++l) {
        a[l] = static_cast<std::uint16_t>(rng.uniformInt(0, 255));
        b[l] = static_cast<std::uint16_t>(rng.uniformInt(0, 255));
    }
    array.loadA(a);
    array.loadB(b);
    const auto sums = array.add();
    for (unsigned l = 0; l < 64; ++l)
        EXPECT_EQ(sums[l], std::uint32_t(a[l]) + b[l]) << l;
    EXPECT_EQ(array.cyclesConsumed(), bit_serial_add_cycles(8));
}

TEST(BitSerialMultiply, ExhaustiveFourBit)
{
    // Every 4-bit pair, one lane per pair per pass.
    for (unsigned a = 0; a < 16; ++a) {
        BitSerialArray array(16, 4);
        std::vector<std::uint16_t> av(16, static_cast<std::uint16_t>(a));
        std::vector<std::uint16_t> bv(16);
        for (unsigned b = 0; b < 16; ++b)
            bv[b] = static_cast<std::uint16_t>(b);
        array.loadA(av);
        array.loadB(bv);
        const auto products = array.multiply();
        for (unsigned b = 0; b < 16; ++b)
            ASSERT_EQ(products[b], a * b) << a << " x " << b;
        EXPECT_EQ(array.cyclesConsumed(), bit_serial_mult_cycles(4));
    }
}

TEST(BitSerialMultiply, RandomEightBitLanes)
{
    bfree::sim::Rng rng(89);
    BitSerialArray array(64, 8);
    std::vector<std::uint16_t> a(64);
    std::vector<std::uint16_t> b(64);
    for (unsigned l = 0; l < 64; ++l) {
        a[l] = static_cast<std::uint16_t>(rng.uniformInt(0, 255));
        b[l] = static_cast<std::uint16_t>(rng.uniformInt(0, 255));
    }
    array.loadA(a);
    array.loadB(b);
    const auto products = array.multiply();
    for (unsigned l = 0; l < 64; ++l)
        ASSERT_EQ(products[l], std::uint32_t(a[l]) * b[l]) << l;
    EXPECT_EQ(array.cyclesConsumed(), 102u);
}

TEST(BitSerialMultiply, EveryCycleSwingsEveryBitline)
{
    // The energy argument of Section II-C: bitline activations =
    // cycles x lanes, which is why 102-cycle multiplies are costly.
    BitSerialArray array(64, 8);
    array.loadA(std::vector<std::uint16_t>(64, 3));
    array.loadB(std::vector<std::uint16_t>(64, 5));
    array.multiply();
    EXPECT_EQ(array.bitlineActivations(), 102u * 64u);
}

TEST(BitSerialMultiply, CyclesAccumulateAcrossOperations)
{
    BitSerialArray array(8, 8);
    array.loadA(std::vector<std::uint16_t>(8, 7));
    array.loadB(std::vector<std::uint16_t>(8, 9));
    array.multiply();
    array.multiply();
    EXPECT_EQ(array.cyclesConsumed(), 2u * 102u);
}

TEST(BitSerialVsBce, ThroughputGapMatchesThePaper)
{
    // One BFree sub-array in conv mode: 0.5 MAC/cycle at 1.5 GHz.
    // One Neural Cache sub-array: 64/102 MAC/cycle at the derated MRA
    // clock. The per-sub-array throughput ratio underlies Fig. 12(a).
    const bfree::tech::TechParams tech;
    const double bfree_rate = 0.5 * tech.subarrayClockHz;
    const double nc_rate =
        64.0 / bit_serial_mult_cycles(8) * tech.neuralCacheClockHz;
    EXPECT_GT(bfree_rate, nc_rate);
    EXPECT_NEAR(bfree_rate / nc_rate, 1.4, 0.3);
}

TEST(BitSerialDeath, BadShapes)
{
    EXPECT_DEATH(BitSerialArray(0, 8), "lane");
    EXPECT_DEATH(BitSerialArray(8, 0), "width");
    BitSerialArray array(4, 8);
    EXPECT_DEATH(array.loadA({1, 2}), "expected");
}
