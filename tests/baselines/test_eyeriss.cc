/**
 * @file
 * Eyeriss baseline and the Fig. 13 iso-area comparison: BFree in one
 * 2.5 MB slice is ~4x faster on VGG-16.
 */

#include <gtest/gtest.h>

#include "baselines/eyeriss.hh"
#include "dnn/model_zoo.hh"
#include "map/exec_model.hh"

using namespace bfree::baseline;
using namespace bfree::map;
using bfree::dnn::make_vgg16;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

TEST(Eyeriss, IsoAreaConfigurationIsTwelveByTwelve)
{
    const EyerissParams p =
        EyerissModel::isoArea(CacheGeometry{}, TechParams{});
    EXPECT_GE(p.peRows, 10u);
    EXPECT_LE(p.peRows, 13u);
    EXPECT_EQ(p.peRows, p.peCols);
    EXPECT_DOUBLE_EQ(p.clockHz, TechParams{}.subarrayClockHz);
}

TEST(Eyeriss, RunCoversAllLayers)
{
    EyerissModel eyeriss((TechParams()));
    const RunResult r = eyeriss.run(make_vgg16());
    EXPECT_EQ(r.layers.size(), make_vgg16().layers().size());
    EXPECT_GT(r.secondsPerInference(), 0.0);
}

TEST(Fig13, BFreeSliceBeatsIsoAreaEyeriss)
{
    // Paper: 3.97x faster on VGG-16 with one 2.5 MB slice.
    ExecConfig cfg;
    cfg.mapper.slices = 1;
    ExecutionModel bfree_model(CacheGeometry{}, TechParams{}, cfg);
    EyerissModel eyeriss(
        TechParams{}, bfree::tech::MainMemoryKind::DRAM,
        EyerissModel::isoArea(CacheGeometry{}, TechParams{}));

    const auto vgg = make_vgg16();
    const double t_bfree =
        bfree_model.run(vgg).secondsPerInference();
    const double t_eyeriss = eyeriss.run(vgg).secondsPerInference();
    const double speedup = t_eyeriss / t_bfree;
    EXPECT_GT(speedup, 2.5);
    EXPECT_LT(speedup, 6.5);
}

TEST(Fig13, EveryConvLayerFavorsBFree)
{
    // The layer-wise series in Fig. 13: BFree wins on the large conv
    // layers (the memory-bound tail can tie).
    ExecConfig cfg;
    cfg.mapper.slices = 1;
    ExecutionModel bfree_model(CacheGeometry{}, TechParams{}, cfg);
    EyerissModel eyeriss(
        TechParams{}, bfree::tech::MainMemoryKind::DRAM,
        EyerissModel::isoArea(CacheGeometry{}, TechParams{}));

    const auto vgg = make_vgg16();
    const RunResult rb = bfree_model.run(vgg);
    const RunResult re = eyeriss.run(vgg);
    ASSERT_EQ(rb.layers.size(), re.layers.size());
    unsigned bfree_wins = 0;
    unsigned conv_layers = 0;
    for (std::size_t i = 0; i < rb.layers.size(); ++i) {
        if (rb.layers[i].kind != bfree::dnn::LayerKind::Conv)
            continue;
        ++conv_layers;
        if (rb.layers[i].time.total() < re.layers[i].time.total())
            ++bfree_wins;
    }
    EXPECT_EQ(conv_layers, 13u);
    EXPECT_GE(bfree_wins, 11u);
}

TEST(Eyeriss, ComputeRateMatchesParams)
{
    EyerissParams p;
    p.peRows = 12;
    p.peCols = 12;
    p.utilization = 1.0;
    p.clockHz = 1e9;
    EyerissModel eyeriss(TechParams{},
                         bfree::tech::MainMemoryKind::HBM, p);

    // One layer with known MACs; at util 1.0 and 144 PEs @ 1 GHz the
    // compute time is macs / 144e9.
    bfree::dnn::Network net("one", {8, 8, 8});
    net.add(bfree::dnn::make_conv("c", {8, 8, 8}, 8, 3, 1, 1));
    const RunResult r = eyeriss.run(net);
    const double macs =
        static_cast<double>(net.layers()[0].macs());
    EXPECT_NEAR(r.time.compute, macs / 144e9, macs / 144e9 * 1e-9);
}

TEST(Eyeriss, DoubleBufferingExposesOnlyExcessStreamTime)
{
    // A tiny compute layer with big weights is stream-bound.
    EyerissModel eyeriss((TechParams()));
    bfree::dnn::Network net("fc", {4096, 1, 1});
    net.add(bfree::dnn::make_fc("fc", 4096, 4096));
    const RunResult r = eyeriss.run(net);
    EXPECT_GT(r.time.inputLoad, r.time.compute);
}
