/**
 * @file
 * Neural Cache baseline: PIM-OPC, phase structure, and the Fig. 12
 * comparison shape (BFree ~1.7x faster, ~3x lower energy on
 * Inception-v3).
 */

#include <gtest/gtest.h>

#include "baselines/neural_cache.hh"
#include "dnn/model_zoo.hh"
#include "map/exec_model.hh"

using namespace bfree::baseline;
using namespace bfree::map;
using bfree::dnn::make_inception_v3;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

ExecConfig
conv_mode_config()
{
    // The paper's Fig. 12 comparison runs BFree in conv mode.
    ExecConfig cfg;
    cfg.mapper.forcedMode = ExecMode::ConvMode;
    return cfg;
}

} // namespace

TEST(NeuralCache, PimOpcIsPointSixThree)
{
    NeuralCacheParams p;
    // 64 bitlines / 102 cycles (Section II-C).
    EXPECT_NEAR(p.macsPerCycle(), 0.63, 0.01);
    EXPECT_EQ(p.macCycles8bit, 102u);
}

TEST(NeuralCache, ArrayClockIsSlowerThanBFree)
{
    const TechParams t;
    // MRA wordline underdrive costs frequency (Section II-B).
    EXPECT_LT(t.neuralCacheClockHz, t.subarrayClockHz);
}

TEST(NeuralCache, RunProducesPerLayerResults)
{
    NeuralCacheModel nc(CacheGeometry{}, TechParams{});
    const RunResult r = nc.run(make_inception_v3());
    EXPECT_EQ(r.layers.size(), make_inception_v3().layers().size());
    EXPECT_GT(r.secondsPerInference(), 0.0);
    EXPECT_GT(r.joulesPerInference(), 0.0);
}

TEST(NeuralCache, HasExplicitInputLoadPhase)
{
    // Unlike BFree, input transposition is exposed even for
    // SRAM-resident intermediates (load-then-compute, Section V-D).
    NeuralCacheModel nc(CacheGeometry{}, TechParams{});
    const RunResult r = nc.run(make_inception_v3());
    EXPECT_GT(r.time.inputLoad, 0.0);
}

TEST(Fig12, BFreeSpeedupNearPaper)
{
    // Paper: 1.72x overall speedup on Inception-v3 at 35 MB.
    const ExecConfig cfg = conv_mode_config();
    ExecutionModel bfree_model(CacheGeometry{}, TechParams{}, cfg);
    NeuralCacheModel nc(CacheGeometry{}, TechParams{}, cfg);

    const auto net = make_inception_v3();
    const double t_bfree =
        bfree_model.run(net).secondsPerInference();
    const double t_nc = nc.run(net).secondsPerInference();
    const double speedup = t_nc / t_bfree;
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 2.3);
}

TEST(Fig12, BFreeEnergySavingsNearPaper)
{
    // Paper: 3.14x lower energy on Inception-v3.
    const ExecConfig cfg = conv_mode_config();
    ExecutionModel bfree_model(CacheGeometry{}, TechParams{}, cfg);
    NeuralCacheModel nc(CacheGeometry{}, TechParams{}, cfg);

    const auto net = make_inception_v3();
    const double e_bfree = bfree_model.run(net).joulesPerInference();
    const double e_nc = nc.run(net).joulesPerInference();
    const double ratio = e_nc / e_bfree;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 6.0);
}

TEST(Fig12, NeuralCacheSpendsLargeShareLoadingAndReducing)
{
    // Fig. 12(c): ~30% of Neural Cache execution is input loading and
    // reduction.
    NeuralCacheModel nc(CacheGeometry{}, TechParams{},
                        conv_mode_config());
    const RunResult r = nc.run(make_inception_v3());
    const double overhead = r.time.inputLoad + r.time.requant;
    const double share = overhead / r.secondsPerInference();
    EXPECT_GT(share, 0.10);
    EXPECT_LT(share, 0.55);
}

TEST(Fig12, ComputeEnergyPerMacFavorsBFree)
{
    // Neural Cache pays ~102/64 x 15.4 pJ per MAC in bitline swings;
    // BFree pays ~1 byte of sub-array read plus a 0.5 pJ ROM MAC.
    const TechParams t;
    const double nc_per_mac = 102.0 / 64.0 * t.bitlineComputeOpPj;
    const double bfree_per_mac =
        t.subarrayAccessPj / 8.0 + t.bceMacPj
        + 2.0 * t.bceEnergyPerCyclePj(t.bceConvModeMw);
    EXPECT_GT(nc_per_mac, 5.0 * bfree_per_mac);
}

TEST(NeuralCache, FourBitIsFasterThanEightBit)
{
    NeuralCacheModel nc(CacheGeometry{}, TechParams{});
    auto net8 = make_inception_v3();
    auto net4 = make_inception_v3();
    net4.setUniformPrecision(4);
    EXPECT_LT(nc.run(net4).time.compute, nc.run(net8).time.compute);
}
