/**
 * @file
 * Calibrated CPU/GPU baselines: the models must land near the paper's
 * Table III measurements.
 */

#include <gtest/gtest.h>

#include "baselines/cpu_gpu.hh"
#include "dnn/model_zoo.hh"

using namespace bfree::baseline;
using namespace bfree::dnn;

namespace {

ProcessorModel
cpu()
{
    return ProcessorModel(xeon_e5_2697());
}

ProcessorModel
gpu()
{
    return ProcessorModel(titan_v());
}

/** Accept a modelled value within a factor band of the measurement. */
void
expect_near_factor(double got, double measured, double factor)
{
    EXPECT_GT(got, measured / factor);
    EXPECT_LT(got, measured * factor);
}

} // namespace

TEST(Classify, NetworksLandInTheRightClass)
{
    EXPECT_EQ(classify(make_vgg16()), WorkloadClass::Cnn);
    EXPECT_EQ(classify(make_inception_v3()), WorkloadClass::Cnn);
    EXPECT_EQ(classify(make_lstm()), WorkloadClass::Rnn);
    EXPECT_EQ(classify(make_bert_base()), WorkloadClass::Transformer);
    EXPECT_EQ(classify(make_bert_large()), WorkloadClass::Transformer);
}

TEST(TableIII, CpuBertBaseBatchOne)
{
    // Measured: 1160 ms, 34.8 J.
    const BaselineResult r = cpu().run(make_bert_base(), 1);
    expect_near_factor(r.secondsPerInference, 1.160, 1.25);
    expect_near_factor(r.joulesPerInference, 34.8, 1.4);
}

TEST(TableIII, CpuBertBaseBatchSixteen)
{
    // Measured: 121.3 ms, 3.64 J per inference.
    const BaselineResult r = cpu().run(make_bert_base(), 16);
    expect_near_factor(r.secondsPerInference, 0.1213, 1.25);
    expect_near_factor(r.joulesPerInference, 3.64, 1.6);
}

TEST(TableIII, CpuBertLargeBatchOne)
{
    // Measured: 2910 ms.
    const BaselineResult r = cpu().run(make_bert_large(), 1);
    expect_near_factor(r.secondsPerInference, 2.910, 1.4);
}

TEST(TableIII, CpuLstm)
{
    // Measured: 888.3 ms, 31.09 J for the 300-step sequence.
    const BaselineResult r = cpu().run(make_lstm(), 1);
    expect_near_factor(r.secondsPerInference, 0.8883, 1.35);
    expect_near_factor(r.joulesPerInference, 31.09, 1.6);
}

TEST(TableIII, GpuBertBaseBatchOne)
{
    // Measured: 47.3 ms, 1.67 J.
    const BaselineResult r = gpu().run(make_bert_base(), 1);
    expect_near_factor(r.secondsPerInference, 0.0473, 1.3);
    expect_near_factor(r.joulesPerInference, 1.67, 1.6);
}

TEST(TableIII, GpuBertBaseBatchSixteen)
{
    // Measured: 3.8 ms, 0.45 J per inference.
    const BaselineResult r = gpu().run(make_bert_base(), 16);
    expect_near_factor(r.secondsPerInference, 0.0038, 1.3);
    expect_near_factor(r.joulesPerInference, 0.45, 1.6);
}

TEST(TableIII, GpuLstm)
{
    // Measured: 96.2 ms.
    const BaselineResult r = gpu().run(make_lstm(), 1);
    expect_near_factor(r.secondsPerInference, 0.0962, 1.5);
}

TEST(Baselines, BatchingHelpsParallelWorkloads)
{
    const double t1 =
        cpu().run(make_bert_base(), 1).secondsPerInference;
    const double t16 =
        cpu().run(make_bert_base(), 16).secondsPerInference;
    EXPECT_LT(t16, t1 / 4.0);
}

TEST(Baselines, BatchingDoesNotHelpTheRecurrence)
{
    const double t1 = cpu().run(make_lstm(), 1).secondsPerInference;
    const double t16 = cpu().run(make_lstm(), 16).secondsPerInference;
    EXPECT_DOUBLE_EQ(t1, t16);
}

TEST(Baselines, GpuBeatsCpuEverywhere)
{
    for (unsigned batch : {1u, 16u}) {
        for (const Network &net :
             {make_bert_base(), make_lstm(), make_vgg16()}) {
            EXPECT_LT(gpu().run(net, batch).secondsPerInference,
                      cpu().run(net, batch).secondsPerInference)
                << net.name() << " batch " << batch;
        }
    }
}

TEST(Baselines, UtilizationInterpolatesMonotonically)
{
    const ProcessorParams p = xeon_e5_2697();
    double prev = 0.0;
    for (unsigned b : {1u, 2u, 4u, 8u, 16u}) {
        const double u = p.utilization(WorkloadClass::Transformer, b);
        EXPECT_GE(u, prev);
        prev = u;
    }
}

TEST(Baselines, PowerScalesWithUtilization)
{
    const BaselineResult low = gpu().run(make_bert_base(), 1);
    const BaselineResult high = gpu().run(make_bert_base(), 16);
    EXPECT_GT(high.watts, low.watts);
    // Measured averages: ~35 W unbatched, ~118 W batched.
    expect_near_factor(high.watts, 118.0, 1.4);
}
