/**
 * @file
 * The static kernel verifier: a golden corpus of valid kernels for
 * every PimOpcode, one deliberately-broken kernel per rule (asserting
 * the exact rule id fires), and the whole-zoo cleanliness guarantee
 * bfree_lint relies on.
 */

#include <gtest/gtest.h>

#include "core/bfree.hh"
#include "dnn/model_zoo.hh"
#include "map/kernel_compiler.hh"
#include "map/placement.hh"
#include "verify/kernel_verifier.hh"

using namespace bfree;
using namespace bfree::verify;

namespace {

tech::CacheGeometry
defaultGeometry()
{
    return tech::CacheGeometry{};
}

KernelVerifier
makeVerifier()
{
    return KernelVerifier(defaultGeometry());
}

/** Compile @p layer with the default mapper and verify against it. */
VerifyReport
compileAndVerify(const dnn::Layer &layer,
                 map::MapperOptions opts = {})
{
    const map::KernelCompiler compiler(defaultGeometry(), opts);
    const map::CompiledKernel k = compiler.compile(layer);
    return makeVerifier().verify(k, layer);
}

/**
 * A hand-built special-mode kernel for opcodes the zoo's layer kinds
 * never lower to directly (Exp, Divide, EwMul, Requantize).
 */
map::CompiledKernel
specialKernel(bce::PimOpcode op)
{
    map::CompiledKernel k;
    bce::PimInstruction inst;
    inst.opcode = op;
    inst.precisionBits = 8;
    inst.rows = 4096; // elements
    k.instructions.push_back(inst);

    k.mapping.mode = map::ExecMode::SpecialMode;
    k.mapping.weightTiles = 0;
    k.mapping.duplication = 1;
    k.mapping.activeSubarrays = 64;

    k.totalSteps = 4096 / 64;
    k.configBlock.opcode = op;
    k.configBlock.precisionBits = 8;
    k.configBlock.iterations =
        static_cast<std::uint16_t>(k.totalSteps);
    return k;
}

/** A minimal valid compute kernel to break one invariant at a time. */
map::CompiledKernel
validFcKernel()
{
    const map::KernelCompiler compiler(defaultGeometry());
    return compiler.compile(dnn::make_fc("fc", 256, 256));
}

} // namespace

// ----------------------------------------------------------------------
// Golden corpus: every opcode has a verifiably clean kernel.
// ----------------------------------------------------------------------

TEST(GoldenCorpus, ConvOpcodeInConvMode)
{
    map::MapperOptions opts;
    opts.forcedMode = map::ExecMode::ConvMode;
    const auto report = compileAndVerify(
        dnn::make_conv("c", {64, 56, 56}, 64, 3, 1, 1), opts);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(GoldenCorpus, MatmulOpcode)
{
    const auto report =
        compileAndVerify(dnn::make_fc("fc", 4096, 4096));
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(GoldenCorpus, SpecialLayerOpcodes)
{
    const dnn::FeatureShape shape{64, 28, 28};
    const std::vector<dnn::Layer> layers = {
        dnn::make_pool("maxpool", dnn::LayerKind::MaxPool, shape, 2, 2),
        dnn::make_pool("avgpool", dnn::LayerKind::AvgPool, shape, 2, 2),
        dnn::make_activation("relu", dnn::LayerKind::Relu, shape),
        dnn::make_activation("sigmoid", dnn::LayerKind::Sigmoid, shape),
        dnn::make_activation("tanh", dnn::LayerKind::Tanh, shape),
        dnn::make_activation("softmax", dnn::LayerKind::Softmax, shape),
        dnn::make_layer_norm("ln", 128, 768),
        dnn::make_ew_add("add", shape),
    };
    for (const dnn::Layer &layer : layers) {
        const auto report = compileAndVerify(layer);
        EXPECT_TRUE(report.ok()) << layer.name << "\n"
                                 << report.toString();
    }
}

TEST(GoldenCorpus, CompositeLayerOpcodes)
{
    // LSTM cell and attention lower to matmul (+softmax) kernels.
    const auto lstm =
        compileAndVerify(dnn::make_lstm_cell("cell", 39, 1024));
    EXPECT_TRUE(lstm.ok()) << lstm.toString();
    const auto attn =
        compileAndVerify(dnn::make_attention("attn", 128, 768, 12));
    EXPECT_TRUE(attn.ok()) << attn.toString();
}

TEST(GoldenCorpus, HandBuiltSpecialOpcodes)
{
    // Opcodes with no direct layer kind still verify as kernels.
    for (const bce::PimOpcode op :
         {bce::PimOpcode::Exp, bce::PimOpcode::Divide,
          bce::PimOpcode::EwMul, bce::PimOpcode::Requantize}) {
        const auto report = makeVerifier().verify(specialKernel(op));
        EXPECT_TRUE(report.ok())
            << bce::opcode_name(op) << "\n" << report.toString();
    }
}

TEST(GoldenCorpus, EveryOpcodeRoundTripsThroughConfigBytes)
{
    const auto verifier = makeVerifier();
    for (unsigned v = 0;
         v <= static_cast<unsigned>(bce::PimOpcode::LayerNorm); ++v) {
        bce::ConfigBlock cb;
        cb.opcode = static_cast<bce::PimOpcode>(v);
        cb.precisionBits = 8;
        VerifyReport report;
        verifier.checkConfigBytes(cb.encode(), report);
        EXPECT_TRUE(report.ok()) << v << "\n" << report.toString();
    }
}

// ----------------------------------------------------------------------
// Broken corpus: one seeded violation per rule, exact rule id asserted.
// ----------------------------------------------------------------------

TEST(BrokenCorpus, CbOpcodeByte)
{
    std::array<std::uint8_t, bce::ConfigBlock::encoded_size> bytes{};
    bytes[0] = 0xEE;
    VerifyReport report;
    makeVerifier().checkConfigBytes(bytes, report);
    EXPECT_TRUE(report.has(RuleId::CbOpcodeByte)) << report.toString();
    EXPECT_FALSE(report.ok());
}

TEST(BrokenCorpus, CbRoundTrip)
{
    bce::ConfigBlock cb;
    cb.opcode = static_cast<bce::PimOpcode>(99); // forged enum value
    VerifyReport report;
    makeVerifier().checkConfigBlock(cb, report);
    EXPECT_TRUE(report.has(RuleId::CbRoundTrip)) << report.toString();
}

TEST(BrokenCorpus, CbPrecision)
{
    bce::ConfigBlock cb;
    cb.precisionBits = 5;
    VerifyReport report;
    makeVerifier().checkConfigBlock(cb, report);
    EXPECT_TRUE(report.has(RuleId::CbPrecision)) << report.toString();
}

TEST(BrokenCorpus, CbRowRangeInverted)
{
    bce::ConfigBlock cb;
    cb.startRow = 500;
    cb.endRow = 100;
    VerifyReport report;
    makeVerifier().checkConfigBlock(cb, report);
    EXPECT_TRUE(report.has(RuleId::CbRowRange)) << report.toString();
}

TEST(BrokenCorpus, CbRowRangeInsideConfigRegion)
{
    bce::ConfigBlock cb;
    cb.startRow = 2; // inside rows [0, 8): the CB region
    cb.endRow = 100;
    VerifyReport report;
    makeVerifier().checkConfigBlock(cb, report);
    EXPECT_TRUE(report.has(RuleId::CbRowRange)) << report.toString();
}

TEST(BrokenCorpus, CbIterationsMismatch)
{
    map::CompiledKernel k = validFcKernel();
    ASSERT_TRUE(k.diagnostics.ok()) << k.diagnostics.toString();
    k.configBlock.iterations =
        static_cast<std::uint16_t>(k.configBlock.iterations + 1);
    const auto report = makeVerifier().verify(k);
    EXPECT_TRUE(report.has(RuleId::CbIterations)) << report.toString();
}

TEST(BrokenCorpus, WeightLutOverlap)
{
    bce::ConfigBlock cb;
    cb.startRow = 8;
    cb.endRow = 1020; // reaches into the reserved LUT rows [1016, 1024)
    VerifyReport report;
    makeVerifier().checkConfigBlock(cb, report);
    EXPECT_TRUE(report.has(RuleId::WeightLutOverlap))
        << report.toString();
    EXPECT_FALSE(report.has(RuleId::CbRowRange)) << report.toString();
}

TEST(BrokenCorpus, OpPrecision)
{
    bce::PimInstruction inst;
    inst.opcode = bce::PimOpcode::Matmul;
    inst.precisionBits = 3; // not expressible by nibble decomposition
    inst.rows = inst.cols = inst.inner = 4;
    VerifyReport report;
    makeVerifier().checkInstruction(inst, report);
    EXPECT_TRUE(report.has(RuleId::OpPrecision)) << report.toString();
}

TEST(BrokenCorpus, InstShape)
{
    bce::PimInstruction gemm;
    gemm.opcode = bce::PimOpcode::Matmul;
    gemm.rows = 4;
    gemm.cols = 4;
    gemm.inner = 0; // zero reduction length
    VerifyReport report;
    makeVerifier().checkInstruction(gemm, report);
    EXPECT_TRUE(report.has(RuleId::InstShape)) << report.toString();

    bce::PimInstruction ew;
    ew.opcode = bce::PimOpcode::Relu;
    ew.rows = 16;
    ew.cols = 4; // element-wise must leave cols/inner zero
    VerifyReport ew_report;
    makeVerifier().checkInstruction(ew, ew_report);
    EXPECT_TRUE(ew_report.has(RuleId::InstShape))
        << ew_report.toString();
}

TEST(BrokenCorpus, InstMacOverflow)
{
    bce::PimInstruction inst;
    inst.opcode = bce::PimOpcode::Matmul;
    inst.rows = inst.cols = inst.inner = 0xFFFFFFFF;
    VerifyReport report;
    makeVerifier().checkInstruction(inst, report);
    EXPECT_TRUE(report.has(RuleId::InstMacOverflow))
        << report.toString();
}

TEST(BrokenCorpus, LutOversize)
{
    lut::LutImage image;
    image.name = "oversized";
    image.bytes.assign(100, 0); // 100 > 64-byte LUT region
    VerifyReport report;
    makeVerifier().checkLutImages({image}, report);
    EXPECT_TRUE(report.has(RuleId::LutOversize)) << report.toString();
}

TEST(BrokenCorpus, LutPartitionConflict)
{
    // Two co-resident 40-byte images need 5 rows each: 10 > 8 rows.
    lut::LutImage a;
    a.name = "a";
    a.bytes.assign(40, 0);
    a.configPhase = 0;
    lut::LutImage b;
    b.name = "b";
    b.bytes.assign(40, 0);
    b.configPhase = 0;
    VerifyReport report;
    makeVerifier().checkLutImages({a, b}, report);
    EXPECT_TRUE(report.has(RuleId::LutPartitionConflict))
        << report.toString();

    // Distinct phases (sequential loading) are conflict-free.
    b.configPhase = 1;
    VerifyReport sequential;
    makeVerifier().checkLutImages({a, b}, sequential);
    EXPECT_TRUE(sequential.ok()) << sequential.toString();
}

TEST(BrokenCorpus, MacConservation)
{
    const dnn::Layer layer = dnn::make_fc("fc", 256, 256);
    const map::KernelCompiler compiler(defaultGeometry());
    map::CompiledKernel k = compiler.compile(layer);
    ASSERT_TRUE(k.diagnostics.ok()) << k.diagnostics.toString();
    k.instructions[0].rows += 1; // invent work the layer never defined
    const auto report = makeVerifier().verify(k, layer);
    EXPECT_TRUE(report.has(RuleId::MacConservation))
        << report.toString();
}

TEST(BrokenCorpus, PlacementOccupancy)
{
    map::LayerMapping mapping;
    mapping.mode = map::ExecMode::MatmulMode;
    mapping.weightTiles = 1;
    mapping.duplication = 1;
    mapping.activeSubarrays = 7; // != weightTiles x duplication
    VerifyReport report;
    makeVerifier().checkMapping(mapping, report);
    EXPECT_TRUE(report.has(RuleId::PlacementOccupancy))
        << report.toString();
}

TEST(BrokenCorpus, PlacementOverlap)
{
    map::WeightPlacement placement;
    placement.weightBytes = 200;
    placement.replicas = 1;
    map::TileExtent first;
    first.subarray = 0;
    first.byteOffset = 64;
    first.byteCount = 100;
    map::TileExtent second = first;
    second.weightOffset = 100;
    second.byteOffset = 120; // overlaps [64, 164)
    placement.extents = {first, second};
    VerifyReport report;
    makeVerifier().checkPlacement(placement, report);
    EXPECT_TRUE(report.has(RuleId::PlacementOverlap))
        << report.toString();
}

namespace {

/** A compute mapping whose chains the test hand-builds. */
map::LayerMapping
chainMapping(unsigned active)
{
    map::LayerMapping m;
    m.mode = map::ExecMode::MatmulMode;
    m.weightTiles = active;
    m.duplication = 1;
    m.activeSubarrays = active;
    return m;
}

} // namespace

TEST(BrokenCorpus, ChainCyclic)
{
    ReductionChain chain;
    chain.nodes = {0, 1, 2};
    chain.links = {{0, 1}, {1, 2}, {2, 0}}; // sums circulate forever
    VerifyReport report;
    makeVerifier().checkChains({chain}, chainMapping(3), report);
    EXPECT_TRUE(report.has(RuleId::ChainCyclic)) << report.toString();
    EXPECT_FALSE(report.has(RuleId::ChainFanout)) << report.toString();
}

TEST(BrokenCorpus, ChainFanout)
{
    ReductionChain chain;
    chain.nodes = {0, 1, 2};
    chain.links = {{0, 1}, {0, 2}}; // node 0 forwards twice
    VerifyReport report;
    makeVerifier().checkChains({chain}, chainMapping(3), report);
    EXPECT_TRUE(report.has(RuleId::ChainFanout)) << report.toString();
    EXPECT_FALSE(report.has(RuleId::ChainCyclic)) << report.toString();
}

TEST(BrokenCorpus, ChainDisconnected)
{
    ReductionChain chain;
    chain.nodes = {0, 1, 2};
    chain.links = {{0, 1}}; // node 2 never reduces anywhere
    VerifyReport report;
    makeVerifier().checkChains({chain}, chainMapping(3), report);
    EXPECT_TRUE(report.has(RuleId::ChainDisconnected))
        << report.toString();

    // Chains covering fewer sub-arrays than the mapping activates.
    ReductionChain partial;
    partial.nodes = {0, 1};
    partial.links = {{0, 1}};
    VerifyReport coverage;
    makeVerifier().checkChains({partial}, chainMapping(3), coverage);
    EXPECT_TRUE(coverage.has(RuleId::ChainDisconnected))
        << coverage.toString();
}

TEST(BrokenCorpus, ModeDatapath)
{
    const auto verifier = makeVerifier();

    VerifyReport special;
    verifier.checkMode(bce::PimOpcode::Matmul,
                       map::ExecMode::SpecialMode, special);
    EXPECT_TRUE(special.has(RuleId::ModeDatapath))
        << special.toString();

    VerifyReport conv;
    verifier.checkMode(bce::PimOpcode::Sigmoid, map::ExecMode::ConvMode,
                       conv);
    EXPECT_TRUE(conv.has(RuleId::ModeDatapath)) << conv.toString();

    VerifyReport matmul;
    verifier.checkMode(bce::PimOpcode::Conv, map::ExecMode::MatmulMode,
                       matmul);
    EXPECT_TRUE(matmul.has(RuleId::ModeDatapath)) << matmul.toString();

    // Forcing conv mode onto a matmul kernel is a legal ablation.
    VerifyReport forced;
    verifier.checkMode(bce::PimOpcode::Matmul, map::ExecMode::ConvMode,
                       forced);
    EXPECT_TRUE(forced.ok()) << forced.toString();
}

TEST(BrokenCorpus, OperandRange)
{
    VerifyReport report;
    check_operand_range({20}, 4, /*is_signed=*/false, report, "ops");
    EXPECT_TRUE(report.has(RuleId::OperandRange)) << report.toString();

    VerifyReport negative;
    check_operand_range({-9}, 4, /*is_signed=*/true, negative, "ops");
    EXPECT_TRUE(negative.has(RuleId::OperandRange))
        << negative.toString();

    VerifyReport fits;
    check_operand_range({-8, 7}, 4, /*is_signed=*/true, fits, "ops");
    EXPECT_TRUE(fits.ok()) << fits.toString();
}

// ----------------------------------------------------------------------
// Integration: verify-on-compile, rejection, and the clean zoo.
// ----------------------------------------------------------------------

TEST(VerifyIntegration, CompilerVerifiesByDefaultAndCanOptOut)
{
    // An unsupported precision no longer aborts compilation: the
    // verify-on-compile pass reports it instead.
    dnn::Layer layer = dnn::make_fc("fc", 256, 256);
    layer.precisionBits = 3;

    const map::KernelCompiler verifying(defaultGeometry());
    const map::CompiledKernel bad = verifying.compile(layer);
    EXPECT_FALSE(bad.diagnostics.ok());
    EXPECT_TRUE(bad.diagnostics.has(RuleId::OpPrecision))
        << bad.diagnostics.toString();
    EXPECT_TRUE(bad.diagnostics.has(RuleId::CbPrecision))
        << bad.diagnostics.toString();

    map::CompileOptions opt_out;
    opt_out.verify = false;
    const map::KernelCompiler silent(defaultGeometry(), {}, opt_out);
    EXPECT_FALSE(silent.compileOptions().verify);
    EXPECT_TRUE(
        silent.compile(layer).diagnostics.diagnostics().empty());
}

TEST(VerifyIntegration, AcceleratorRejectsInvalidNetworks)
{
    const core::BFreeAccelerator acc;

    dnn::Network bad("bad", {64, 1, 1});
    dnn::Layer layer = dnn::make_fc("fc", 64, 64);
    layer.precisionBits = 3;
    bad.add(layer);
    const map::RunResult rejected = acc.run(bad);
    EXPECT_TRUE(rejected.rejected);
    EXPECT_FALSE(rejected.diagnostics.ok());
    EXPECT_EQ(rejected.secondsPerInference(), 0.0);

    const map::RunResult good = acc.run(dnn::make_tiny_cnn());
    EXPECT_FALSE(good.rejected);
    EXPECT_TRUE(good.diagnostics.ok()) << good.diagnostics.toString();
    EXPECT_GT(good.secondsPerInference(), 0.0);
}

TEST(VerifyIntegration, ModelZooCompilesClean)
{
    const std::vector<dnn::Network> zoo = {
        dnn::make_vgg16(),     dnn::make_inception_v3(),
        dnn::make_lstm(),      dnn::make_bert_base(),
        dnn::make_bert_large(), dnn::make_tiny_cnn(),
    };
    const map::KernelCompiler compiler(defaultGeometry());
    const auto verifier = makeVerifier();
    for (const dnn::Network &net : zoo) {
        for (const dnn::Layer &layer : net.layers()) {
            const map::CompiledKernel k = compiler.compile(layer);
            EXPECT_TRUE(k.diagnostics.ok())
                << net.name() << " / " << layer.name << "\n"
                << k.diagnostics.toString();
            // The standalone pass agrees with verify-on-compile.
            const auto report = verifier.verify(k, layer);
            EXPECT_EQ(report.errorCount(), k.diagnostics.errorCount())
                << net.name() << " / " << layer.name;
        }
    }
}

TEST(VerifyIntegration, DerivedChainsAreWellFormed)
{
    const map::KernelCompiler compiler(defaultGeometry());
    const map::CompiledKernel k =
        compiler.compile(dnn::make_fc("fc", 4096, 4096));
    const auto chains =
        derive_reduction_chains(k.mapping, defaultGeometry());
    ASSERT_FALSE(chains.empty());
    std::size_t covered = 0;
    for (const ReductionChain &chain : chains) {
        covered += chain.nodes.size();
        EXPECT_LE(chain.nodes.size(),
                  defaultGeometry().subarraysPerSubBank);
    }
    EXPECT_EQ(covered, k.mapping.activeSubarrays);

    VerifyReport report;
    makeVerifier().checkChains(chains, k.mapping, report);
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(VerifyIntegration, ReportFormatting)
{
    VerifyReport report;
    report.add(RuleId::LutOversize, Severity::Error, "image 'big'",
               "too big", "shrink it");
    const std::string text = report.toString();
    EXPECT_NE(text.find("error[lut-oversize]"), std::string::npos)
        << text;
    EXPECT_NE(text.find("(fix: shrink it)"), std::string::npos) << text;
    EXPECT_EQ(report.count(RuleId::LutOversize), 1u);

    VerifyReport outer;
    outer.merge(report, "layer 'fc'");
    EXPECT_NE(outer.toString().find("layer 'fc': image 'big'"),
              std::string::npos)
        << outer.toString();
}
