/**
 * @file
 * The whole-plan static auditor: a golden corpus (every zoo network at
 * both uniform precisions, compiled plans, disjoint multi-plan
 * residency, the default serve config), one deliberately-broken
 * fixture per plan-level rule (asserting the exact rule id fires), and
 * the mergeFrom order-independence guarantee the plan report relies
 * on.
 */

#include <gtest/gtest.h>

#include "core/network_plan.hh"
#include "dnn/model_zoo.hh"
#include "sim/random.hh"
#include "tech/row_layout.hh"
#include "verify/plan_verifier.hh"

using namespace bfree;
using namespace bfree::verify;

namespace {

tech::CacheGeometry
defaultGeometry()
{
    return tech::CacheGeometry{};
}

PlanVerifier
makeVerifier()
{
    return PlanVerifier(defaultGeometry());
}

/** A minimal weight-bearing placed kernel for hand-built layouts. */
PlacedKernel
placedFc(const std::string &name, unsigned base_subarray, unsigned span,
         std::uint64_t weight_bytes)
{
    const tech::CacheGeometry geom = defaultGeometry();
    PlacedKernel pk;
    pk.layer = dnn::make_fc(name, 64, 64);
    pk.kernel.mapping.mode = map::ExecMode::MatmulMode;
    pk.kernel.mapping.weightTiles = span;
    pk.kernel.mapping.weightBytes = weight_bytes;
    pk.kernel.mapping.activeSubarrays = span;
    pk.baseSubarray = base_subarray;
    pk.spanSubarrays = span;
    for (unsigned t = 0; t < span; ++t) {
        map::TileExtent e;
        e.subarray = t;
        e.byteOffset = tech::config_region_bytes;
        e.byteCount = static_cast<std::size_t>(
            std::min<std::uint64_t>(weight_bytes / std::max(1u, span),
                                    tech::usable_weight_bytes(geom)));
        pk.placement.extents.push_back(e);
    }
    pk.placement.weightBytes = weight_bytes;
    return pk;
}

PlanLayout
residentLayout(const std::string &name)
{
    PlanLayout layout;
    layout.name = name;
    layout.resident = true;
    return layout;
}

/** A three-node chain graph (input -> a -> b -> c) to break. */
DataflowGraph
chainGraph()
{
    DataflowGraph g;
    g.inputElems = 16;
    for (std::size_t i = 0; i < 3; ++i) {
        DataflowNode n;
        n.name = std::string(1, static_cast<char>('a' + i));
        n.inElems = 16;
        n.outElems = 16;
        if (i > 0)
            n.producers.push_back(i - 1);
        g.nodes.push_back(std::move(n));
    }
    return g;
}

ServeAuditConfig
goodServeConfig()
{
    ServeAuditConfig cfg;
    cfg.queueDepth = 64;
    cfg.maxBatch = 8;
    cfg.windowTicks = 64;
    cfg.cyclesPerTick = 1000;
    cfg.minServiceTicks = 1;
    return cfg;
}

} // namespace

// ----------------------------------------------------------------------
// Golden corpus
// ----------------------------------------------------------------------

TEST(PlanVerifierGolden, EveryZooNetworkAuditsCleanAtBothPrecisions)
{
    const PlanVerifier verifier = makeVerifier();
    using Factory = dnn::Network (*)();
    const std::initializer_list<Factory> nets = {
        +[] { return dnn::make_vgg16(); },
        +[] { return dnn::make_inception_v3(); },
        +[] { return dnn::make_lstm(); },
        +[] { return dnn::make_bert_base(); },
        +[] { return dnn::make_bert_large(); },
        +[] { return dnn::make_tiny_cnn(); }};
    for (const Factory make : nets) {
        for (unsigned bits : {8u, 4u}) {
            dnn::Network net = make();
            net.setUniformPrecision(bits);
            const VerifyReport report = verifier.verifyNetwork(net, bits);
            EXPECT_TRUE(report.ok())
                << net.name() << " at " << bits << "-bit:\n"
                << report.toString();
        }
    }
}

TEST(PlanVerifierGolden, CompiledPlanCarriesCleanDiagnostics)
{
    const dnn::Network net = dnn::make_tiny_cnn();
    sim::Rng rng(7);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    const core::NetworkPlan plan =
        core::NetworkPlan::compile(net, weights, 8);
    EXPECT_TRUE(plan.diagnostics().ok()) << plan.diagnostics().toString();
    EXPECT_TRUE(makeVerifier().verify(plan).ok());
}

TEST(PlanVerifierGolden, CompileWithoutVerifyLeavesNoDiagnostics)
{
    const dnn::Network net = dnn::make_tiny_cnn();
    sim::Rng rng(7);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    const core::NetworkPlan plan =
        core::NetworkPlan::compile(net, weights, 8, false);
    EXPECT_TRUE(plan.diagnostics().diagnostics().empty());
}

TEST(PlanVerifierGolden, PackedTwoPlanResidencyIsClean)
{
    const tech::CacheGeometry geom = defaultGeometry();
    std::vector<PlanLayout> layouts;
    layouts.push_back(layout_network(dnn::make_tiny_cnn(), geom));
    layouts.push_back(layout_network(dnn::make_lstm(), geom));
    pack_layouts(layouts);
    const VerifyReport report = makeVerifier().verifyResidency(layouts);
    EXPECT_TRUE(report.ok()) << report.toString();
    // Packing actually separated the footprints.
    EXPECT_EQ(layouts[1].baseSubarray, layouts[0].spanSubarrays);
}

TEST(PlanVerifierGolden, DefaultServeConfigIsClean)
{
    EXPECT_TRUE(audit_serve_config(goodServeConfig()).ok());
}

// ----------------------------------------------------------------------
// Broken corpus: one fixture per rule
// ----------------------------------------------------------------------

TEST(PlanVerifierBroken, PlanEmpty)
{
    const dnn::Network net("empty", dnn::FeatureShape{1, 1, 1});
    const VerifyReport report = makeVerifier().verifyNetwork(net);
    EXPECT_TRUE(report.has(RuleId::PlanEmpty));
    EXPECT_FALSE(report.ok());
}

TEST(PlanVerifierBroken, PlanPrecisionMismatch)
{
    dnn::Network net = dnn::make_tiny_cnn();
    net.setUniformPrecision(8);
    // Pin the plan at 4-bit against 8-bit layers.
    const VerifyReport report = makeVerifier().verifyNetwork(net, 4);
    EXPECT_TRUE(report.has(RuleId::PlanPrecision));
}

TEST(PlanVerifierBroken, PlanPrecisionUnsupported)
{
    dnn::Network net = dnn::make_tiny_cnn();
    net.layers()[0].precisionBits = 5;
    const VerifyReport report = makeVerifier().verifyNetwork(net);
    EXPECT_TRUE(report.has(RuleId::PlanPrecision));
}

TEST(PlanVerifierBroken, RegionBoundsRowsOutsideUsableSpan)
{
    PlanLayout layout = residentLayout("bounds");
    PlacedKernel pk = placedFc("fc0", 0, 1, 128);
    // Push the extent into the config-block region.
    pk.placement.extents[0].byteOffset = 0;
    layout.kernels.push_back(std::move(pk));
    layout.spanSubarrays = 1;

    VerifyReport report;
    makeVerifier().checkRegions({layout}, report);
    EXPECT_TRUE(report.has(RuleId::RegionBounds));
}

TEST(PlanVerifierBroken, RegionBoundsOffFabric)
{
    const unsigned fabric = defaultGeometry().totalSubarrays();
    PlanLayout layout = residentLayout("off-fabric");
    layout.baseSubarray = fabric - 1;
    PlacedKernel pk = placedFc("fc0", fabric - 1, 4, 4 * 1024);
    layout.kernels.push_back(std::move(pk));
    layout.spanSubarrays = 4;

    VerifyReport report;
    makeVerifier().checkRegions({layout}, report);
    EXPECT_TRUE(report.has(RuleId::RegionBounds));
}

TEST(PlanVerifierBroken, RegionOverlapWithinResidentPlan)
{
    PlanLayout layout = residentLayout("overlap");
    layout.kernels.push_back(placedFc("fc0", 0, 2, 1024));
    layout.kernels.push_back(placedFc("fc1", 1, 2, 1024)); // Collides.
    layout.spanSubarrays = 3;

    VerifyReport report;
    makeVerifier().checkRegions({layout}, report);
    EXPECT_TRUE(report.has(RuleId::RegionOverlap));
}

TEST(PlanVerifierBroken, RegionCrossPlanOverlap)
{
    // Two plans laid out at the same base: the multi-model API must
    // reject the co-residency.
    const tech::CacheGeometry geom = defaultGeometry();
    std::vector<PlanLayout> layouts;
    layouts.push_back(layout_network(dnn::make_tiny_cnn(), geom));
    layouts.push_back(layout_network(dnn::make_lstm(), geom));
    // No pack_layouts: both start at sub-array 0.
    const VerifyReport report = makeVerifier().verifyResidency(layouts);
    EXPECT_TRUE(report.has(RuleId::RegionCrossPlan));
    EXPECT_FALSE(report.ok());
}

TEST(PlanVerifierBroken, DataflowCycle)
{
    DataflowGraph g = chainGraph();
    g.nodes[0].producers.push_back(2); // a consumes c: a->b->c->a.
    g.nodes[0].inElems = 32;           // Keep fan-in consistent.

    VerifyReport report;
    makeVerifier().checkDataflow(g, report);
    EXPECT_TRUE(report.has(RuleId::DataflowCycle));
}

TEST(PlanVerifierBroken, DataflowDangling)
{
    DataflowGraph g = chainGraph();
    g.nodes[1].producers.push_back(17); // No such node.

    VerifyReport report;
    makeVerifier().checkDataflow(g, report);
    EXPECT_TRUE(report.has(RuleId::DataflowDangling));
}

TEST(PlanVerifierBroken, DataflowFanin)
{
    DataflowGraph g = chainGraph();
    g.nodes[1].inElems = 99; // Producer supplies 16.

    VerifyReport report;
    makeVerifier().checkDataflow(g, report);
    EXPECT_TRUE(report.has(RuleId::DataflowFanin));
}

TEST(PlanVerifierBroken, DataflowUnreachable)
{
    DataflowGraph g = chainGraph();
    // A fourth node nothing consumes, off the path to the output.
    DataflowNode dead;
    dead.name = "dead";
    dead.inElems = 16;
    dead.outElems = 16;
    g.outputNode = 2;
    g.nodes.push_back(std::move(dead));

    VerifyReport report;
    makeVerifier().checkDataflow(g, report);
    EXPECT_TRUE(report.has(RuleId::DataflowUnreachable));
}

TEST(PlanVerifierBroken, CapacityRowsOverflow)
{
    const unsigned fabric = defaultGeometry().totalSubarrays();
    PlanLayout layout = residentLayout("rows");
    layout.kernels.push_back(placedFc("fc0", 0, fabric / 2 + 1, 1024));
    layout.kernels.push_back(
        placedFc("fc1", fabric / 2 + 1, fabric / 2 + 1, 1024));
    layout.spanSubarrays = fabric + 2;

    VerifyReport report;
    makeVerifier().checkCapacity(layout, report);
    EXPECT_TRUE(report.has(RuleId::CapacityRows));
}

TEST(PlanVerifierBroken, CapacityFabricOverflow)
{
    const tech::CacheGeometry geom = defaultGeometry();
    const std::uint64_t fabric_bytes =
        std::uint64_t(geom.totalSubarrays())
        * tech::usable_weight_bytes(geom);
    PlanLayout layout = residentLayout("bytes");
    layout.kernels.push_back(placedFc("fc0", 0, 1, fabric_bytes + 1));
    layout.spanSubarrays = 1;

    VerifyReport report;
    makeVerifier().checkCapacity(layout, report);
    EXPECT_TRUE(report.has(RuleId::CapacityFabric));
}

TEST(PlanVerifierBroken, CapacityArenaLedger)
{
    core::PlanStats stats;
    stats.activationBytes = 100;
    stats.peakScratchBytes = 50;
    stats.arenaBytes = 100; // Should be 150.

    VerifyReport report;
    makeVerifier().checkArena(stats, {}, report);
    EXPECT_TRUE(report.has(RuleId::CapacityArena));
}

TEST(PlanVerifierBroken, CapacityArenaBudget)
{
    core::PlanStats stats;
    stats.activationBytes = 100;
    stats.peakScratchBytes = 50;
    stats.arenaBytes = 150;

    VerifyReport report;
    makeVerifier().checkArena(stats, {}, report, "arena", 64);
    EXPECT_TRUE(report.has(RuleId::CapacityArena));
}

TEST(PlanVerifierGolden, CompiledConvPlanFrontendAuditsClean)
{
    // A freshly compiled conv plan records the modes resolve_frontend
    // picked, so the plan-frontend rule must stay silent — at both
    // supported conv precisions and for an all-modes mix.
    dnn::Network net("front-mix", dnn::FeatureShape{3, 8, 8});
    net.add(dnn::make_conv("overlap", {3, 8, 8}, 4, 3, 1, 1));
    net.add(dnn::make_conv("disjoint", {4, 8, 8}, 4, 2, 2, 0));
    sim::Rng rng(19);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    for (unsigned bits : {4u, 8u, 16u}) {
        const core::NetworkPlan plan =
            core::NetworkPlan::compile(net, weights, bits);
        VerifyReport report;
        makeVerifier().checkFrontend(plan.layers(), bits, report);
        EXPECT_TRUE(report.ok()) << bits << ":\n" << report.toString();
        EXPECT_TRUE(report.diagnostics().empty()) << bits;
    }
}

TEST(PlanVerifierBroken, FrontendOnNonConvLayer)
{
    // A fused mode on an FC layer is an error: there is no int8 patch
    // pipeline to reroute there.
    std::vector<core::PlannedLayer> layers(1);
    layers[0].layer = dnn::make_fc("fc", 16, 16);
    layers[0].frontend = dnn::FrontendMode::Fused;
    VerifyReport report;
    makeVerifier().checkFrontend(layers, 8, report);
    EXPECT_TRUE(report.has(RuleId::PlanFrontend));
    EXPECT_FALSE(report.ok());
}

TEST(PlanVerifierBroken, FrontendOnWidePrecisionConv)
{
    // An elided mode on a 16-bit conv is an error: the elided front
    // end only exists for int8 patches.
    std::vector<core::PlannedLayer> layers(1);
    layers[0].layer = dnn::make_conv("c", {1, 4, 4}, 2, 3, 1, 1);
    layers[0].frontend = dnn::FrontendMode::Elided;
    VerifyReport report;
    makeVerifier().checkFrontend(layers, 16, report);
    EXPECT_TRUE(report.has(RuleId::PlanFrontend));
    EXPECT_FALSE(report.ok());
}

TEST(PlanVerifierBroken, FrontendDisagreesWithPolicyWarns)
{
    // Legacy on an overlapping conv is byte-exact but not what the
    // geometry policy picks: a warning, not an error.
    std::vector<core::PlannedLayer> layers(1);
    layers[0].layer = dnn::make_conv("c", {1, 4, 4}, 2, 3, 1, 1);
    layers[0].frontend = dnn::FrontendMode::Legacy;
    VerifyReport report;
    makeVerifier().checkFrontend(layers, 8, report);
    EXPECT_TRUE(report.has(RuleId::PlanFrontend));
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(PlanVerifierBroken, ServeQueueZero)
{
    ServeAuditConfig cfg = goodServeConfig();
    cfg.queueDepth = 0;
    EXPECT_TRUE(audit_serve_config(cfg).has(RuleId::ServeQueue));
}

TEST(PlanVerifierBroken, ServeBatchBeyondQueue)
{
    ServeAuditConfig cfg = goodServeConfig();
    cfg.maxBatch = cfg.queueDepth + 1;
    EXPECT_TRUE(audit_serve_config(cfg).has(RuleId::ServeBatch));

    cfg = goodServeConfig();
    cfg.maxBatch = 0;
    EXPECT_TRUE(audit_serve_config(cfg).has(RuleId::ServeBatch));
}

TEST(PlanVerifierBroken, ServeWindowSpendsDeadline)
{
    ServeAuditConfig cfg = goodServeConfig();
    cfg.sloDeadlineTicks = cfg.windowTicks; // Window eats it all.
    EXPECT_TRUE(audit_serve_config(cfg).has(RuleId::ServeWindow));
}

TEST(PlanVerifierBroken, ServeServiceFloorMissesDeadline)
{
    ServeAuditConfig cfg = goodServeConfig();
    cfg.minServiceTicks = 100;
    cfg.windowTicks = 0;
    cfg.sloDeadlineTicks = 50;
    EXPECT_TRUE(audit_serve_config(cfg).has(RuleId::ServeService));

    cfg = goodServeConfig();
    cfg.cyclesPerTick = 0;
    EXPECT_TRUE(audit_serve_config(cfg).has(RuleId::ServeService));
}

// ----------------------------------------------------------------------
// mergeFrom: stable per-layer ordering, independent of merge order
// ----------------------------------------------------------------------

namespace {

VerifyReport
layerReport(const std::string &tag, std::size_t findings)
{
    VerifyReport r;
    for (std::size_t i = 0; i < findings; ++i) {
        r.add(RuleId::InstShape, Severity::Error,
              tag + " finding " + std::to_string(i), "broken");
    }
    return r;
}

std::vector<std::string>
locations(const VerifyReport &r)
{
    std::vector<std::string> out;
    for (const Diagnostic &d : r.diagnostics())
        out.push_back(d.location);
    return out;
}

} // namespace

TEST(VerifyReportMerge, MergeFromIsOrderIndependent)
{
    // Three per-layer reports merged in layer order vs reversed vs
    // interleaved must produce one and the same plan report.
    VerifyReport forward;
    forward.mergeFrom(layerReport("a", 2), "layer 'a'", 0);
    forward.mergeFrom(layerReport("b", 1), "layer 'b'", 1);
    forward.mergeFrom(layerReport("c", 3), "layer 'c'", 2);

    VerifyReport reversed;
    reversed.mergeFrom(layerReport("c", 3), "layer 'c'", 2);
    reversed.mergeFrom(layerReport("b", 1), "layer 'b'", 1);
    reversed.mergeFrom(layerReport("a", 2), "layer 'a'", 0);

    VerifyReport interleaved;
    interleaved.mergeFrom(layerReport("b", 1), "layer 'b'", 1);
    interleaved.mergeFrom(layerReport("a", 2), "layer 'a'", 0);
    interleaved.mergeFrom(layerReport("c", 3), "layer 'c'", 2);

    EXPECT_EQ(locations(forward), locations(reversed));
    EXPECT_EQ(locations(forward), locations(interleaved));
    EXPECT_EQ(forward.toString(), reversed.toString());
    EXPECT_EQ(forward.toString(), interleaved.toString());
}

TEST(VerifyReportMerge, MergeFromIsStableWithinOneLayer)
{
    // Findings sharing a sequence key keep their source order.
    VerifyReport r;
    r.mergeFrom(layerReport("x", 3), "layer 'x'", 5);
    const std::vector<std::string> locs = locations(r);
    ASSERT_EQ(locs.size(), 3u);
    EXPECT_EQ(locs[0], "layer 'x': x finding 0");
    EXPECT_EQ(locs[1], "layer 'x': x finding 1");
    EXPECT_EQ(locs[2], "layer 'x': x finding 2");
}

TEST(VerifyReportMerge, MergeFromPrefixesLocations)
{
    VerifyReport inner;
    inner.add(RuleId::InstShape, Severity::Warning, "", "bare");
    VerifyReport outer;
    outer.mergeFrom(std::move(inner), "layer 'y'", 0);
    ASSERT_EQ(outer.diagnostics().size(), 1u);
    EXPECT_EQ(outer.diagnostics()[0].location, "layer 'y'");
    EXPECT_EQ(outer.warningCount(), 1u);
}
