/**
 * @file
 * The static verifier is tier-independent: the tiered execution engine
 * must reject exactly the kernels the legacy engine rejects, with the
 * same diagnostics, and the batched-kernel compile path (blocked
 * GEMM-over-LUT layers) must verify clean under both tiers.
 */

#include <gtest/gtest.h>

#include "core/bfree.hh"
#include "dnn/model_zoo.hh"
#include "map/kernel_compiler.hh"
#include "verify/kernel_verifier.hh"

using namespace bfree;
using namespace bfree::verify;

namespace {

map::ExecConfig
tiered_config(bce::ExecTier tier)
{
    map::ExecConfig config;
    config.tier = tier;
    return config;
}

dnn::Network
bad_network()
{
    dnn::Network bad("bad", {64, 1, 1});
    dnn::Layer layer = dnn::make_fc("fc", 64, 64);
    layer.precisionBits = 3; // not expressible by nibble decomposition
    bad.add(layer);
    return bad;
}

} // namespace

TEST(TieredVerify, RejectionIsIdenticalAcrossTiers)
{
    const core::BFreeAccelerator acc;
    const dnn::Network bad = bad_network();

    const map::RunResult legacy =
        acc.run(bad, tiered_config(bce::ExecTier::Legacy));
    const map::RunResult tiered =
        acc.run(bad, tiered_config(bce::ExecTier::Tiered));

    EXPECT_TRUE(legacy.rejected);
    EXPECT_TRUE(tiered.rejected);
    EXPECT_EQ(legacy.diagnostics.errorCount(),
              tiered.diagnostics.errorCount());
    EXPECT_EQ(legacy.diagnostics.toString(),
              tiered.diagnostics.toString());
    EXPECT_EQ(legacy.secondsPerInference(), 0.0);
    EXPECT_EQ(tiered.secondsPerInference(), 0.0);
}

TEST(TieredVerify, LintFindingsAreIdenticalAcrossTiers)
{
    const core::BFreeAccelerator acc;
    const dnn::Network bad = bad_network();

    const VerifyReport legacy =
        acc.lint(bad, tiered_config(bce::ExecTier::Legacy));
    const VerifyReport tiered =
        acc.lint(bad, tiered_config(bce::ExecTier::Tiered));

    EXPECT_FALSE(legacy.ok());
    EXPECT_FALSE(tiered.ok());
    EXPECT_TRUE(legacy.has(RuleId::OpPrecision)) << legacy.toString();
    EXPECT_EQ(legacy.toString(), tiered.toString());
}

TEST(TieredVerify, ValidNetworksRunUnderBothTiers)
{
    const core::BFreeAccelerator acc;
    const dnn::Network net = dnn::make_tiny_cnn();

    const map::RunResult legacy =
        acc.run(net, tiered_config(bce::ExecTier::Legacy));
    const map::RunResult tiered =
        acc.run(net, tiered_config(bce::ExecTier::Tiered));

    EXPECT_FALSE(legacy.rejected);
    EXPECT_FALSE(tiered.rejected);
    // The analytic closed forms are tier-independent by construction.
    EXPECT_EQ(legacy.secondsPerInference(),
              tiered.secondsPerInference());
    EXPECT_EQ(legacy.joulesPerInference(), tiered.joulesPerInference());
}

TEST(TieredVerify, BatchedKernelCompilePathVerifiesClean)
{
    // The layers functional execution now runs as blocked GEMM-over-LUT
    // (conv via im2col spans, FC/attention via matmulTile) still
    // compile to kernels the static verifier accepts.
    const tech::CacheGeometry geom{};
    const map::KernelCompiler compiler(geom);
    const KernelVerifier verifier(geom);

    const dnn::Network net = dnn::make_tiny_cnn();
    for (const dnn::Layer &layer : net.layers()) {
        const map::CompiledKernel k = compiler.compile(layer);
        EXPECT_TRUE(k.diagnostics.ok())
            << layer.name << "\n" << k.diagnostics.toString();
        const VerifyReport report = verifier.verify(k, layer);
        EXPECT_TRUE(report.ok())
            << layer.name << "\n" << report.toString();
    }
}
