/**
 * @file
 * Split-plane datapath-table auditor: golden fixtures (the ROM tables
 * the tiered engine memoizes pass clean, and a plan-level verify
 * surfaces no lut-plane findings on healthy networks) plus one
 * deliberately-broken plane fixture per failure mode, each asserting
 * the exact rule id fires. Broken fixtures are synthesized through
 * DatapathPlaneView — DatapathTable::build can never emit them, which
 * is precisely why the auditor checks the planes and not the builder.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "lut/datapath_table.hh"
#include "lut/mult_lut.hh"
#include "verify/datapath_verifier.hh"
#include "verify/plan_verifier.hh"

namespace {

using namespace bfree;
using namespace bfree::verify;

using lut::DatapathTable;

/** A mutable deep copy of a built table's planes. */
struct PlaneFixture
{
    std::vector<std::int32_t> products;
    std::vector<std::uint32_t> deltas;
    std::vector<std::uint32_t> pairDeltas;
    DatapathPlaneView view;

    explicit PlaneFixture(const DatapathTable &t)
        : products(t.products(), t.products() + t.entryCount()),
          deltas(t.deltas(), t.deltas() + t.entryCount()),
          pairDeltas(t.pairDeltas(), t.pairDeltas() + 256)
    {
        view = view_of(t);
        view.products = products.data();
        view.deltas = deltas.data();
        view.pairDeltas = pairDeltas.data();
    }
};

const DatapathTable &
romTable(unsigned bits)
{
    static const lut::MultLut rom;
    static const DatapathTable t4 = lut::build_rom_datapath_table(4, rom);
    static const DatapathTable t8 = lut::build_rom_datapath_table(8, rom);
    return bits == 4 ? t4 : t8;
}

// ----------------------------------------------------------------------
// Golden fixtures
// ----------------------------------------------------------------------

TEST(DatapathVerifier, RomTablesPassClean)
{
    for (const unsigned bits : {4u, 8u}) {
        const VerifyReport report = verify_datapath_table(romTable(bits));
        EXPECT_TRUE(report.ok()) << report.toString();
        EXPECT_TRUE(report.diagnostics().empty());
    }
}

TEST(DatapathVerifier, RomTablesClaimBothFastPaths)
{
    // The auditor's exactness passes only bite when the flags are
    // claimed; prove the golden tables actually claim them.
    for (const unsigned bits : {4u, 8u}) {
        EXPECT_TRUE(romTable(bits).productsExact());
        EXPECT_TRUE(romTable(bits).histogramExact());
    }
}

TEST(DatapathVerifier, PlanVerifyAuditsDatapathClean)
{
    const PlanVerifier verifier{tech::CacheGeometry{}};
    dnn::Network net = dnn::make_tiny_cnn();
    net.setUniformPrecision(8);
    const VerifyReport report = verifier.verifyNetwork(net, 8);
    EXPECT_TRUE(report.ok()) << report.toString();
    EXPECT_FALSE(report.has(RuleId::LutPlaneShape));
    EXPECT_FALSE(report.has(RuleId::LutPlaneExact));
}

TEST(DatapathVerifier, DatapathAuditCanBeDisabled)
{
    PlanVerifierOptions opts;
    opts.checkDatapath = false;
    const PlanVerifier verifier{tech::CacheGeometry{}, opts};
    dnn::Network net = dnn::make_tiny_cnn();
    net.setUniformPrecision(8);
    EXPECT_TRUE(verifier.verifyNetwork(net, 8).ok());
}

// ----------------------------------------------------------------------
// Broken fixtures: shape rules
// ----------------------------------------------------------------------

TEST(DatapathVerifier, UncoveredPrecisionFires)
{
    PlaneFixture f{romTable(4)};
    f.view.bits = 16;
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_TRUE(report.has(RuleId::LutPlaneShape));
    EXPECT_FALSE(report.ok());
}

TEST(DatapathVerifier, SpanPrecisionMismatchFires)
{
    PlaneFixture f{romTable(4)};
    f.view.span = 16; // 2^4, off by the asymmetric +half endpoint.
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_TRUE(report.has(RuleId::LutPlaneShape));
}

TEST(DatapathVerifier, TruncatedPlaneFiresShapeAndSkipsExactness)
{
    PlaneFixture f{romTable(4)};
    f.view.productCount -= 1;
    f.view.deltaCount -= 1;
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_EQ(2u, report.count(RuleId::LutPlaneShape));
    // Exactness over a short plane would read out of bounds; the
    // auditor must not reach it.
    EXPECT_FALSE(report.has(RuleId::LutPlaneExact));
}

TEST(DatapathVerifier, ShortPairDeltaTableFires)
{
    PlaneFixture f{romTable(4)};
    f.view.pairDeltaCount = 128;
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_TRUE(report.has(RuleId::LutPlaneShape));
}

// ----------------------------------------------------------------------
// Broken fixtures: exactness rules
// ----------------------------------------------------------------------

TEST(DatapathVerifier, LyingProductsExactFires)
{
    PlaneFixture f{romTable(4)};
    ASSERT_TRUE(f.view.productsExact);
    f.products[f.products.size() / 2] += 1; // one poisoned product
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_EQ(1u, report.count(RuleId::LutPlaneExact));
    EXPECT_FALSE(report.ok());
}

TEST(DatapathVerifier, HonestInexactProductsPassClean)
{
    // The same poisoned product with the flag honestly cleared is
    // exactly the gather fallback — not a finding.
    PlaneFixture f{romTable(4)};
    f.products[f.products.size() / 2] += 1;
    f.view.productsExact = false;
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_TRUE(report.ok()) << report.toString();
}

TEST(DatapathVerifier, LyingHistogramExactFires)
{
    PlaneFixture f{romTable(4)};
    ASSERT_TRUE(f.view.histogramExact);
    // One delta diverges from its class key: the collapse is broken.
    f.deltas[f.deltas.size() / 2] ^= 0x0101;
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_EQ(1u, report.count(RuleId::LutPlaneExact));
}

TEST(DatapathVerifier, FoldDivergenceFires)
{
    // Doctor a whole class key consistently: every (a, b) of the
    // (1, 1) class key gets the same wrong delta, so the class
    // collapse still holds but the bilinear feature fold the SIMD
    // kernels compute does not.
    PlaneFixture f{romTable(4)};
    const std::uint8_t key = DatapathTable::class_key(1, 1);
    const std::uint32_t doctored =
        f.pairDeltas[key] + (1u << DatapathTable::delta_adds_shift);
    f.pairDeltas[key] = doctored;
    const std::int32_t half = std::int32_t{1} << (f.view.bits - 1);
    for (std::int32_t a = -half; a <= half; ++a)
        for (std::int32_t b = -half; b <= half; ++b)
            if (DatapathTable::class_key(a, b) == key)
                f.deltas[std::size_t(a + half) * f.view.span
                         + std::size_t(b + half)] = doctored;
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_EQ(1u, report.count(RuleId::LutPlaneExact));
}

TEST(DatapathVerifier, CyclesFactorOutOfRangeFires)
{
    PlaneFixture f{romTable(4)};
    f.view.cyclesFactor = 2;
    VerifyReport report;
    verify_datapath_planes(f.view, report, "fixture");
    EXPECT_TRUE(report.has(RuleId::LutPlaneExact));
}

TEST(DatapathVerifier, RuleNamesAreStable)
{
    EXPECT_STREQ("lut-plane-shape", rule_name(RuleId::LutPlaneShape));
    EXPECT_STREQ("lut-plane-exact", rule_name(RuleId::LutPlaneExact));
}

} // namespace
