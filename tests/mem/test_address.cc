/**
 * @file
 * Address mapping: decode/encode bijection across the hierarchy.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "mem/address.hh"

using namespace bfree::mem;
using bfree::tech::CacheGeometry;

TEST(AddressMap, CapacityMatchesGeometry)
{
    AddressMap amap((CacheGeometry()));
    EXPECT_EQ(amap.capacity(), 35ull * 1024 * 1024);
}

TEST(AddressMap, AddressZeroIsOrigin)
{
    AddressMap amap((CacheGeometry()));
    const Location loc = amap.decode(0);
    EXPECT_EQ(loc, (Location{0, 0, 0, 0, 0, 0, 0}));
}

TEST(AddressMap, RoundTripSweep)
{
    AddressMap amap((CacheGeometry()));
    // Prime-strided sweep across the full capacity.
    for (std::uint64_t addr = 0; addr < amap.capacity();
         addr += 104729) {
        const Location loc = amap.decode(addr);
        EXPECT_EQ(amap.encode(loc), addr) << addr;
    }
}

TEST(AddressMap, LastByteDecodes)
{
    AddressMap amap((CacheGeometry()));
    const std::uint64_t last = amap.capacity() - 1;
    const Location loc = amap.decode(last);
    EXPECT_EQ(loc.slice, 13u);
    EXPECT_EQ(loc.bank, 3u);
    EXPECT_EQ(loc.subBank, 9u);
    EXPECT_EQ(loc.subarray, 7u);
    EXPECT_EQ(loc.partition, 3u);
    EXPECT_EQ(loc.row, 255u);
    EXPECT_EQ(loc.byte, 7u);
    EXPECT_EQ(amap.encode(loc), last);
}

TEST(AddressMap, FieldsStayInRange)
{
    CacheGeometry g;
    AddressMap amap(g);
    for (std::uint64_t addr = 0; addr < amap.capacity();
         addr += 999331) {
        const Location loc = amap.decode(addr);
        EXPECT_LT(loc.slice, g.numSlices);
        EXPECT_LT(loc.bank, g.banksPerSlice);
        EXPECT_LT(loc.subBank, g.subBanksPerBank);
        EXPECT_LT(loc.subarray, g.subarraysPerSubBank);
        EXPECT_LT(loc.partition, g.partitionsPerSubarray);
        EXPECT_LT(loc.row, g.rowsPerPartition);
        EXPECT_LT(loc.byte, g.rowBytes());
    }
}

TEST(AddressMap, SubarrayIndexCoversAllSubarrays)
{
    CacheGeometry g;
    AddressMap amap(g);
    const std::uint64_t subarray_stride = g.subarrayBytes();
    unsigned max_index = 0;
    for (std::uint64_t addr = 0; addr < amap.capacity();
         addr += subarray_stride) {
        const unsigned index = amap.subarrayIndex(amap.decode(addr));
        EXPECT_LT(index, g.totalSubarrays());
        max_index = std::max(max_index, index);
    }
    EXPECT_EQ(max_index, g.totalSubarrays() - 1);
}

TEST(AddressMap, ConsecutiveBytesShareRowUntilBoundary)
{
    AddressMap amap((CacheGeometry()));
    const Location a = amap.decode(0);
    const Location b = amap.decode(7);
    const Location c = amap.decode(8);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(c.row, a.row + 1);
}

TEST(AddressMapDeath, OutOfRangePanics)
{
    AddressMap amap((CacheGeometry()));
    EXPECT_DEATH((void)amap.decode(amap.capacity()), "exceeds");
}
