/**
 * @file
 * Sub-array model: functional storage, access counting, and the
 * decoupled-bitline LUT cost advantage.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mem/subarray.hh"

using namespace bfree::mem;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

struct Fixture
{
    CacheGeometry geom;
    TechParams tech;
    EnergyAccount energy;
    Subarray sa{geom, tech, energy};
};

} // namespace

TEST(Subarray, CapacityIs8KBWith64ByteLut)
{
    Fixture f;
    EXPECT_EQ(f.sa.capacity(), 8192u);
    EXPECT_EQ(f.sa.lutCapacity(), 64u);
}

TEST(Subarray, ReadBackWhatWasWritten)
{
    Fixture f;
    std::vector<std::uint8_t> data(100);
    std::iota(data.begin(), data.end(), 0);
    f.sa.write(40, data.data(), data.size());

    std::vector<std::uint8_t> out(100);
    f.sa.read(40, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(Subarray, PeekDoesNotCharge)
{
    Fixture f;
    const std::uint8_t v = 42;
    f.sa.write(0, &v, 1);
    const double before = f.energy.total();
    EXPECT_EQ(f.sa.peek(0), 42);
    EXPECT_DOUBLE_EQ(f.energy.total(), before);
}

TEST(Subarray, AccessCountsPerRowSlice)
{
    Fixture f;
    std::vector<std::uint8_t> data(16, 7);
    f.sa.write(0, data.data(), 16); // two 8-byte rows
    EXPECT_EQ(f.sa.stats().writes, 2u);

    std::uint8_t one;
    f.sa.read(3, &one, 1); // single row touch
    EXPECT_EQ(f.sa.stats().reads, 1u);

    // Crossing a row boundary with 2 bytes costs 2 accesses.
    std::uint8_t two[2];
    f.sa.read(7, two, 2);
    EXPECT_EQ(f.sa.stats().reads, 3u);
}

TEST(Subarray, FullAccessEnergyMatchesTechParams)
{
    Fixture f;
    std::uint8_t v = 1;
    f.sa.write(0, &v, 1);
    EXPECT_NEAR(f.energy.joules(EnergyCategory::SubarrayAccess),
                f.tech.subarrayAccessPj * 1e-12, 1e-18);
}

TEST(Subarray, LutReadIs231xCheaper)
{
    Fixture f;
    std::vector<std::uint8_t> image(49, 9);
    f.sa.loadLut(image);
    const double after_load =
        f.energy.joules(EnergyCategory::SubarrayAccess);
    EXPECT_GT(after_load, 0.0); // loading pays full cost

    (void)f.sa.lutRead(0);
    const double lut_j = f.energy.joules(EnergyCategory::LutAccess);
    EXPECT_NEAR(lut_j, f.tech.subarrayAccessPj / 231.0 * 1e-12, 1e-20);
}

TEST(Subarray, LutReadLatencyIsThreeTimesFaster)
{
    Fixture f;
    EXPECT_NEAR(f.sa.accessLatencyNs() / f.sa.lutLatencyNs(), 3.0, 1e-9);
}

TEST(Subarray, LutContentsReadable)
{
    Fixture f;
    std::vector<std::uint8_t> image(64);
    std::iota(image.begin(), image.end(), 100);
    f.sa.loadLut(image);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(f.sa.lutRead(i), 100 + i);
    EXPECT_EQ(f.sa.stats().lutReads, 64u);
}

TEST(Subarray, CacheModeDisablesTheDecoupledBitline)
{
    // lut_en = 0 (Fig. 4(b)): the LUT rows read like ordinary data
    // rows — same latency, full bitline energy — so conventional cache
    // behaviour is preserved.
    Fixture f;
    std::vector<std::uint8_t> image(16, 5);
    f.sa.loadLut(image);

    EXPECT_TRUE(f.sa.pimModeEnabled());
    const double pim_latency = f.sa.lutLatencyNs();

    f.sa.setPimMode(false);
    EXPECT_FALSE(f.sa.pimModeEnabled());
    EXPECT_DOUBLE_EQ(f.sa.lutLatencyNs(), f.sa.accessLatencyNs());
    EXPECT_NEAR(f.sa.accessLatencyNs() / pim_latency, 3.0, 1e-9);

    const double sa_before =
        f.energy.joules(EnergyCategory::SubarrayAccess);
    const double lut_before =
        f.energy.joules(EnergyCategory::LutAccess);
    EXPECT_EQ(f.sa.lutRead(3), 5);
    // Cache-mode read charged the full bitline, not the LUT path.
    EXPECT_GT(f.energy.joules(EnergyCategory::SubarrayAccess),
              sa_before);
    EXPECT_DOUBLE_EQ(f.energy.joules(EnergyCategory::LutAccess),
                     lut_before);

    // Re-enabling PIM mode restores the cheap path.
    f.sa.setPimMode(true);
    (void)f.sa.lutRead(3);
    EXPECT_GT(f.energy.joules(EnergyCategory::LutAccess), lut_before);
}

TEST(Subarray, ScratchRowsStoreIntermediates)
{
    Fixture f;
    std::vector<std::uint8_t> image(8, 0);
    f.sa.loadLut(image);
    f.sa.scratchWrite(3, 0xAB);
    EXPECT_EQ(f.sa.scratchRead(3), 0xAB);
}

TEST(SubarrayDeath, OversizeLutImageRejected)
{
    Fixture f;
    std::vector<std::uint8_t> image(65, 0);
    EXPECT_DEATH(f.sa.loadLut(image), "does not fit");
}

TEST(SubarrayDeath, OutOfBoundsAccessPanics)
{
    Fixture f;
    std::uint8_t v;
    EXPECT_DEATH(f.sa.read(8190, &v, 4), "exceeds capacity");
    EXPECT_DEATH((void)f.sa.lutRead(64), "exceeds");
}
