/**
 * @file
 * Whole-cache functional model: cross-sub-array access, LUT broadcast,
 * interconnect energy.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mem/sram_cache.hh"

using namespace bfree::mem;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

/** A small geometry keeps the test cache allocation cheap. */
CacheGeometry
small_geometry()
{
    CacheGeometry g;
    g.numSlices = 2;
    g.banksPerSlice = 2;
    g.subBanksPerBank = 2;
    g.subarraysPerSubBank = 4;
    return g;
}

} // namespace

TEST(SramCache, SubarrayCountMatchesGeometry)
{
    SramCache cache(small_geometry(), TechParams{});
    EXPECT_EQ(cache.numSubarrays(), 2u * 2 * 2 * 4);
}

TEST(SramCache, ReadBackAcrossSubarrayBoundaries)
{
    const CacheGeometry g = small_geometry();
    SramCache cache(g, TechParams{});

    // Write a pattern spanning two sub-arrays.
    const std::uint64_t boundary = g.subarrayBytes();
    std::vector<std::uint8_t> data(64);
    std::iota(data.begin(), data.end(), 1);
    cache.write(boundary - 32, data.data(), data.size());

    std::vector<std::uint8_t> out(64);
    cache.read(boundary - 32, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(SramCache, WriteLandsInDecodedSubarray)
{
    const CacheGeometry g = small_geometry();
    SramCache cache(g, TechParams{});
    const std::uint8_t v = 0x5A;
    cache.write(0, &v, 1);
    EXPECT_EQ(cache.subarray(0).peek(0), 0x5A);

    const std::uint64_t second = g.subarrayBytes();
    cache.write(second, &v, 1);
    EXPECT_EQ(cache.subarray(1).peek(0), 0x5A);
}

TEST(SramCache, AccessChargesSubarrayAndInterconnect)
{
    SramCache cache(small_geometry(), TechParams{});
    const std::uint8_t v = 1;
    cache.write(0, &v, 1);
    EXPECT_GT(cache.energy().joules(EnergyCategory::SubarrayAccess),
              0.0);
    EXPECT_GT(cache.energy().joules(EnergyCategory::Interconnect), 0.0);
}

TEST(SramCache, InterconnectDominatesAccessEnergy)
{
    // The Fig. 2 motivation reproduced on the functional model: a
    // cache-mode access pays far more in the H-tree than the array.
    SramCache cache(CacheGeometry{}, TechParams{});
    std::vector<std::uint8_t> row(8, 1);
    cache.write(0, row.data(), row.size());
    EXPECT_GT(cache.energy().joules(EnergyCategory::Interconnect),
              5.0 * cache.energy().joules(
                        EnergyCategory::SubarrayAccess));
}

TEST(SramCache, BroadcastLutReachesEverySubarray)
{
    SramCache cache(small_geometry(), TechParams{});
    std::vector<std::uint8_t> image(49);
    std::iota(image.begin(), image.end(), 1);
    cache.broadcastLut(image);
    for (unsigned i = 0; i < cache.numSubarrays(); ++i)
        EXPECT_EQ(cache.subarray(i).lutRead(10), image[10]);
}

TEST(SramCache, AggregateStatsSumAcrossSubarrays)
{
    const CacheGeometry g = small_geometry();
    SramCache cache(g, TechParams{});
    const std::uint8_t v = 1;
    cache.write(0, &v, 1);
    cache.write(g.subarrayBytes(), &v, 1);
    const SubarrayStats stats = cache.aggregateStats();
    EXPECT_EQ(stats.writes, 2u);
}

TEST(SramCache, CacheAccessLatencyIsSliceScale)
{
    SramCache cache(CacheGeometry{}, TechParams{});
    EXPECT_GT(cache.cacheAccessLatencyNs(), 5.0);
    EXPECT_LT(cache.cacheAccessLatencyNs(), 20.0);
}

TEST(SramCacheDeath, BadSubarrayIndexPanics)
{
    SramCache cache(small_geometry(), TechParams{});
    EXPECT_DEATH((void)cache.subarray(cache.numSubarrays()),
                 "out of range");
}
