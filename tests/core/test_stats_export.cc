/**
 * @file
 * gem5-style stats export and CSV output of a run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/bfree.hh"
#include "core/report.hh"
#include "core/stats_export.hh"

using namespace bfree::core;

namespace {

bfree::map::RunResult
tiny_run()
{
    static BFreeAccelerator acc;
    return acc.run(bfree::dnn::make_tiny_cnn());
}

} // namespace

TEST(StatsExport, DumpContainsRunScalars)
{
    std::ostringstream os;
    dump_run_stats(os, tiny_run());
    const std::string text = os.str();
    EXPECT_NE(text.find("bfree.secondsPerInference"), std::string::npos);
    EXPECT_NE(text.find("bfree.joulesPerInference"), std::string::npos);
    EXPECT_NE(text.find("bfree.batch"), std::string::npos);
}

TEST(StatsExport, DumpContainsPhaseAndEnergyGroups)
{
    std::ostringstream os;
    dump_run_stats(os, tiny_run());
    const std::string text = os.str();
    EXPECT_NE(text.find("bfree.time.compute"), std::string::npos);
    EXPECT_NE(text.find("bfree.time.weightLoad"), std::string::npos);
    EXPECT_NE(text.find("bfree.energy.dram"), std::string::npos);
    EXPECT_NE(text.find("bfree.energy.leakage"), std::string::npos);
}

TEST(StatsExport, PerLayerVectorsCoverAllLayers)
{
    const auto run = tiny_run();
    std::ostringstream os;
    dump_run_stats(os, run);
    const std::string text = os.str();
    const std::string last_index =
        "bfree.layers.seconds[" + std::to_string(run.layers.size() - 1)
        + "]";
    EXPECT_NE(text.find(last_index), std::string::npos);
    EXPECT_NE(text.find("bfree.layers.macs.total"), std::string::npos);
}

TEST(StatsExport, CustomRootName)
{
    std::ostringstream os;
    dump_run_stats(os, tiny_run(), "myrun");
    EXPECT_NE(os.str().find("myrun.secondsPerInference"),
              std::string::npos);
    EXPECT_EQ(os.str().find("bfree."), std::string::npos);
}

TEST(Csv, HeaderAndRowsAlign)
{
    const auto run = tiny_run();
    std::ostringstream os;
    write_csv_header(os);
    write_csv_rows(os, run);

    std::istringstream in(os.str());
    std::string line;
    std::getline(in, line);
    const auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    const auto header_commas = commas(line);
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(commas(line), header_commas) << line;
        ++rows;
    }
    EXPECT_EQ(rows, run.layers.size());
}

TEST(Csv, RowsCarryLayerNamesAndModes)
{
    const auto run = tiny_run();
    std::ostringstream os;
    write_csv_rows(os, run);
    const std::string text = os.str();
    EXPECT_NE(text.find("conv1"), std::string::npos);
    EXPECT_NE(text.find("TinyCNN"), std::string::npos);
    EXPECT_NE(text.find("matmul"), std::string::npos);
}
