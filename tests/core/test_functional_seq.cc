/**
 * @file
 * Functional LSTM and attention through the LUT datapath vs the float
 * references — the RNN/transformer counterpart of the CNN end-to-end
 * test.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/functional.hh"
#include "dnn/model_zoo.hh"

using namespace bfree::core;
using namespace bfree::dnn;

namespace {

LayerWeights
lstm_weights(const Layer &cell, bfree::sim::Rng &rng)
{
    LayerWeights w;
    w.weights.resize(std::size_t(4) * cell.lstmHidden
                     * (cell.lstmInput + cell.lstmHidden));
    w.bias.resize(std::size_t(4) * cell.lstmHidden);
    for (float &v : w.weights)
        v = static_cast<float>(rng.uniformReal(-0.4, 0.4));
    for (float &v : w.bias)
        v = static_cast<float>(rng.uniformReal(-0.1, 0.1));
    return w;
}

} // namespace

TEST(FunctionalLstm, StepTracksReference)
{
    const Layer cell = make_lstm_cell("cell", 6, 12);
    bfree::sim::Rng rng(31);
    const LayerWeights w = lstm_weights(cell, rng);

    LstmState ref_state;
    ref_state.h.assign(12, 0.0f);
    ref_state.c.assign(12, 0.0f);
    LstmState lut_state = ref_state;

    FunctionalExecutor exec;
    for (int t = 0; t < 5; ++t) {
        std::vector<float> x(6);
        for (float &v : x)
            v = static_cast<float>(rng.uniformReal(-1.0, 1.0));
        ref_state =
            reference_lstm_step(cell, x, ref_state, w.weights, w.bias);
        lut_state = exec.runLstmStep(cell, x, lut_state, w);

        for (unsigned j = 0; j < 12; ++j) {
            EXPECT_NEAR(lut_state.h[j], ref_state.h[j], 0.12)
                << "t=" << t << " j=" << j;
            EXPECT_NEAR(lut_state.c[j], ref_state.c[j], 0.15)
                << "t=" << t << " j=" << j;
        }
    }
}

TEST(FunctionalLstm, StateStaysBounded)
{
    const Layer cell = make_lstm_cell("cell", 4, 8);
    bfree::sim::Rng rng(32);
    const LayerWeights w = lstm_weights(cell, rng);

    FunctionalExecutor exec;
    LstmState state;
    state.h.assign(8, 0.0f);
    state.c.assign(8, 0.0f);
    std::vector<float> x = {0.5f, -0.5f, 0.25f, -0.25f};
    for (int t = 0; t < 20; ++t) {
        state = exec.runLstmStep(cell, x, state, w);
        for (float h : state.h)
            EXPECT_LT(std::abs(h), 1.05f);
    }
}

TEST(FunctionalLstm, UsesTheRomAndPwlTables)
{
    const Layer cell = make_lstm_cell("cell", 4, 8);
    bfree::sim::Rng rng(33);
    const LayerWeights w = lstm_weights(cell, rng);

    FunctionalExecutor exec;
    LstmState state;
    state.h.assign(8, 0.0f);
    state.c.assign(8, 0.0f);
    exec.runLstmStep(cell, {0.1f, 0.2f, 0.3f, 0.4f}, state, w);

    EXPECT_GT(exec.stats().counts.romLookups, 0u); // gate matvecs
    EXPECT_GT(exec.stats().counts.lutLookups, 0u); // PWL fetches
    EXPECT_GT(exec.stats().macs, 0u);
}

TEST(FunctionalAttention, TracksReference)
{
    const Layer attn = make_attention("attn", 6, 8, 1);
    bfree::sim::Rng rng(41);

    FloatTensor input({6, 8});
    input.fillUniform(rng, -1.0, 1.0);

    const std::size_t dd = 64;
    LayerWeights w;
    w.weights.resize(4 * dd);
    for (float &v : w.weights)
        v = static_cast<float>(rng.uniformReal(-0.35, 0.35));

    FunctionalExecutor exec;
    const FloatTensor got = exec.runAttention(attn, input, w);

    const std::vector<float> wq(w.weights.begin(), w.weights.begin() + dd);
    const std::vector<float> wk(w.weights.begin() + dd,
                                w.weights.begin() + 2 * dd);
    const std::vector<float> wv(w.weights.begin() + 2 * dd,
                                w.weights.begin() + 3 * dd);
    const std::vector<float> wo(w.weights.begin() + 3 * dd,
                                w.weights.end());
    const FloatTensor expected =
        reference_attention(attn, input, wq, wk, wv, wo);

    ASSERT_EQ(got.shape(), expected.shape());
    float worst = 0.0f;
    for (std::size_t i = 0; i < got.size(); ++i)
        worst = std::max(worst, std::abs(got[i] - expected[i]));
    EXPECT_LT(worst, 0.25f);

    // Correlation sanity: the quantized output must track the
    // reference direction, not just its magnitude.
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        dot += double(got[i]) * expected[i];
        na += double(got[i]) * got[i];
        nb += double(expected[i]) * expected[i];
    }
    EXPECT_GT(dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12), 0.98);
}

TEST(FunctionalAttention, SoftmaxRowsDistributeAttention)
{
    // With identity projections the context rows are convex
    // combinations of the input rows: bounded by input extremes.
    const Layer attn = make_attention("attn", 4, 4, 1);
    bfree::sim::Rng rng(42);
    FloatTensor input({4, 4});
    input.fillUniform(rng, -1.0, 1.0);

    LayerWeights w;
    w.weights.assign(4 * 16, 0.0f);
    for (unsigned block = 0; block < 4; ++block)
        for (unsigned i = 0; i < 4; ++i)
            w.weights[block * 16 + i * 4 + i] = 1.0f;

    FunctionalExecutor exec;
    const FloatTensor out = exec.runAttention(attn, input, w);
    float lo = 1e9f;
    float hi = -1e9f;
    for (std::size_t i = 0; i < input.size(); ++i) {
        lo = std::min(lo, input[i]);
        hi = std::max(hi, input[i]);
    }
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out[i], lo - 0.2f);
        EXPECT_LE(out[i], hi + 0.2f);
    }
}

TEST(FunctionalQMatmul, MatchesFloatWithinQuantization)
{
    bfree::sim::Rng rng(43);
    FloatTensor a({5, 7});
    a.fillUniform(rng, -1.0, 1.0);
    std::vector<float> w(7 * 3);
    for (float &v : w)
        v = static_cast<float>(rng.uniformReal(-1.0, 1.0));

    FunctionalExecutor exec;
    const FloatTensor got = exec.qMatmul(a, w.data(), 7, 3, 8);

    for (std::size_t i = 0; i < 5; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            float ref = 0.0f;
            for (std::size_t p = 0; p < 7; ++p)
                ref += a.at(i, p) * w[p * 3 + j];
            EXPECT_NEAR(got.at(i, j), ref, 0.08) << i << "," << j;
        }
    }
}
