/**
 * @file
 * Execution-plan parity and steady-state guarantees: a compiled
 * NetworkPlan (weights frozen once) must match the legacy per-call
 * quantization path float-for-float, the batch runner must be
 * bit-identical to a sequential loop for any thread count, and the
 * steady-state path must make zero heap allocations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "core/functional.hh"
#include "dnn/model_zoo.hh"

// ---------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps
// g_heap_allocs, so a test can assert that a code region allocated
// nothing. Counting is the only change; allocation still comes from
// malloc and failure still throws.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void *
counted_alloc(std::size_t n)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}
} // namespace

void *operator new(std::size_t n) { return counted_alloc(n); }
void *operator new[](std::size_t n) { return counted_alloc(n); }
void *
operator new(std::size_t n, std::align_val_t a)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(a),
                                     (n + static_cast<std::size_t>(a) - 1)
                                         / static_cast<std::size_t>(a)
                                         * static_cast<std::size_t>(a)))
        return p;
    throw std::bad_alloc{};
}
void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

using namespace bfree::core;
using namespace bfree::dnn;

namespace {

void
expect_stats_eq(const bfree::bce::BceStats &a,
                const bfree::bce::BceStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.macs, b.macs);
    EXPECT_EQ(a.configLoads, b.configLoads);
    EXPECT_EQ(a.counts.lutLookups, b.counts.lutLookups);
    EXPECT_EQ(a.counts.romLookups, b.counts.romLookups);
    EXPECT_EQ(a.counts.shifts, b.counts.shifts);
    EXPECT_EQ(a.counts.adds, b.counts.adds);
    EXPECT_EQ(a.counts.cycles, b.counts.cycles);
    for (std::size_t m = 0; m < a.cyclesByMode.size(); ++m)
        EXPECT_EQ(a.cyclesByMode[m], b.cyclesByMode[m]) << "mode " << m;
    EXPECT_EQ(a.lutReadsPim, b.lutReadsPim);
    EXPECT_EQ(a.lutReadsCache, b.lutReadsCache);
    EXPECT_EQ(a.specialLutEvents, b.specialLutEvents);
}

void
expect_bitwise_eq(const FloatTensor &a, const FloatTensor &b)
{
    ASSERT_EQ(a.shape(), b.shape());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             a.size() * sizeof(float)));
}

} // namespace

TEST(NetworkPlan, EstimateMatchesCompileSizing)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(11);
    const NetworkWeights weights = random_weights(net, rng);

    for (unsigned bits : {4u, 8u, 16u}) {
        const PlanStats est = NetworkPlan::estimate(net, bits);
        const NetworkPlan plan = NetworkPlan::compile(net, weights, bits);
        EXPECT_EQ(est.arenaBytes, plan.stats().arenaBytes) << bits;
        EXPECT_EQ(est.activationBytes, plan.stats().activationBytes);
        EXPECT_EQ(est.peakScratchBytes, plan.stats().peakScratchBytes);
        EXPECT_EQ(est.maxActivationElems,
                  plan.stats().maxActivationElems);
        EXPECT_GT(plan.stats().frozenValues, 0u);
        EXPECT_GT(plan.stats().frozenWeightBytes, 0u);
        EXPECT_EQ(plan.inputElems(), net.input().elements());
        EXPECT_EQ(plan.layers().size(), net.layers().size());
    }
}

TEST(NetworkPlan, TinyCnnPlanMatchesLegacyBitwise)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(2024);
    const NetworkWeights weights = random_weights(net, rng);

    for (unsigned bits : {4u, 8u, 16u}) {
        const NetworkPlan plan = NetworkPlan::compile(net, weights, bits);
        for (int trial = 0; trial < 3; ++trial) {
            FloatTensor input({1, 8, 8});
            input.fillUniform(rng, 0.0, 1.0);

            // The plan (weights frozen once, reused across trials)
            // against the legacy entry (fresh quantization per call).
            FunctionalExecutor planned;
            FunctionalExecutor legacy;
            const FunctionalResult a = planned.run(plan, input);
            const FunctionalResult b =
                legacy.run(net, input, weights, bits);

            expect_bitwise_eq(a.output, b.output);
            expect_stats_eq(a.stats, b.stats);
            EXPECT_EQ(planned.energy().total(), legacy.energy().total());
        }
        EXPECT_EQ(plan.runsServed(), 3u);
    }
}

TEST(NetworkPlan, LstmStepPlanMatchesLegacyBitwise)
{
    const Network net = make_lstm(6, 12, 4);
    ASSERT_EQ(net.layers().size(), 1u);
    const Layer &cell = net.layers()[0];

    bfree::sim::Rng rng(31);
    const NetworkWeights weights = random_weights(net, rng);
    const NetworkPlan plan = NetworkPlan::compile(net, weights, 8);

    LstmState planned_state;
    planned_state.h.assign(12, 0.0f);
    planned_state.c.assign(12, 0.0f);
    LstmState legacy_state = planned_state;

    FunctionalExecutor planned;
    FunctionalExecutor legacy;
    for (int t = 0; t < 4; ++t) {
        std::vector<float> x(6);
        for (float &v : x)
            v = static_cast<float>(rng.uniformReal(-1.0, 1.0));
        planned_state = planned.runLstmStep(plan, 0, x, planned_state);
        legacy_state =
            legacy.runLstmStep(cell, x, legacy_state, weights[0], 8);
        EXPECT_EQ(planned_state.h, legacy_state.h) << "t=" << t;
        EXPECT_EQ(planned_state.c, legacy_state.c) << "t=" << t;
    }
    expect_stats_eq(planned.stats(), legacy.stats());
}

TEST(NetworkPlan, AttentionPlanMatchesLegacyBitwise)
{
    Network net("attn-net", {1, 6, 8});
    net.add(make_attention("attn", 6, 8, 1));

    bfree::sim::Rng rng(41);
    const NetworkWeights weights = random_weights(net, rng);
    const NetworkPlan plan = NetworkPlan::compile(net, weights, 8);

    FloatTensor input({6, 8});
    input.fillUniform(rng, -1.0, 1.0);

    FunctionalExecutor planned;
    FunctionalExecutor legacy;
    const FloatTensor a = planned.runAttention(plan, 0, input);
    const FloatTensor b =
        legacy.runAttention(net.layers()[0], input, weights[0], 8);

    expect_bitwise_eq(a, b);
    expect_stats_eq(planned.stats(), legacy.stats());
}

TEST(NetworkPlan, QMatmulFrozenMatchesPerCallFreeze)
{
    bfree::sim::Rng rng(43);
    FloatTensor a({5, 7});
    a.fillUniform(rng, -1.0, 1.0);
    std::vector<float> w(7 * 3);
    for (float &v : w)
        v = static_cast<float>(rng.uniformReal(-1.0, 1.0));

    for (unsigned bits : {8u, 16u}) {
        const QuantizedWeights frozen =
            freeze_weights_transposed(w.data(), 7, 3, bits);
        FunctionalExecutor e1;
        FunctionalExecutor e2;
        const FloatTensor got1 = e1.qMatmulFrozen(a, frozen, 7, 3);
        const FloatTensor got2 = e2.qMatmul(a, w.data(), 7, 3, bits);
        expect_bitwise_eq(got1, got2);
        expect_stats_eq(e1.stats(), e2.stats());
    }
}

TEST(NetworkPlanBatch, BitIdenticalToSequentialAtAnyThreadCount)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(77);
    const NetworkWeights weights = random_weights(net, rng);
    const NetworkPlan plan = NetworkPlan::compile(net, weights, 8);

    std::vector<FloatTensor> inputs;
    for (int i = 0; i < 7; ++i) {
        FloatTensor in({1, 8, 8});
        in.fillUniform(rng, 0.0, 1.0);
        inputs.push_back(std::move(in));
    }

    // Sequential reference: one long-lived executor, parked after every
    // input exactly like the batch runner, summing per-input deltas.
    std::vector<FloatTensor> seq_outputs;
    bfree::bce::BceStats seq_stats;
    {
        FunctionalExecutor exec;
        for (const FloatTensor &in : inputs) {
            const bfree::bce::BceStats before = exec.stats();
            seq_outputs.push_back(exec.run(plan, in).output);
            exec.parkDatapath();
            seq_stats += exec.stats() - before;
        }
    }

    double energy_at_one = -1.0;
    for (unsigned threads : {1u, 2u, 8u}) {
        BatchOptions opts;
        opts.threads = threads;
        const BatchResult got = run_functional_batch(plan, inputs, opts);

        ASSERT_EQ(got.outputs.size(), inputs.size()) << threads;
        for (std::size_t i = 0; i < inputs.size(); ++i)
            expect_bitwise_eq(got.outputs[i], seq_outputs[i]);
        expect_stats_eq(got.stats, seq_stats);

        if (energy_at_one < 0.0)
            energy_at_one = got.energy.total();
        else
            EXPECT_EQ(got.energy.total(), energy_at_one) << threads;
    }
    EXPECT_GE(plan.runsServed(), inputs.size());
}

TEST(NetworkPlan, SteadyStateMakesZeroHeapAllocations)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(55);
    const NetworkWeights weights = random_weights(net, rng);
    const NetworkPlan plan = NetworkPlan::compile(net, weights, 8);

    FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);
    std::vector<float> output(plan.outputElems());

    FunctionalExecutor exec;
    // First run sizes the arena and seeds the memoized datapath tables.
    exec.runInto(plan, input.data(), plan.inputElems(), output.data(),
                 output.size());

    const std::uint64_t before =
        g_heap_allocs.load(std::memory_order_relaxed);
    const std::uint64_t arena_before = exec.arena().allocCount();
    exec.runInto(plan, input.data(), plan.inputElems(), output.data(),
                 output.size());
    const std::uint64_t after =
        g_heap_allocs.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "steady-state runInto must not touch the heap";
    // The scratch really is served by the arena, not skipped.
    EXPECT_GT(exec.arena().allocCount(), arena_before);
    // And the planning pass sized it exactly: the run fills the arena
    // to the byte, never beyond.
    EXPECT_EQ(exec.arena().capacity(), plan.stats().arenaBytes);
    EXPECT_EQ(exec.arena().highWater(), plan.stats().arenaBytes);
}

TEST(NetworkPlan, FrontendSelectionFollowsGeometryPolicy)
{
    // Disjoint windows (stride >= kernel) fuse quantization into the
    // patch; overlapping windows (3x3 s1, 1x1) elide the im2col copy;
    // wide precisions and non-conv layers stay legacy.
    Network net("front-mix", {3, 8, 8});
    net.add(make_conv("overlap", {3, 8, 8}, 4, 3, 1, 1));
    net.add(make_conv("disjoint", {4, 8, 8}, 4, 2, 2, 0));
    net.add(make_conv("pointwise", {4, 4, 4}, 2, 1, 1, 0));
    bfree::sim::Rng rng(7);
    const NetworkWeights weights = random_weights(net, rng);

    const NetworkPlan plan = NetworkPlan::compile(net, weights, 8);
    ASSERT_EQ(plan.layers().size(), 3u);
    EXPECT_EQ(plan.layers()[0].frontend, FrontendMode::Elided);
    EXPECT_EQ(plan.layers()[1].frontend, FrontendMode::Fused);
    EXPECT_EQ(plan.layers()[2].frontend, FrontendMode::Elided);
    EXPECT_EQ(plan.stats().legacyFrontLayers, 0u);
    EXPECT_EQ(plan.stats().fusedFrontLayers, 1u);
    EXPECT_EQ(plan.stats().elidedFrontLayers, 2u);

    // > 8-bit plans have no vectorized int8 front end at all: every
    // layer is Legacy and none is counted in the <= 8-bit front-end
    // ledger.
    const NetworkPlan wide = NetworkPlan::compile(net, weights, 16);
    for (const PlannedLayer &pl : wide.layers())
        EXPECT_EQ(pl.frontend, FrontendMode::Legacy) << pl.layer.name;
    EXPECT_EQ(wide.stats().legacyFrontLayers, 0u);
    EXPECT_EQ(wide.stats().fusedFrontLayers, 0u);
    EXPECT_EQ(wide.stats().elidedFrontLayers, 0u);
    EXPECT_EQ(wide.stats().savedPlaneBytes, 0u);
}

TEST(NetworkPlan, FusedFrontendShrinksArenaByThePlaneBytes)
{
    // Fusing quantization into the patch deletes the quantized-plane
    // scratch allocation: the compiled arena must shrink by exactly
    // the bytes the plan reports as saved, and a forced-legacy plan
    // must restore them.
    Network net("disjoint-only", {4, 8, 8});
    net.add(make_conv("d", {4, 8, 8}, 4, 2, 2, 0));
    bfree::sim::Rng rng(9);
    const NetworkWeights weights = random_weights(net, rng);

    const NetworkPlan fused = NetworkPlan::compile(net, weights, 8);
    ASSERT_EQ(fused.layers()[0].frontend, FrontendMode::Fused);
    EXPECT_GT(fused.stats().savedPlaneBytes, 0u);

    force_frontend(FrontendMode::Legacy);
    const NetworkPlan legacy = NetworkPlan::compile(net, weights, 8);
    reset_frontend();
    ASSERT_EQ(legacy.layers()[0].frontend, FrontendMode::Legacy);
    EXPECT_EQ(legacy.stats().savedPlaneBytes, 0u);
    EXPECT_EQ(legacy.stats().arenaBytes,
              fused.stats().arenaBytes + fused.stats().savedPlaneBytes);

    // The shrunken plan still sizes its arena exactly: running the
    // fused plan fills it to the byte (the high-water assertion in the
    // steady-state test, repeated here for the elided accounting).
    FloatTensor input({4, 8, 8});
    input.fillUniform(rng, -1.0, 1.0);
    std::vector<float> out(fused.outputElems());
    FunctionalExecutor exec;
    exec.runInto(fused, input.data(), fused.inputElems(), out.data(),
                 out.size());
    EXPECT_EQ(exec.arena().highWater(), fused.stats().arenaBytes);
}

TEST(NetworkPlan, HighWaterTracksThePlanActuallyRun)
{
    // Re-running a smaller plan through the same executor must report
    // that plan's own peak, not a stale high-water from a larger one —
    // the arena ledger is per-plan, so the mark resets per run.
    Network big("big", {3, 8, 8});
    big.add(make_conv("b", {3, 8, 8}, 4, 3, 1, 1));
    Network small("small", {4, 4, 4});
    small.add(make_conv("s", {4, 4, 4}, 2, 2, 2, 0));
    bfree::sim::Rng rng(13);
    const NetworkWeights bw = random_weights(big, rng);
    const NetworkWeights sw = random_weights(small, rng);
    const NetworkPlan bp = NetworkPlan::compile(big, bw, 8);
    const NetworkPlan sp = NetworkPlan::compile(small, sw, 8);
    ASSERT_LT(sp.stats().arenaBytes, bp.stats().arenaBytes);

    FunctionalExecutor exec;
    FloatTensor bin({3, 8, 8});
    bin.fillUniform(rng, -1.0, 1.0);
    std::vector<float> bout(bp.outputElems());
    exec.runInto(bp, bin.data(), bp.inputElems(), bout.data(),
                 bout.size());
    EXPECT_EQ(exec.arena().highWater(), bp.stats().arenaBytes);

    FloatTensor sin({4, 4, 4});
    sin.fillUniform(rng, -1.0, 1.0);
    std::vector<float> sout(sp.outputElems());
    exec.runInto(sp, sin.data(), sp.inputElems(), sout.data(),
                 sout.size());
    EXPECT_EQ(exec.arena().highWater(), sp.stats().arenaBytes)
        << "high-water must shrink to the smaller plan's own peak";
}

TEST(NetworkPlan, ForcedFrontendsAreBitwiseIdentical)
{
    // Outputs AND datapath statistics must be byte-identical across
    // the three forced front ends: every mode feeds the same patch
    // bytes to the same dotProductSpan call sequence.
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(17);
    const NetworkWeights weights = random_weights(net, rng);
    FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    force_frontend(FrontendMode::Legacy);
    const NetworkPlan lp = NetworkPlan::compile(net, weights, 8);
    FunctionalExecutor le;
    const FunctionalResult lr = le.run(lp, input);

    force_frontend(FrontendMode::Fused);
    const NetworkPlan fp = NetworkPlan::compile(net, weights, 8);
    FunctionalExecutor fe;
    const FunctionalResult fr = fe.run(fp, input);

    force_frontend(FrontendMode::Elided);
    const NetworkPlan ep = NetworkPlan::compile(net, weights, 8);
    FunctionalExecutor ee;
    const FunctionalResult er = ee.run(ep, input);
    reset_frontend();

    expect_bitwise_eq(fr.output, lr.output);
    expect_bitwise_eq(er.output, lr.output);
    expect_stats_eq(fr.stats, lr.stats);
    expect_stats_eq(er.stats, lr.stats);
    EXPECT_EQ(fe.energy().total(), le.energy().total());
    EXPECT_EQ(ee.energy().total(), le.energy().total());
}

TEST(NetworkPlanDeath, CompileRejectsWeightCountMismatch)
{
    const Network net = make_tiny_cnn();
    EXPECT_DEATH((void)NetworkPlan::compile(net, NetworkWeights{}, 8),
                 "weight entries");
}

TEST(NetworkPlanDeath, RunIntoRejectsWrongElementCounts)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(3);
    const NetworkWeights weights = random_weights(net, rng);
    const NetworkPlan plan = NetworkPlan::compile(net, weights, 8);

    FunctionalExecutor exec;
    std::vector<float> in(plan.inputElems() - 1);
    std::vector<float> out(plan.outputElems());
    EXPECT_DEATH(exec.runInto(plan, in.data(), in.size(), out.data(),
                              out.size()),
                 "input");
}
