/**
 * @file
 * Functional end-to-end: quantized inference through the real LUT
 * datapath matches the float reference within quantization tolerance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/functional.hh"
#include "dnn/model_zoo.hh"

using namespace bfree::core;
using namespace bfree::dnn;

namespace {

/** Float reference run of the networks the functional path supports. */
FloatTensor
reference_run(const Network &net, const FloatTensor &input,
              const NetworkWeights &weights)
{
    FloatTensor act = input;
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
        const Layer &l = net.layers()[i];
        switch (l.kind) {
          case LayerKind::Conv:
            act = reference_conv(l, act, weights[i].weights,
                                 weights[i].bias);
            break;
          case LayerKind::Fc: {
            FloatTensor flat({l.inFeatures, 1, 1});
            for (std::size_t j = 0; j < act.size(); ++j)
                flat[j] = act[j];
            act = reference_fc(l, flat, weights[i].weights,
                               weights[i].bias);
            break;
          }
          case LayerKind::Relu:
          case LayerKind::Sigmoid:
          case LayerKind::Tanh:
            act = reference_activation(l.kind, act);
            break;
          case LayerKind::MaxPool:
            act = reference_max_pool(l, act);
            break;
          case LayerKind::AvgPool:
            act = reference_avg_pool(l, act);
            break;
          case LayerKind::Softmax:
            act = reference_softmax(act);
            break;
          default:
            ADD_FAILURE() << "unsupported layer";
        }
    }
    return act;
}

std::size_t
argmax(const FloatTensor &t)
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
        if (t[i] > t[best])
            best = i;
    return best;
}

} // namespace

TEST(Functional, TinyCnnMatchesReferenceAt8Bit)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(2024);
    const NetworkWeights weights = random_weights(net, rng);
    FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    FunctionalExecutor exec;
    const FunctionalResult got = exec.run(net, input, weights, 8);
    const FloatTensor expected = reference_run(net, input, weights);

    ASSERT_EQ(got.output.size(), expected.size());
    // Probabilities after softmax: close element-wise, same argmax.
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(got.output[i], expected[i], 0.08) << i;
    EXPECT_EQ(argmax(got.output), argmax(expected));
}

TEST(Functional, DatapathActuallyUsedLutsAndRom)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(7);
    const NetworkWeights weights = random_weights(net, rng);
    FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    FunctionalExecutor exec;
    const FunctionalResult r = exec.run(net, input, weights, 8);
    EXPECT_GT(r.stats.macs, 0u);
    EXPECT_GT(r.stats.cycles, 0u);
    // Conv layers hit the sub-array LUT; the FC hit the ROM.
    EXPECT_GT(r.stats.counts.lutLookups, 0u);
    EXPECT_GT(r.stats.counts.romLookups, 0u);
    EXPECT_GT(exec.energy().total(), 0.0);
}

TEST(Functional, FourBitDegradesGracefully)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(99);
    const NetworkWeights weights = random_weights(net, rng);
    FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    FunctionalExecutor exec8;
    FunctionalExecutor exec4;
    const FloatTensor expected = reference_run(net, input, weights);
    const FunctionalResult got4 = exec4.run(net, input, weights, 4);

    // 4-bit is coarser but must stay a valid distribution.
    float sum = 0.0f;
    for (std::size_t i = 0; i < got4.output.size(); ++i) {
        EXPECT_GE(got4.output[i], -0.01f);
        sum += got4.output[i];
    }
    EXPECT_NEAR(sum, 1.0f, 0.1f);
    (void)expected;
}

TEST(Functional, ConvOnlyNetworkExact)
{
    // With weights/inputs that are exactly representable under the
    // symmetric quantizer, the LUT conv is nearly exact.
    Network net("conv-only", {1, 4, 4});
    net.add(make_conv("c", {1, 4, 4}, 2, 3, 1, 1));

    NetworkWeights weights(1);
    weights[0].weights.assign(18, 0.0f);
    weights[0].weights[0] = 1.0f;
    weights[0].weights[4] = -1.0f;
    weights[0].weights[9] = 0.5f;
    weights[0].bias = {0.0f, 0.25f};

    bfree::sim::Rng rng(4);
    FloatTensor input({1, 4, 4});
    input.fillUniform(rng, -1.0, 1.0);

    FunctionalExecutor exec;
    const FunctionalResult got = exec.run(net, input, weights, 8);
    const FloatTensor expected =
        reference_run(net, input, weights);
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(got.output[i], expected[i], 0.05) << i;
}

TEST(Functional, ForcedFrontendsMatchBitwiseOnPerCallPath)
{
    // The per-call entry resolves the conv front end per run (no
    // compiled plan), and every forced mode must be byte-identical in
    // outputs and datapath statistics: all three feed the exact same
    // patch bytes to the same dotProductSpan call sequence.
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng(23);
    const NetworkWeights weights = random_weights(net, rng);
    FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    force_frontend(FrontendMode::Legacy);
    FunctionalExecutor le;
    const FunctionalResult lr = le.run(net, input, weights, 8);
    force_frontend(FrontendMode::Fused);
    FunctionalExecutor fe;
    const FunctionalResult fr = fe.run(net, input, weights, 8);
    force_frontend(FrontendMode::Elided);
    FunctionalExecutor ee;
    const FunctionalResult er = ee.run(net, input, weights, 8);
    reset_frontend();

    ASSERT_EQ(lr.output.size(), fr.output.size());
    ASSERT_EQ(lr.output.size(), er.output.size());
    for (std::size_t i = 0; i < lr.output.size(); ++i) {
        EXPECT_EQ(lr.output[i], fr.output[i]) << "fused " << i;
        EXPECT_EQ(lr.output[i], er.output[i]) << "elided " << i;
    }
    EXPECT_EQ(lr.stats.macs, fr.stats.macs);
    EXPECT_EQ(lr.stats.macs, er.stats.macs);
    EXPECT_EQ(lr.stats.cycles, fr.stats.cycles);
    EXPECT_EQ(lr.stats.cycles, er.stats.cycles);
    EXPECT_EQ(lr.stats.counts.lutLookups, fr.stats.counts.lutLookups);
    EXPECT_EQ(lr.stats.counts.lutLookups, er.stats.counts.lutLookups);
    EXPECT_EQ(lr.stats.counts.adds, fr.stats.counts.adds);
    EXPECT_EQ(lr.stats.counts.adds, er.stats.counts.adds);
    EXPECT_EQ(le.energy().total(), fe.energy().total());
    EXPECT_EQ(le.energy().total(), ee.energy().total());
}

TEST(Functional, SixteenBitTracksReferenceTightly)
{
    // Higher precision, tighter agreement: the 16-bit quantizer should
    // land much closer to the float reference than the 8-bit one.
    Network net("conv16", {1, 6, 6});
    net.add(make_conv("c", {1, 6, 6}, 3, 3, 1, 1));

    bfree::sim::Rng rng(314);
    const NetworkWeights weights = random_weights(net, rng);
    FloatTensor input({1, 6, 6});
    input.fillUniform(rng, -1.0, 1.0);

    FunctionalExecutor exec8;
    FunctionalExecutor exec16;
    const FloatTensor expected = reference_run(net, input, weights);
    const FunctionalResult got8 = exec8.run(net, input, weights, 8);
    const FunctionalResult got16 = exec16.run(net, input, weights, 16);

    float worst8 = 0.0f;
    float worst16 = 0.0f;
    for (std::size_t i = 0; i < expected.size(); ++i) {
        worst8 = std::max(worst8,
                          std::abs(got8.output[i] - expected[i]));
        worst16 = std::max(worst16,
                           std::abs(got16.output[i] - expected[i]));
    }
    EXPECT_LT(worst16, worst8 + 1e-6f);
    EXPECT_LT(worst16, 1e-3f);
}

TEST(Functional, RandomWeightsAreReproducible)
{
    const Network net = make_tiny_cnn();
    bfree::sim::Rng rng1(55);
    bfree::sim::Rng rng2(55);
    const NetworkWeights w1 = random_weights(net, rng1);
    const NetworkWeights w2 = random_weights(net, rng2);
    ASSERT_EQ(w1.size(), w2.size());
    for (std::size_t i = 0; i < w1.size(); ++i)
        EXPECT_EQ(w1[i].weights, w2[i].weights);
}

TEST(FunctionalDeath, WeightCountMismatch)
{
    const Network net = make_tiny_cnn();
    FunctionalExecutor exec;
    FloatTensor input({1, 8, 8});
    EXPECT_DEATH((void)exec.run(net, input, NetworkWeights{}, 8),
                 "weight entries");
}
