/**
 * @file
 * Differential proof that the tiered (memoized-table, batched-span)
 * execution engine is bit- and stat-exact against the legacy scalar
 * datapath: identical products over the full operand space, identical
 * MicroOpCounts/cycles, and — because joules are derived from the
 * integer tallies in one closed form — identical energy, for every
 * PIM opcode, both BCE modes, and whole networks through
 * FunctionalExecutor::run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <vector>

#include "bce/bce.hh"
#include "core/functional.hh"
#include "dnn/model_zoo.hh"
#include "lut/division.hh"
#include "lut/fixed_point.hh"
#include "lut/pwl.hh"
#include "sim/parallel.hh"

using namespace bfree;
using bce::BceMode;
using bce::ExecTier;

namespace {

/** One self-contained BCE rig at a chosen execution tier. */
struct Engine
{
    tech::CacheGeometry geom{};
    tech::TechParams tech{};
    mem::EnergyAccount account;
    mem::Subarray subarray{geom, tech, account};
    bce::Bce bce{subarray, tech, account};

    explicit Engine(ExecTier tier, bool load_lut = true)
    {
        bce.setTier(tier);
        if (load_lut)
            bce.loadMultLutImage();
    }
};

void
expect_stats_equal(const bce::BceStats &a, const bce::BceStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.macs, b.macs);
    EXPECT_EQ(a.configLoads, b.configLoads);
    EXPECT_EQ(a.counts.lutLookups, b.counts.lutLookups);
    EXPECT_EQ(a.counts.romLookups, b.counts.romLookups);
    EXPECT_EQ(a.counts.shifts, b.counts.shifts);
    EXPECT_EQ(a.counts.adds, b.counts.adds);
    EXPECT_EQ(a.counts.cycles, b.counts.cycles);
    EXPECT_EQ(a.cyclesByMode, b.cyclesByMode);
    EXPECT_EQ(a.lutReadsPim, b.lutReadsPim);
    EXPECT_EQ(a.lutReadsCache, b.lutReadsCache);
    EXPECT_EQ(a.specialLutEvents, b.specialLutEvents);
}

/** Flush both engines and require bit-identical joules per category. */
void
expect_engines_identical(Engine &legacy, Engine &tiered)
{
    expect_stats_equal(legacy.bce.stats(), tiered.bce.stats());
    legacy.bce.flushEnergy();
    tiered.bce.flushEnergy();
    for (std::size_t c = 0; c < mem::num_energy_categories; ++c) {
        const auto cat = static_cast<mem::EnergyCategory>(c);
        EXPECT_EQ(legacy.account.joules(cat), tiered.account.joules(cat))
            << "energy category " << c;
    }
}

/** Deterministic int8 test vector (no RNG dependence). */
std::vector<std::int8_t>
pattern(std::size_t n, int seed, int limit = 127)
{
    std::vector<std::int8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int r = static_cast<int>((i * 37 + seed * 101) % 1000);
        v[i] = static_cast<std::int8_t>(r % (2 * limit + 1) - limit);
    }
    return v;
}

} // namespace

// ---------------------------------------------------------------------
// Full operand space, both modes
// ---------------------------------------------------------------------

TEST(TieredDatapath, Conv8BitFullOperandSpaceExact)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);

    // Per-pair products over the whole reachable int8 space.
    for (int a = -128; a <= 127; ++a) {
        for (int b = -128; b <= 127; ++b) {
            const auto wa = static_cast<std::int8_t>(a);
            const auto xb = static_cast<std::int8_t>(b);
            const std::int32_t pl =
                legacy.bce.dotProductSpan(&wa, &xb, 1, 8);
            const std::int32_t pt =
                tiered.bce.dotProductSpan(&wa, &xb, 1, 8);
            ASSERT_EQ(pl, pt) << "a=" << a << " b=" << b;
        }
    }
    expect_engines_identical(legacy, tiered);
}

TEST(TieredDatapath, Matmul8BitFullOperandSpaceExact)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);
    legacy.bce.setMode(BceMode::Matmul);
    tiered.bce.setMode(BceMode::Matmul);

    for (int a = -128; a <= 127; ++a) {
        for (int b = -128; b <= 127; ++b) {
            const auto aa = static_cast<std::int8_t>(a);
            const auto bb = static_cast<std::int8_t>(b);
            const std::int32_t pl =
                legacy.bce.matmulDotSpan(&aa, &bb, 1, 8);
            const std::int32_t pt =
                tiered.bce.matmulDotSpan(&aa, &bb, 1, 8);
            ASSERT_EQ(pl, pt) << "a=" << a << " b=" << b;
        }
    }
    expect_engines_identical(legacy, tiered);
}

TEST(TieredDatapath, FourBitFullSpaceAndClampExact)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);

    // In-range 4-bit space plus out-of-range values, which the span
    // kernels clamp to [-8, 7] exactly like the legacy dotProduct.
    for (int a = -20; a <= 20; ++a) {
        for (int b = -20; b <= 20; ++b) {
            const auto wa = static_cast<std::int8_t>(a);
            const auto xb = static_cast<std::int8_t>(b);
            ASSERT_EQ(legacy.bce.dotProductSpan(&wa, &xb, 1, 4),
                      tiered.bce.dotProductSpan(&wa, &xb, 1, 4))
                << "a=" << a << " b=" << b;
        }
    }
    legacy.bce.setMode(BceMode::Matmul);
    tiered.bce.setMode(BceMode::Matmul);
    for (int a = -8; a <= 7; ++a) {
        for (int b = -8; b <= 7; ++b) {
            const auto aa = static_cast<std::int8_t>(a);
            const auto bb = static_cast<std::int8_t>(b);
            ASSERT_EQ(legacy.bce.matmulDotSpan(&aa, &bb, 1, 4),
                      tiered.bce.matmulDotSpan(&aa, &bb, 1, 4))
                << "a=" << a << " b=" << b;
        }
    }
    expect_engines_identical(legacy, tiered);
}

TEST(TieredDatapath, LongSpansBatchStatsExactly)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);

    const std::vector<std::int8_t> w = pattern(4096, 1);
    const std::vector<std::int8_t> x = pattern(4096, 2);
    EXPECT_EQ(legacy.bce.dotProductSpan(w.data(), x.data(), w.size(), 8),
              tiered.bce.dotProductSpan(w.data(), x.data(), w.size(), 8));

    legacy.bce.setMode(BceMode::Matmul);
    tiered.bce.setMode(BceMode::Matmul);
    EXPECT_EQ(legacy.bce.matmulDotSpan(w.data(), x.data(), w.size(), 8),
              tiered.bce.matmulDotSpan(w.data(), x.data(), w.size(), 8));
    expect_engines_identical(legacy, tiered);
}

// ---------------------------------------------------------------------
// Batched kernels vs the scalar op sequences they replace
// ---------------------------------------------------------------------

TEST(TieredDatapath, MatmulDotSpanEqualsBroadcastMacSequence)
{
    // The batched span must be indistinguishable — products, stats and
    // energy — from the per-pair broadcastMac loop it replaces.
    Engine scalar(ExecTier::Legacy);
    Engine span(ExecTier::Tiered);
    scalar.bce.setMode(BceMode::Matmul);
    span.bce.setMode(BceMode::Matmul);

    const std::vector<std::int8_t> a = pattern(300, 3);
    const std::vector<std::int8_t> b = pattern(300, 4);

    std::int32_t acc_scalar = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::int32_t lane = 0;
        scalar.bce.broadcastMac(a[i], &b[i], 1, &lane, 8);
        acc_scalar += lane;
    }
    const std::int32_t acc_span =
        span.bce.matmulDotSpan(a.data(), b.data(), a.size(), 8);

    EXPECT_EQ(acc_scalar, acc_span);
    expect_engines_identical(scalar, span);
}

TEST(TieredDatapath, MatmulTileEqualsPerRowSpans)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);
    legacy.bce.setMode(BceMode::Matmul);
    tiered.bce.setMode(BceMode::Matmul);

    const std::size_t m = 5, k = 33, n = 7;
    const std::vector<std::int8_t> a = pattern(m * k, 5);
    const std::vector<std::int8_t> bt = pattern(n * k, 6);
    std::vector<std::int32_t> out_l(m * n, 0), out_t(m * n, 0);

    legacy.bce.matmulTile(a.data(), bt.data(), out_l.data(), m, k, n, 8);
    tiered.bce.matmulTile(a.data(), bt.data(), out_t.data(), m, k, n, 8);

    EXPECT_EQ(out_l, out_t);
    expect_engines_identical(legacy, tiered);
}

TEST(TieredDatapath, SixteenBitFallsBackToScalarExactly)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);

    const std::vector<std::int8_t> w = pattern(64, 7);
    const std::vector<std::int8_t> x = pattern(64, 8);
    EXPECT_EQ(legacy.bce.dotProductSpan(w.data(), x.data(), w.size(), 16),
              tiered.bce.dotProductSpan(w.data(), x.data(), w.size(), 16));
    EXPECT_EQ(legacy.bce.multiply(-30000, 123, 16),
              tiered.bce.multiply(-30000, 123, 16));
    expect_engines_identical(legacy, tiered);
}

// ---------------------------------------------------------------------
// Every PIM opcode through both engines
// ---------------------------------------------------------------------

namespace {

/**
 * Execute an op sequence covering all 14 PimOpcodes and log every
 * numeric result; the logs of both engines must match bit for bit.
 *
 *   Conv -> dotProductSpan        Matmul  -> matmulTile
 *   MaxPool/Relu -> maxReduce     AvgPool -> avgPool
 *   Sigmoid/Tanh/Exp -> evaluatePwl
 *   Softmax -> exp PWL + divide   Divide  -> divide
 *   EwAdd -> accumulateIncoming   EwMul   -> multiply
 *   Requantize -> requantize      LayerNorm -> adds + divide + multiply
 */
void
run_all_opcodes(bce::Bce &bce, std::vector<double> &log)
{
    const lut::PwlTable sigmoid = lut::make_sigmoid_table();
    const lut::PwlTable tanh_t = lut::make_tanh_table();
    const lut::PwlTable exp_t = lut::make_exp_table();
    const lut::DivisionLut div(4);
    const lut::RequantScale scale = lut::compute_requant_scale(0.05);

    // Conv (conv-mode dot product over the sub-array LUT).
    bce.setMode(BceMode::Conv);
    const std::vector<std::int8_t> w = pattern(49, 11);
    const std::vector<std::int8_t> x = pattern(49, 12);
    log.push_back(bce.dotProductSpan(w.data(), x.data(), w.size(), 8));

    // EwMul (element-wise multiplies on the conv path).
    for (int i = -5; i <= 5; ++i)
        log.push_back(
            static_cast<double>(bce.multiply(i * 11, 7 - i, 8)));

    // Matmul (blocked tile on the hardwired ROM).
    bce.setMode(BceMode::Matmul);
    std::vector<std::int32_t> tile(6, 0);
    bce.matmulTile(w.data(), x.data(), tile.data(), 2, 16, 3, 8);
    for (const std::int32_t v : tile)
        log.push_back(v);

    // Requantize.
    log.push_back(bce.requantize(1000, scale, 0, 8));
    log.push_back(bce.requantize(-777, scale, 3, 8));

    // MaxPool / Relu (comparator reductions).
    bce.setMode(BceMode::Special);
    const std::int32_t vals[6] = {3, -7, 12, 0, 9, -2};
    log.push_back(bce.maxReduce(vals, 6));
    const std::int32_t relu[2] = {0, -41};
    log.push_back(bce.maxReduce(relu, 2));

    // AvgPool (accumulate + LUT division).
    log.push_back(bce.avgPool(vals, 6, div));

    // Sigmoid / Tanh / Exp (PWL tables).
    log.push_back(bce.evaluatePwl(sigmoid, 0.7));
    log.push_back(bce.evaluatePwl(tanh_t, -0.3));
    log.push_back(bce.evaluatePwl(exp_t, 1.1));

    // Softmax over 3 logits: exp PWL then LUT division.
    double exps[3];
    double denom = 0.0;
    const double logits[3] = {0.2, -0.4, 1.0};
    for (int i = 0; i < 3; ++i) {
        exps[i] = bce.evaluatePwl(exp_t, logits[i]);
        denom += exps[i];
    }
    for (const double e : exps)
        log.push_back(bce.divide(e, denom, div));

    // Divide.
    log.push_back(bce.divide(20.0, 4.0, div));

    // EwAdd (systolic partial-sum accumulation).
    log.push_back(bce.accumulateIncoming(123, -45));

    // LayerNorm: mean via adds + division, then a normalizing multiply
    // on the conv path.
    std::int32_t sum = 0;
    for (const std::int32_t v : vals)
        sum = bce.accumulateIncoming(sum, v);
    const double mean = bce.divide(std::abs(sum), 6.0, div);
    log.push_back(mean);
    bce.setMode(BceMode::Conv);
    log.push_back(static_cast<double>(
        bce.multiply(static_cast<std::int32_t>(mean), 13, 8)));
}

} // namespace

TEST(TieredDatapath, AllFourteenOpcodesExact)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);

    std::vector<double> log_l, log_t;
    run_all_opcodes(legacy.bce, log_l);
    run_all_opcodes(tiered.bce, log_t);

    ASSERT_EQ(log_l.size(), log_t.size());
    for (std::size_t i = 0; i < log_l.size(); ++i)
        EXPECT_EQ(log_l[i], log_t[i]) << "log entry " << i;
    expect_engines_identical(legacy, tiered);
}

// ---------------------------------------------------------------------
// Table invalidation
// ---------------------------------------------------------------------

TEST(TieredDatapath, MemoTablesRebuildWhenLutRowsChange)
{
    Engine legacy(ExecTier::Legacy);
    Engine tiered(ExecTier::Tiered);

    // Seed the tiered conv tables from the pristine LUT image.
    const std::vector<std::int8_t> w = pattern(64, 21);
    const std::vector<std::int8_t> x = pattern(64, 22);
    EXPECT_EQ(legacy.bce.dotProductSpan(w.data(), x.data(), w.size(), 8),
              tiered.bce.dotProductSpan(w.data(), x.data(), w.size(), 8));

    // Overwrite the 3*3 entry (row 0, col 0 of the odd-odd table) in
    // BOTH sub-arrays. The legacy path reads the new byte immediately;
    // the tiered engine must notice the LUT generation moved and
    // reseed instead of serving stale products.
    legacy.subarray.scratchWrite(0, 42);
    tiered.subarray.scratchWrite(0, 42);

    const std::int8_t three = 3;
    const std::int32_t pl = legacy.bce.dotProductSpan(&three, &three, 1, 8);
    const std::int32_t pt = tiered.bce.dotProductSpan(&three, &three, 1, 8);
    EXPECT_EQ(pl, 42); // the poisoned table entry, shift 0
    EXPECT_EQ(pl, pt);

    EXPECT_EQ(legacy.bce.dotProductSpan(w.data(), x.data(), w.size(), 8),
              tiered.bce.dotProductSpan(w.data(), x.data(), w.size(), 8));
    expect_engines_identical(legacy, tiered);
}

TEST(TieredDatapathDeath, ConvSpanBeforeLutLoadPanicsOnBothTiers)
{
    EXPECT_DEATH(
        {
            Engine e(ExecTier::Legacy, /*load_lut=*/false);
            const std::int8_t v = 3;
            (void)e.bce.dotProductSpan(&v, &v, 1, 8);
        },
        "LUT image was loaded");
    EXPECT_DEATH(
        {
            Engine e(ExecTier::Tiered, /*load_lut=*/false);
            const std::int8_t v = 3;
            (void)e.bce.dotProductSpan(&v, &v, 1, 8);
        },
        "LUT image was loaded");
}

// ---------------------------------------------------------------------
// Whole networks through FunctionalExecutor::run
// ---------------------------------------------------------------------

namespace {

void
expect_network_equivalence(unsigned bits)
{
    const dnn::Network net = dnn::make_tiny_cnn();
    sim::Rng rng(2024);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    dnn::FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    core::FunctionalExecutor legacy({}, {}, ExecTier::Legacy);
    core::FunctionalExecutor tiered({}, {}, ExecTier::Tiered);

    const core::FunctionalResult rl = legacy.run(net, input, weights, bits);
    const core::FunctionalResult rt = tiered.run(net, input, weights, bits);

    ASSERT_EQ(rl.output.size(), rt.output.size());
    for (std::size_t i = 0; i < rl.output.size(); ++i)
        EXPECT_EQ(rl.output[i], rt.output[i]) << "output " << i;
    expect_stats_equal(rl.stats, rt.stats);
    for (std::size_t c = 0; c < mem::num_energy_categories; ++c) {
        const auto cat = static_cast<mem::EnergyCategory>(c);
        EXPECT_EQ(legacy.energy().joules(cat), tiered.energy().joules(cat))
            << "energy category " << c;
    }
}

} // namespace

TEST(TieredNetwork, TinyCnn8BitBitExact)
{
    expect_network_equivalence(8);
}

TEST(TieredNetwork, TinyCnn4BitBitExact)
{
    expect_network_equivalence(4);
}

TEST(TieredNetwork, Conv16BitBitExact)
{
    dnn::Network net("conv16", {1, 6, 6});
    net.add(dnn::make_conv("c", {1, 6, 6}, 3, 3, 1, 1));
    sim::Rng rng(314);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    dnn::FloatTensor input({1, 6, 6});
    input.fillUniform(rng, -1.0, 1.0);

    core::FunctionalExecutor legacy({}, {}, ExecTier::Legacy);
    core::FunctionalExecutor tiered({}, {}, ExecTier::Tiered);
    const core::FunctionalResult rl = legacy.run(net, input, weights, 16);
    const core::FunctionalResult rt = tiered.run(net, input, weights, 16);
    for (std::size_t i = 0; i < rl.output.size(); ++i)
        EXPECT_EQ(rl.output[i], rt.output[i]) << i;
    expect_stats_equal(rl.stats, rt.stats);
}

TEST(TieredNetwork, LstmStepBitExact)
{
    const dnn::Layer cell = dnn::make_lstm_cell("cell", 6, 12);
    sim::Rng rng(31);
    core::LayerWeights w;
    w.weights.resize(std::size_t(4) * 12 * (6 + 12));
    w.bias.resize(std::size_t(4) * 12);
    for (float &v : w.weights)
        v = static_cast<float>(rng.uniformReal(-0.4, 0.4));
    for (float &v : w.bias)
        v = static_cast<float>(rng.uniformReal(-0.1, 0.1));

    core::FunctionalExecutor legacy({}, {}, ExecTier::Legacy);
    core::FunctionalExecutor tiered({}, {}, ExecTier::Tiered);
    dnn::LstmState sl, st;
    sl.h.assign(12, 0.0f);
    sl.c.assign(12, 0.0f);
    st = sl;

    const std::vector<float> xin = {0.5f, -0.25f, 0.1f,
                                    -0.7f, 0.3f, 0.9f};
    for (int t = 0; t < 3; ++t) {
        sl = legacy.runLstmStep(cell, xin, sl, w);
        st = tiered.runLstmStep(cell, xin, st, w);
        for (unsigned j = 0; j < 12; ++j) {
            EXPECT_EQ(sl.h[j], st.h[j]) << "t=" << t << " j=" << j;
            EXPECT_EQ(sl.c[j], st.c[j]) << "t=" << t << " j=" << j;
        }
    }
    expect_stats_equal(legacy.stats(), tiered.stats());
}

TEST(TieredNetwork, AttentionBitExact)
{
    const dnn::Layer attn = dnn::make_attention("attn", 6, 8, 1);
    sim::Rng rng(41);
    dnn::FloatTensor input({6, 8});
    input.fillUniform(rng, -1.0, 1.0);
    core::LayerWeights w;
    w.weights.resize(4 * 64);
    for (float &v : w.weights)
        v = static_cast<float>(rng.uniformReal(-0.35, 0.35));

    core::FunctionalExecutor legacy({}, {}, ExecTier::Legacy);
    core::FunctionalExecutor tiered({}, {}, ExecTier::Tiered);
    const dnn::FloatTensor ol = legacy.runAttention(attn, input, w);
    const dnn::FloatTensor ot = tiered.runAttention(attn, input, w);
    ASSERT_EQ(ol.size(), ot.size());
    for (std::size_t i = 0; i < ol.size(); ++i)
        EXPECT_EQ(ol[i], ot[i]) << i;
    expect_stats_equal(legacy.stats(), tiered.stats());
}

// ---------------------------------------------------------------------
// Sweep engine integration: per-thread tables, deterministic merge
// ---------------------------------------------------------------------

namespace {

std::string
sweep_output(unsigned threads)
{
    std::vector<sim::SweepJob> jobs;
    for (int j = 0; j < 6; ++j) {
        jobs.push_back(sim::SweepJob{
            "job" + std::to_string(j), [j](sim::SweepContext &ctx) {
                // Each job owns a private executor, hence private
                // memoized tables — no sharing across threads.
                const dnn::Network net = dnn::make_tiny_cnn();
                sim::Rng rng(100 + j);
                const core::NetworkWeights weights =
                    core::random_weights(net, rng);
                dnn::FloatTensor input({1, 8, 8});
                input.fillUniform(rng, 0.0, 1.0);

                core::FunctionalExecutor exec({}, {}, ExecTier::Tiered);
                const core::FunctionalResult r =
                    exec.run(net, input, weights, 8);
                ctx.out << std::hexfloat;
                for (std::size_t i = 0; i < r.output.size(); ++i)
                    ctx.out << r.output[i] << "\n";
                ctx.out << r.stats.macs << " " << r.stats.cycles << " "
                        << exec.energy().total() << "\n";
            }});
    }
    sim::SweepRunner runner(threads);
    return runner.run(std::move(jobs)).output();
}

} // namespace

TEST(TieredSweep, PerThreadTablesMergeDeterministically)
{
    const std::string one = sweep_output(1);
    const std::string four = sweep_output(4);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, four);
}
