/**
 * @file
 * Report formatting helpers.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/bfree.hh"
#include "core/report.hh"

using namespace bfree::core;

TEST(Format, SecondsPicksUnits)
{
    EXPECT_EQ(format_seconds(1.5), "1.500 s");
    EXPECT_EQ(format_seconds(0.0042), "4.200 ms");
    EXPECT_EQ(format_seconds(3.1e-6), "3.100 us");
    EXPECT_EQ(format_seconds(2e-9), "2.000 ns");
}

TEST(Format, JoulesPicksUnits)
{
    EXPECT_EQ(format_joules(2.0), "2.000 J");
    EXPECT_EQ(format_joules(0.012), "12.000 mJ");
    EXPECT_EQ(format_joules(5e-6), "5.000 uJ");
}

TEST(Format, Counts)
{
    EXPECT_EQ(format_count(4.7e9), "4.70G");
    EXPECT_EQ(format_count(24e6), "24.00M");
    EXPECT_EQ(format_count(1500), "1.50K");
}

TEST(Report, SummaryMentionsNetworkAndBatch)
{
    BFreeAccelerator acc;
    const auto r = acc.run(bfree::dnn::make_tiny_cnn());
    std::ostringstream os;
    print_summary(os, r);
    EXPECT_NE(os.str().find("TinyCNN"), std::string::npos);
    EXPECT_NE(os.str().find("batch 1"), std::string::npos);
}

TEST(Report, LayerTableListsLayers)
{
    BFreeAccelerator acc;
    const auto r = acc.run(bfree::dnn::make_tiny_cnn());
    std::ostringstream os;
    print_layer_table(os, r);
    EXPECT_NE(os.str().find("conv1"), std::string::npos);
    EXPECT_NE(os.str().find("fc"), std::string::npos);
}

TEST(Report, LayerTableTruncates)
{
    BFreeAccelerator acc;
    const auto r = acc.run(bfree::dnn::make_vgg16());
    std::ostringstream os;
    print_layer_table(os, r, 3);
    EXPECT_NE(os.str().find("more layers"), std::string::npos);
}

TEST(Report, PhaseSharesSumNearHundred)
{
    BFreeAccelerator acc;
    const auto r = acc.run(bfree::dnn::make_vgg16());
    std::ostringstream os;
    print_phase_shares(os, "vgg", r.time);
    EXPECT_NE(os.str().find("%"), std::string::npos);
}

TEST(Report, EnergyBreakdownListsCategories)
{
    BFreeAccelerator acc;
    const auto r = acc.run(bfree::dnn::make_tiny_cnn());
    std::ostringstream os;
    print_energy_breakdown(os, r.energy);
    EXPECT_NE(os.str().find("dram"), std::string::npos);
    EXPECT_NE(os.str().find("sa_access"), std::string::npos);
    EXPECT_NE(os.str().find("leakage"), std::string::npos);
}

TEST(Report, EnergyBreakdownCanExcludeDram)
{
    BFreeAccelerator acc;
    const auto r = acc.run(bfree::dnn::make_tiny_cnn());
    std::ostringstream os;
    print_energy_breakdown(os, r.energy, /*exclude_dram=*/true);
    EXPECT_EQ(os.str().find("dram"), std::string::npos);
}
