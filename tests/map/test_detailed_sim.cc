/**
 * @file
 * Cross-validation: the event-driven sub-bank chain matches the closed
 * form in both results (exact dot products) and cycles.
 */

#include <gtest/gtest.h>

#include <vector>

#include "map/detailed_sim.hh"
#include "sim/random.hh"

using namespace bfree::map;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

struct ChainCase
{
    unsigned nodes;
    unsigned slice_len;
    unsigned waves;
    unsigned bits;
};

class ChainSweep : public ::testing::TestWithParam<ChainCase>
{};

/** Reference dot product of one wave against the weight slices. */
std::int32_t
reference_output(const std::vector<std::vector<std::int8_t>> &weights,
                 const std::vector<std::int8_t> &wave,
                 unsigned slice_len)
{
    std::int32_t acc = 0;
    for (std::size_t k = 0; k < weights.size(); ++k)
        for (unsigned i = 0; i < slice_len; ++i)
            acc += std::int32_t(weights[k][i])
                   * wave[k * slice_len + i];
    return acc;
}

} // namespace

TEST_P(ChainSweep, OutputsAndCyclesMatchClosedForm)
{
    const ChainCase p = GetParam();
    CacheGeometry geom;
    TechParams tech;

    DetailedSubBankSim sim(geom, tech, p.nodes, p.slice_len, p.bits);

    bfree::sim::Rng rng(101 + p.nodes);
    const int lo = p.bits == 4 ? -8 : -128;
    const int hi = p.bits == 4 ? 7 : 127;

    std::vector<std::vector<std::int8_t>> weights(p.nodes);
    for (auto &slice : weights) {
        slice.resize(p.slice_len);
        for (auto &w : slice)
            w = static_cast<std::int8_t>(rng.uniformInt(lo, hi));
    }
    sim.loadWeights(weights);

    std::vector<std::vector<std::int8_t>> inputs(p.waves);
    for (auto &wave : inputs) {
        wave.resize(std::size_t(p.nodes) * p.slice_len);
        for (auto &x : wave)
            x = static_cast<std::int8_t>(rng.uniformInt(lo, hi));
    }

    const DetailedRunResult r = sim.run(inputs);

    // Functional: every wave's output is the exact dot product.
    ASSERT_EQ(r.outputs.size(), p.waves);
    for (unsigned w = 0; w < p.waves; ++w)
        EXPECT_EQ(r.outputs[w],
                  reference_output(weights, inputs[w], p.slice_len))
            << "wave " << w;

    // Timing: the event-driven wall clock equals the closed form the
    // analytic model uses.
    EXPECT_EQ(r.cycles,
              detailed_chain_formula(p.nodes, p.waves,
                                     sim.cyclesPerStep(),
                                     tech.routerHopCycles));
}

INSTANTIATE_TEST_SUITE_P(
    Chains, ChainSweep,
    ::testing::Values(ChainCase{1, 8, 1, 8},   // degenerate chain
                      ChainCase{2, 4, 3, 8},
                      ChainCase{4, 8, 5, 8},
                      ChainCase{8, 8, 10, 8},  // full sub-bank
                      ChainCase{8, 16, 4, 8},
                      ChainCase{8, 8, 10, 4},  // 4-bit operands
                      ChainCase{3, 5, 7, 4},
                      ChainCase{8, 32, 20, 8}));

TEST(DetailedChainFormula, KnownValues)
{
    // 8 nodes, 10 waves, 64 cycles/step, 1-cycle hops:
    // 10*64 + 7 = 647.
    EXPECT_EQ(detailed_chain_formula(8, 10, 64, 1), 647u);
    EXPECT_EQ(detailed_chain_formula(1, 5, 10, 1), 50u);
    EXPECT_EQ(detailed_chain_formula(4, 0, 10, 1), 0u);
    EXPECT_EQ(detailed_chain_formula(0, 5, 10, 1), 0u);
}

TEST(DetailedSim, CyclesPerStepFollowsPrecision)
{
    CacheGeometry geom;
    TechParams tech;
    DetailedSubBankSim sim8(geom, tech, 2, 16, 8);
    DetailedSubBankSim sim4(geom, tech, 2, 16, 4);
    EXPECT_EQ(sim8.cyclesPerStep(), 32u); // 16 MACs x 2 cycles
    EXPECT_EQ(sim4.cyclesPerStep(), 16u); // 16 MACs x 1 cycle
}

TEST(DetailedSim, ChargesRouterAndLutEnergy)
{
    CacheGeometry geom;
    TechParams tech;
    DetailedSubBankSim sim(geom, tech, 4, 8, 8);

    std::vector<std::vector<std::int8_t>> weights(
        4, std::vector<std::int8_t>(8, 3));
    sim.loadWeights(weights);
    std::vector<std::vector<std::int8_t>> inputs(
        2, std::vector<std::int8_t>(32, 5));
    sim.run(inputs);

    using bfree::mem::EnergyCategory;
    EXPECT_GT(sim.energy().joules(EnergyCategory::Router), 0.0);
    EXPECT_GT(sim.energy().joules(EnergyCategory::LutAccess), 0.0);
    EXPECT_GT(sim.energy().joules(EnergyCategory::SubarrayAccess), 0.0);
    EXPECT_GT(sim.energy().joules(EnergyCategory::BceCompute), 0.0);
}

TEST(DetailedSimDeath, BadChainLength)
{
    CacheGeometry geom;
    TechParams tech;
    EXPECT_DEATH(DetailedSubBankSim(geom, tech, 0, 8, 8), "chain");
    EXPECT_DEATH(DetailedSubBankSim(geom, tech, 9, 8, 8), "chain");
}
