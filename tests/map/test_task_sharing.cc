/**
 * @file
 * Task sharing (the paper's future-work extension): compute isolation
 * on disjoint slices, contention only on the shared channel.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "map/task_sharing.hh"

using namespace bfree::map;
using namespace bfree::dnn;
using bfree::tech::CacheGeometry;
using bfree::tech::MainMemoryKind;
using bfree::tech::TechParams;

namespace {

SharedRunResult
share(const Network &a, const Network &b, unsigned slices_a,
      ExecConfig cfg = {})
{
    return run_shared(CacheGeometry{}, TechParams{}, a, b, slices_a,
                      cfg);
}

} // namespace

TEST(TaskSharing, SlowdownIsAtLeastOne)
{
    for (unsigned split : {2u, 7u, 12u}) {
        const SharedRunResult r =
            share(make_inception_v3(), make_bert_base(), split);
        EXPECT_GE(r.a.slowdown(), 1.0 - 1e-12) << split;
        EXPECT_GE(r.b.slowdown(), 1.0 - 1e-12) << split;
        EXPECT_GE(r.channelPressure, 1.0) << split;
    }
}

TEST(TaskSharing, CacheResidentTenantBarelyInterferes)
{
    // The LSTM runs out of cache. In steady state (its 4.3 MB of
    // weights amortized over a stream of sequences — batch 16 here)
    // its channel demand is a few percent, so the CNN sharing the
    // fabric with it is almost unaffected.
    ExecConfig cfg;
    cfg.batch = 16;
    const SharedRunResult r =
        share(make_inception_v3(), make_lstm(), 7, cfg);
    EXPECT_LT(r.b.channelDemand, 0.08);
    EXPECT_LT(r.a.slowdown(), 1.30);
    EXPECT_LT(r.b.slowdown(), 1.30);
}

TEST(TaskSharing, TwoStreamingCnnsContend)
{
    // Two weight-streaming CNNs on DRAM oversubscribe the channel.
    const SharedRunResult r = share(make_vgg16(), make_vgg16(), 7);
    EXPECT_GT(r.channelPressure, 1.2);
    EXPECT_GT(r.a.slowdown(), 1.1);
    EXPECT_GT(r.b.slowdown(), 1.1);
}

TEST(TaskSharing, FasterChannelRelievesContention)
{
    ExecConfig dram;
    dram.memory = MainMemoryKind::DRAM;
    ExecConfig hbm;
    hbm.memory = MainMemoryKind::HBM;
    const SharedRunResult slow =
        share(make_vgg16(), make_vgg16(), 7, dram);
    const SharedRunResult fast =
        share(make_vgg16(), make_vgg16(), 7, hbm);
    EXPECT_LT(fast.channelPressure, slow.channelPressure);
}

TEST(TaskSharing, MoreSlicesHelpTheTenantThatGetsThem)
{
    const SharedRunResult narrow =
        share(make_bert_base(), make_lstm(), 2);
    const SharedRunResult wide =
        share(make_bert_base(), make_lstm(), 12);
    EXPECT_LE(wide.a.sharedSeconds, narrow.a.sharedSeconds * 1.0001);
}

TEST(TaskSharing, CombinedThroughputIsSumOfTenants)
{
    const SharedRunResult r =
        share(make_inception_v3(), make_bert_base(), 7);
    EXPECT_NEAR(r.combinedThroughput(),
                r.a.throughput() + r.b.throughput(), 1e-12);
    EXPECT_GT(r.combinedThroughput(), 0.0);
}

TEST(TaskSharingDeath, RejectsDegenerateSplits)
{
    EXPECT_DEATH(share(make_lstm(), make_lstm(), 0), "at least one");
    EXPECT_DEATH(share(make_lstm(), make_lstm(), 14), "at least one");
}
