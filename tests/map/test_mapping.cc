/**
 * @file
 * Mapper: mode selection, tiling, duplication, residency.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "map/mapping.hh"

using namespace bfree::map;
using namespace bfree::dnn;
using bfree::tech::CacheGeometry;

TEST(Mapper, AvailabilityFollowsSliceCount)
{
    CacheGeometry g;
    MapperOptions one_slice;
    one_slice.slices = 1;
    EXPECT_EQ(Mapper(g, one_slice).availableSubarrays(), 320u);
    EXPECT_EQ(Mapper(g).availableSubarrays(), 4480u);
}

TEST(Mapper, FcAndAttentionPreferMatmulMode)
{
    Mapper mapper((CacheGeometry()));
    EXPECT_EQ(mapper.map(make_fc("fc", 1024, 1024)).mode,
              ExecMode::MatmulMode);
    EXPECT_EQ(mapper.map(make_attention("a", 128, 768, 12)).mode,
              ExecMode::MatmulMode);
    EXPECT_EQ(mapper.map(make_lstm_cell("l", 39, 1024)).mode,
              ExecMode::MatmulMode);
}

TEST(Mapper, SmallConvGetsMatmulMode)
{
    // A small conv's unrolled input easily fits: matrix formulation.
    Mapper mapper((CacheGeometry()));
    const Layer l = make_conv("c", {64, 28, 28}, 64, 3, 1, 1);
    EXPECT_EQ(mapper.map(l).mode, ExecMode::MatmulMode);
}

TEST(Mapper, HugeUnrolledConvFallsBackToConvMode)
{
    // Shrink the fabric to a single slice so the unrolled input of a
    // large early conv no longer fits.
    CacheGeometry g;
    MapperOptions opts;
    opts.slices = 1;
    Mapper mapper(g, opts);
    const Layer l = make_conv("c", {64, 299, 299}, 96, 3, 1, 1);
    EXPECT_EQ(mapper.map(l).mode, ExecMode::ConvMode);
}

TEST(Mapper, ForcedModeOverrides)
{
    CacheGeometry g;
    MapperOptions opts;
    opts.forcedMode = ExecMode::ConvMode;
    Mapper mapper(g, opts);
    EXPECT_EQ(mapper.map(make_fc("fc", 256, 256)).mode,
              ExecMode::ConvMode);
}

TEST(Mapper, ActiveSubarraysBounded)
{
    Mapper mapper((CacheGeometry()));
    const Network vgg = make_vgg16();
    for (const Layer &l : vgg.layers()) {
        const LayerMapping m = mapper.map(l);
        EXPECT_LE(m.activeSubarrays, mapper.availableSubarrays())
            << l.name;
        if (l.isComputeLayer()) {
            EXPECT_GE(m.weightTiles, 1u);
            EXPECT_GE(m.duplication, 1u);
            EXPECT_EQ(m.activeSubarrays,
                      m.weightTiles * m.duplication);
        }
    }
}

TEST(Mapper, SmallLayersGetDuplicated)
{
    Mapper mapper((CacheGeometry()));
    // A small conv fits in one sub-array; duplication should kick in.
    const Layer l = make_conv("c", {8, 28, 28}, 8, 3, 1, 1);
    const LayerMapping m = mapper.map(l);
    EXPECT_GT(m.duplication, 1u);
}

TEST(Mapper, RecurrentCellIsNotDuplicated)
{
    Mapper mapper((CacheGeometry()));
    // The LSTM recurrence is sequential: no useful duplication.
    const LayerMapping m = mapper.map(make_lstm_cell("l", 39, 1024));
    EXPECT_EQ(m.duplication, 1u);
}

TEST(Mapper, BigLayersUseManyTiles)
{
    Mapper mapper((CacheGeometry()));
    const LayerMapping m = mapper.map(make_fc("fc6", 25088, 4096));
    // ~103 MB of weights: every sub-array participates.
    EXPECT_EQ(m.activeSubarrays, mapper.availableSubarrays());
}

TEST(Mapper, ResidencyMatchesThePaper)
{
    Mapper mapper((CacheGeometry()));
    // "The whole LSTM model fits within the SRAM cache" (Section V-D);
    // VGG-16 (138 MB) and BERT-base (~87 MB) stream per layer.
    EXPECT_TRUE(mapper.weightsResident(make_lstm()));
    EXPECT_FALSE(mapper.weightsResident(make_vgg16()));
    EXPECT_FALSE(mapper.weightsResident(make_bert_base()));
}

TEST(Mapper, SpecialLayersUseWholeFabric)
{
    Mapper mapper((CacheGeometry()));
    const LayerMapping m =
        mapper.map(make_activation("r", LayerKind::Relu, {64, 56, 56}));
    EXPECT_EQ(m.mode, ExecMode::SpecialMode);
    EXPECT_EQ(m.activeSubarrays, mapper.availableSubarrays());
}

TEST(MapperDeath, BadSliceCount)
{
    CacheGeometry g;
    MapperOptions opts;
    opts.slices = 15;
    EXPECT_DEATH(Mapper(g, opts), "slice count");
}

TEST(ExecModeNames, Stable)
{
    EXPECT_STREQ(exec_mode_name(ExecMode::ConvMode), "conv");
    EXPECT_STREQ(exec_mode_name(ExecMode::MatmulMode), "matmul");
    EXPECT_STREQ(exec_mode_name(ExecMode::SpecialMode), "special");
}
