/**
 * @file
 * The hierarchical control path (Fig. 11): the configuration phase
 * writes LUT rows and config blocks that BCEs can actually decode.
 */

#include <gtest/gtest.h>

#include "lut/lut_image.hh"
#include "map/controllers.hh"

using namespace bfree::map;
using namespace bfree::bce;
using bfree::lut::DivisionLut;
using bfree::lut::MultLut;
using bfree::lut::serialize;
using bfree::mem::MainMemory;
using bfree::mem::SramCache;
using bfree::tech::CacheGeometry;
using bfree::tech::MainMemoryKind;
using bfree::tech::TechParams;

namespace {

struct Fixture
{
    Fixture()
        : geom(smallGeometry()), cache(geom, tech),
          memory(bfree::tech::main_memory_params(MainMemoryKind::DRAM),
                 cache.energy()),
          controller(cache, memory, tech)
    {}

    static CacheGeometry
    smallGeometry()
    {
        CacheGeometry g;
        g.numSlices = 2;
        g.banksPerSlice = 2;
        g.subBanksPerBank = 1;
        g.subarraysPerSubBank = 4;
        return g;
    }

    CacheGeometry geom;
    TechParams tech;
    SramCache cache;
    MainMemory memory;
    CacheController controller;
};

} // namespace

TEST(Controllers, ConfigurationPhaseLoadsLutRows)
{
    Fixture f;
    ConfigBlock cb;
    cb.opcode = PimOpcode::Conv;
    const ConfigPhaseResult r = f.controller.configure(
        serialize(MultLut{}), 1 << 20, cb, f.cache.numSubarrays());

    EXPECT_GT(r.total(), 0.0);
    // Every sub-array now answers odd x odd lookups.
    for (unsigned i = 0; i < f.cache.numSubarrays(); ++i)
        EXPECT_EQ(f.cache.subarray(i).lutRead(0), 9u); // 3 x 3
}

TEST(Controllers, ConfigBlockRoundTripsThroughStorage)
{
    Fixture f;
    ConfigBlock cb;
    cb.opcode = PimOpcode::Matmul;
    cb.precisionBits = 4;
    cb.iterations = 777;
    cb.startRow = 3;
    cb.endRow = 200;
    f.controller.configure(serialize(MultLut{}), 1024, cb, 4);

    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(f.controller.readConfig(i), cb);
}

TEST(Controllers, WeightBroadcastBoundByDramRate)
{
    Fixture f;
    ConfigBlock cb;
    const double bytes = 100e6;
    const ConfigPhaseResult r = f.controller.configure(
        serialize(MultLut{}), static_cast<std::uint64_t>(bytes), cb, 2);
    // 100 MB over 20 GB/s = 5 ms; ring is faster, so DRAM gates.
    EXPECT_NEAR(r.weightBroadcastSeconds, bytes / 20e9,
                0.05 * bytes / 20e9);
}

TEST(Controllers, TracksKernelCount)
{
    Fixture f;
    ConfigBlock cb;
    EXPECT_EQ(f.controller.kernelsConfigured(), 0u);
    f.controller.configure(serialize(MultLut{}), 10, cb, 1);
    f.controller.configure(serialize(DivisionLut(4)), 10, cb, 1);
    EXPECT_EQ(f.controller.kernelsConfigured(), 2u);
}

TEST(Controllers, DivisionImageAlsoFits)
{
    Fixture f;
    ConfigBlock cb;
    cb.opcode = PimOpcode::Divide;
    const ConfigPhaseResult r = f.controller.configure(
        serialize(DivisionLut(4)), 0, cb, f.cache.numSubarrays());
    EXPECT_GE(r.lutLoadSeconds, 0.0);
}

TEST(Controllers, LutVerificationDetectsCorruption)
{
    Fixture f;
    ConfigBlock cb;
    const bfree::lut::LutImage image = serialize(MultLut{});
    f.controller.configure(image, 0, cb, f.cache.numSubarrays());

    // Freshly configured: every sub-array verifies.
    for (unsigned i = 0; i < f.cache.numSubarrays(); ++i)
        EXPECT_TRUE(f.controller.verifyLut(i, image)) << i;

    // Flip one LUT byte in one sub-array (a soft error in the table).
    f.cache.subarray(2).scratchWrite(10, 0xFF);
    EXPECT_FALSE(f.controller.verifyLut(2, image));
    EXPECT_TRUE(f.controller.verifyLut(1, image));
}

TEST(Controllers, ChecksumIsContentSensitive)
{
    const bfree::lut::LutImage mult = serialize(MultLut{});
    const bfree::lut::LutImage div = serialize(DivisionLut(4));
    EXPECT_NE(mult.checksum(), div.checksum());

    bfree::lut::LutImage copy = mult;
    EXPECT_EQ(copy.checksum(), mult.checksum());
    copy.bytes[0] ^= 1;
    EXPECT_NE(copy.checksum(), mult.checksum());
}

TEST(ControllersDeath, OversizeLutImageRejected)
{
    Fixture f;
    ConfigBlock cb;
    EXPECT_DEATH(
        f.controller.configure(serialize(DivisionLut(8)), 0, cb, 1),
        "does not fit");
}

TEST(ControllersDeath, ZeroActiveSubarraysRejected)
{
    Fixture f;
    ConfigBlock cb;
    EXPECT_DEATH(
        f.controller.configure(serialize(MultLut{}), 0, cb, 0),
        "active sub-array");
}
