/**
 * @file
 * Weight placement invariants and the functional load/read round trip.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "dnn/model_zoo.hh"
#include "map/placement.hh"
#include "sim/random.hh"

using namespace bfree::map;
using namespace bfree::dnn;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

LayerMapping
map_layer(const Layer &layer, unsigned slices = 14)
{
    CacheGeometry g;
    MapperOptions opts;
    opts.slices = slices;
    return Mapper(g, opts).map(layer);
}

} // namespace

TEST(Placement, EveryReplicaIsFullyCovered)
{
    const CacheGeometry geom;
    const Network vgg = make_vgg16();
    for (const Layer &l : vgg.layers()) {
        if (!l.isComputeLayer())
            continue;
        const LayerMapping m = map_layer(l);
        const WeightPlacement p = place_weights(m, geom);
        for (unsigned r = 0; r < p.replicas; ++r) {
            std::uint64_t covered = 0;
            std::uint64_t expected_offset = 0;
            for (const TileExtent &e : p.replicaExtents(r)) {
                EXPECT_EQ(e.weightOffset, expected_offset) << l.name;
                expected_offset += e.byteCount;
                covered += e.byteCount;
            }
            EXPECT_EQ(covered, p.weightBytes) << l.name << " r" << r;
        }
    }
}

TEST(Placement, NoTwoReplicasShareASubarray)
{
    const CacheGeometry geom;
    const Layer l = make_conv("c", {8, 28, 28}, 8, 3, 1, 1);
    const LayerMapping m = map_layer(l);
    ASSERT_GT(m.duplication, 1u);
    const WeightPlacement p = place_weights(m, geom);

    std::set<std::pair<unsigned, unsigned>> used;
    for (const TileExtent &e : p.extents) {
        EXPECT_TRUE(used.insert({e.subarray, e.pass}).second)
            << "sub-array " << e.subarray << " reused within a pass";
    }
    EXPECT_EQ(p.passes(), 1u); // a small conv is fully resident
}

TEST(Placement, OversizeLayersStreamInPasses)
{
    // VGG-16's fc6 holds ~103 MB of weights: more than the whole
    // cache, so the placement must fold into multiple passes.
    const CacheGeometry geom;
    const Layer fc = make_fc("fc6", 25088, 4096);
    const WeightPlacement p = place_weights(map_layer(fc), geom);
    EXPECT_GT(p.passes(), 1u);

    // Coverage still holds across passes.
    std::uint64_t covered = 0;
    for (const TileExtent &e : p.replicaExtents(0))
        covered += e.byteCount;
    EXPECT_EQ(covered, p.weightBytes);
}

TEST(Placement, ExtentsStayInsideTheUsableRegion)
{
    const CacheGeometry geom;
    const Layer fc = make_fc("fc6", 25088, 4096);
    const WeightPlacement p = place_weights(map_layer(fc), geom);
    for (const TileExtent &e : p.extents) {
        EXPECT_GE(e.byteOffset, 64u); // CB region reserved
        EXPECT_LE(e.byteOffset + e.byteCount, geom.subarrayBytes());
    }
}

TEST(Placement, LoadReadRoundTripsThroughTheCache)
{
    CacheGeometry geom;
    geom.numSlices = 1; // keep the test cache small
    TechParams tech;
    bfree::mem::SramCache cache(geom, tech);

    MapperOptions opts;
    opts.slices = 1;
    const Layer l = make_conv("c", {4, 10, 10}, 4, 3, 1, 1);
    const LayerMapping m = Mapper(geom, opts).map(l);
    const WeightPlacement p = place_weights(m, geom);

    bfree::sim::Rng rng(9);
    std::vector<std::uint8_t> weights(p.weightBytes);
    for (auto &b : weights)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

    load_weights(cache, p, weights);
    for (unsigned r = 0; r < std::min(3u, p.replicas); ++r)
        EXPECT_EQ(read_weights(cache, p, r), weights) << "replica " << r;
}

TEST(Placement, EmptyForSpecialLayers)
{
    const CacheGeometry geom;
    const Layer relu =
        make_activation("r", LayerKind::Relu, {8, 8, 8});
    const WeightPlacement p = place_weights(map_layer(relu), geom);
    EXPECT_TRUE(p.extents.empty());
    EXPECT_EQ(p.weightBytes, 0u);
}

TEST(Placement, FourBitWeightsUseHalfTheExtentBytes)
{
    const CacheGeometry geom;
    Layer fc = make_fc("fc", 1024, 1024);
    fc.fcRows = 64;
    const std::uint64_t bytes8 =
        place_weights(map_layer(fc), geom).weightBytes;
    fc.precisionBits = 4;
    const std::uint64_t bytes4 =
        place_weights(map_layer(fc), geom).weightBytes;
    EXPECT_EQ(bytes4 * 2, bytes8);
}
