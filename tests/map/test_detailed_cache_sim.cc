/**
 * @file
 * DetailedCacheSim: full-cache detailed timing over all LLC slices.
 *
 * The acceptance bar for the sharded engine is bit-exactness: the same
 * integer accumulators, cycle counts, event counts and energy as the
 * single-queue baseline for any worker count, and the same dequantized
 * layer outputs as the functional LUT executor.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/functional.hh"
#include "map/detailed_cache_sim.hh"
#include "map/detailed_slice_sim.hh"
#include "sim/random.hh"

using namespace bfree;
using namespace bfree::map;
using bfree::mem::EnergyCategory;
using bfree::mem::num_energy_categories;

namespace {

/** Deterministic small int8 values that never overflow int32 sums. */
std::vector<std::vector<std::int8_t>>
make_matrix(unsigned rows, unsigned cols, int seed)
{
    std::vector<std::vector<std::int8_t>> m(rows);
    for (unsigned r = 0; r < rows; ++r) {
        m[r].resize(cols);
        for (unsigned c = 0; c < cols; ++c)
            m[r][c] = static_cast<std::int8_t>(
                ((seed + 3 * r + 7 * c) % 23) - 11);
    }
    return m;
}

/** Plain integer GEMM reference: acc[f][w] = filters[f] . inputs[w]. */
std::vector<std::vector<std::int32_t>>
reference_gemm(const std::vector<std::vector<std::int8_t>> &filters,
               const std::vector<std::vector<std::int8_t>> &inputs)
{
    std::vector<std::vector<std::int32_t>> accs(filters.size());
    for (std::size_t f = 0; f < filters.size(); ++f) {
        accs[f].resize(inputs.size());
        for (std::size_t w = 0; w < inputs.size(); ++w) {
            std::int32_t acc = 0;
            for (std::size_t i = 0; i < filters[f].size(); ++i)
                acc += std::int32_t(filters[f][i]) *
                       std::int32_t(inputs[w][i]);
            accs[f][w] = acc;
        }
    }
    return accs;
}

void
expect_energy_bitwise_equal(const mem::EnergyAccount &a,
                            const mem::EnergyAccount &b)
{
    for (std::size_t i = 0; i < num_energy_categories; ++i) {
        const auto cat = static_cast<EnergyCategory>(i);
        EXPECT_EQ(a.joules(cat), b.joules(cat))
            << mem::energy_category_name(cat);
    }
}

} // namespace

TEST(PartitionFilters, BlockedWithRemainderOnLowSlices)
{
    EXPECT_EQ(partition_filters(14, 14),
              std::vector<unsigned>(14, 1));
    // 30 = 2 * 14 + 2: the two extra filters land on slices 0 and 1.
    auto p = partition_filters(30, 14);
    EXPECT_EQ(p[0], 3u);
    EXPECT_EQ(p[1], 3u);
    EXPECT_EQ(p[2], 2u);
    EXPECT_EQ(std::accumulate(p.begin(), p.end(), 0u), 30u);
    // Fewer filters than slices: trailing slices idle.
    auto small = partition_filters(5, 14);
    EXPECT_EQ(small[4], 1u);
    EXPECT_EQ(small[5], 0u);
    EXPECT_EQ(std::accumulate(small.begin(), small.end(), 0u), 5u);
}

TEST(DetailedCacheFormula, MaxOverShiftedSliceDrains)
{
    const unsigned rows = 8, waves = 10, hop = 1, slice_hop = 2;
    const std::uint64_t cps = 4;
    const std::vector<unsigned> cols = {3, 3, 2, 0};
    std::uint64_t expect = 0;
    for (unsigned s = 0; s < cols.size(); ++s) {
        if (cols[s] == 0)
            continue;
        expect = std::max(
            expect, s * slice_hop + detailed_grid_formula(
                                        rows, cols[s], waves, cps, hop));
    }
    EXPECT_EQ(detailed_cache_formula(rows, cols, waves, cps, hop,
                                     slice_hop),
              expect);
    // All-idle partitions drain immediately.
    EXPECT_EQ(detailed_cache_formula(rows, {0, 0}, waves, cps, hop,
                                     slice_hop),
              0u);
}

TEST(DetailedSliceSim, BurstEngineMatchesPerFlitBitwise)
{
    const unsigned rows = 4, cols = 3, slice_len = 2, waves = 5;
    tech::CacheGeometry geom;
    tech::TechParams tp;

    std::vector<std::vector<std::vector<std::int8_t>>> weights(cols);
    for (unsigned c = 0; c < cols; ++c) {
        weights[c].resize(rows);
        for (unsigned r = 0; r < rows; ++r)
            weights[c][r] = make_matrix(1, slice_len, 13 + c * rows + r)[0];
    }
    const auto inputs = make_matrix(waves, rows * slice_len, 29);

    DetailedSliceSim per_flit(geom, tp, rows, cols, slice_len, 8,
                              GridEngine::PerFlit);
    per_flit.loadWeights(weights);
    const auto a = per_flit.run(inputs);

    DetailedSliceSim burst(geom, tp, rows, cols, slice_len, 8,
                           GridEngine::Burst);
    burst.loadWeights(weights);
    const auto b = burst.run(inputs);

    EXPECT_EQ(a.outputs, b.outputs);
    EXPECT_EQ(a.cycles, b.cycles);
    // The burst engine ships wave trains, not individual flits: far
    // fewer scheduled events for the same simulated behaviour.
    EXPECT_LT(b.events, a.events);
    expect_energy_bitwise_equal(per_flit.energy(), burst.energy());
}

TEST(DetailedCacheSim, GemmMatchesIntegerReferenceAndFormula)
{
    const unsigned k = 16, filters = 20, waves = 5;
    tech::CacheGeometry geom;
    tech::TechParams tp;
    const auto fbank = make_matrix(filters, k, 41);
    const auto inputs = make_matrix(waves, k, 5);

    DetailedCacheOptions opts;
    opts.engine = CacheEngine::SingleQueue;
    DetailedCacheSim sim(geom, tp, opts);
    const auto result = sim.runGemm(fbank, inputs);

    EXPECT_EQ(result.accs, reference_gemm(fbank, inputs));
    EXPECT_EQ(result.waves, waves);

    const auto part = partition_filters(filters, geom.numSlices);
    unsigned active = 0;
    for (unsigned c : part)
        active += c > 0;
    EXPECT_EQ(result.activeSlices, active);
    ASSERT_EQ(result.sliceCycles.size(), active);

    const unsigned rows = sim.rowsFor(k);
    const unsigned slice_len = (k + rows - 1) / rows;
    const std::uint64_t cps = std::uint64_t(slice_len) * (8 / 4);
    const std::uint64_t formula = detailed_cache_formula(
        rows, part, waves, cps, tp.routerHopCycles,
        tp.interSliceHopCycles);
    EXPECT_EQ(result.cycles, formula);
    // Whole-cache drain is the slowest slice's drain.
    EXPECT_EQ(result.cycles,
              *std::max_element(result.sliceCycles.begin(),
                                result.sliceCycles.end()));
}

TEST(DetailedCacheSim, ShardedIsBitIdenticalToSingleQueue)
{
    const unsigned k = 24, filters = 17, waves = 6;
    tech::CacheGeometry geom;
    tech::TechParams tp;
    const auto fbank = make_matrix(filters, k, 3);
    const auto inputs = make_matrix(waves, k, 57);

    DetailedCacheOptions single;
    single.engine = CacheEngine::SingleQueue;
    DetailedCacheSim base(geom, tp, single);
    const auto a = base.runGemm(fbank, inputs);

    DetailedCacheOptions sharded;
    sharded.engine = CacheEngine::Sharded;
    sharded.threads = 4;
    DetailedCacheSim par(geom, tp, sharded);
    const auto b = par.runGemm(fbank, inputs);

    EXPECT_EQ(a.accs, b.accs);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.sliceCycles, b.sliceCycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.activeSlices, b.activeSlices);
    expect_energy_bitwise_equal(a.energy, b.energy);
    // Only the sharded engine reports epoch/message telemetry.
    EXPECT_EQ(a.epochs, 0u);
    EXPECT_GT(b.epochs, 0u);
    EXPECT_GT(b.crossMessages, 0u);
}

TEST(DetailedCacheSim, ShardedIsDeterministicAcrossThreadCounts)
{
    const unsigned k = 24, filters = 17, waves = 6;
    tech::CacheGeometry geom;
    tech::TechParams tp;
    const auto fbank = make_matrix(filters, k, 3);
    const auto inputs = make_matrix(waves, k, 57);

    auto run_with = [&](unsigned threads) {
        DetailedCacheOptions opts;
        opts.engine = CacheEngine::Sharded;
        opts.threads = threads;
        DetailedCacheSim sim(geom, tp, opts);
        return sim.runGemm(fbank, inputs);
    };

    const auto one = run_with(1);
    const auto many = run_with(4);
    EXPECT_EQ(one.accs, many.accs);
    EXPECT_EQ(one.cycles, many.cycles);
    EXPECT_EQ(one.sliceCycles, many.sliceCycles);
    EXPECT_EQ(one.events, many.events);
    EXPECT_EQ(one.epochs, many.epochs);
    EXPECT_EQ(one.crossMessages, many.crossMessages);
    expect_energy_bitwise_equal(one.energy, many.energy);
}

TEST(DetailedCacheSim, PerFlitGridAgreesAtCacheScale)
{
    const unsigned k = 12, filters = 9, waves = 4;
    tech::CacheGeometry geom;
    tech::TechParams tp;
    const auto fbank = make_matrix(filters, k, 19);
    const auto inputs = make_matrix(waves, k, 23);

    auto run_grid = [&](GridEngine grid) {
        DetailedCacheOptions opts;
        opts.engine = CacheEngine::Sharded;
        opts.grid = grid;
        opts.threads = 2;
        DetailedCacheSim sim(geom, tp, opts);
        return sim.runGemm(fbank, inputs);
    };

    const auto per_flit = run_grid(GridEngine::PerFlit);
    const auto burst = run_grid(GridEngine::Burst);
    EXPECT_EQ(per_flit.accs, burst.accs);
    EXPECT_EQ(per_flit.cycles, burst.cycles);
    EXPECT_LT(burst.events, per_flit.events);
    expect_energy_bitwise_equal(per_flit.energy, burst.energy);
}

TEST(DetailedCacheSim, ConvMatchesFunctionalExecutorBitwise)
{
    // One conv layer through all 14 slices must reproduce the
    // functional LUT datapath float-for-float: same quantizer, same
    // integer accumulators, same dequantization expression.
    const dnn::FeatureShape in_shape{3, 6, 6};
    const auto layer = dnn::make_conv("conv", in_shape, 8, 3, 1, 1);
    dnn::Network net("conv-net", in_shape);
    net.add(layer);

    sim::Rng rng(0xBF5EEDu);
    const auto weights = core::random_weights(net, rng);
    dnn::FloatTensor input({in_shape.c, in_shape.h, in_shape.w});
    input.fillUniform(rng, -1.0, 1.0);

    core::FunctionalExecutor exec;
    const auto functional = exec.run(net, input, weights, 8);

    tech::CacheGeometry geom;
    tech::TechParams tp;
    DetailedCacheSim sim(geom, tp, {});
    const auto detailed = sim.runConv(layer, input, weights[0].weights,
                                      weights[0].bias);

    ASSERT_EQ(detailed.output.shape(), functional.output.shape());
    for (std::size_t i = 0; i < functional.output.size(); ++i)
        EXPECT_EQ(detailed.output[i], functional.output[i]) << "at " << i;

    const auto out = layer.outputShape();
    EXPECT_EQ(detailed.waves, out.h * out.w);
    EXPECT_EQ(detailed.accs.size(), layer.outChannels);
    EXPECT_GT(detailed.cycles, 0u);
}

TEST(DetailedCacheSim, FcMatchesFunctionalExecutorBitwise)
{
    const auto layer = dnn::make_fc("fc", 32, 10);
    dnn::Network net("fc-net", layer.input);
    net.add(layer);

    sim::Rng rng(0xFACEu);
    const auto weights = core::random_weights(net, rng);
    dnn::FloatTensor input({32, 1, 1});
    input.fillUniform(rng, -1.0, 1.0);

    core::FunctionalExecutor exec;
    const auto functional = exec.run(net, input, weights, 8);

    tech::CacheGeometry geom;
    tech::TechParams tp;
    DetailedCacheSim sim(geom, tp, {});
    const auto detailed =
        sim.runFc(layer, input, weights[0].weights, weights[0].bias);

    ASSERT_EQ(detailed.output.size(), functional.output.size());
    for (std::size_t i = 0; i < functional.output.size(); ++i)
        EXPECT_EQ(detailed.output[i], functional.output[i]) << "at " << i;
    EXPECT_EQ(detailed.waves, 1u);
    EXPECT_EQ(detailed.accs.size(), 10u);
}
