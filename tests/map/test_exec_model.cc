/**
 * @file
 * The analytic execution model: phase accounting, overlap, batch and
 * bandwidth behaviour, magnitudes against the paper.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "dnn/quantize.hh"
#include "map/exec_model.hh"

using namespace bfree::map;
using namespace bfree::dnn;
using bfree::tech::CacheGeometry;
using bfree::tech::MainMemoryKind;
using bfree::tech::TechParams;

namespace {

ExecutionModel
model(ExecConfig cfg = {})
{
    return ExecutionModel(CacheGeometry{}, TechParams{}, cfg);
}

} // namespace

TEST(PhaseBreakdown, TotalIsSumOfPhases)
{
    PhaseBreakdown p;
    p.weightLoad = 1.0;
    p.inputLoad = 2.0;
    p.compute = 3.0;
    p.special = 0.5;
    p.requant = 0.25;
    p.fill = 0.125;
    EXPECT_DOUBLE_EQ(p.total(), 6.875);
    EXPECT_DOUBLE_EQ(p.scaled(2.0).total(), 13.75);
}

TEST(ExecModel, RunTimeEqualsLayerSum)
{
    const RunResult r = model().run(make_vgg16());
    PhaseBreakdown sum;
    for (const LayerResult &l : r.layers)
        sum += l.time;
    EXPECT_NEAR(r.time.total(), sum.total(), 1e-12);
    EXPECT_EQ(r.layers.size(), make_vgg16().layers().size());
}

TEST(ExecModel, EnergyEqualsLayerSum)
{
    const RunResult r = model().run(make_vgg16());
    double sum = 0.0;
    for (const LayerResult &l : r.layers)
        sum += l.energy.total();
    EXPECT_NEAR(r.energy.total(), sum, 1e-12);
}

TEST(ExecModel, ComputeSecondsFollowsRateFormula)
{
    ExecutionModel m = model();
    const Layer l = make_fc("fc", 1024, 1024);
    const LayerMapping mapping = m.mapper().map(l);
    const double s = m.computeSeconds(l, mapping);
    const double expected =
        static_cast<double>(l.macs())
        / (4.0 * mapping.activeSubarrays * 1.5e9);
    EXPECT_NEAR(s, expected, expected * 1e-9);
}

TEST(ExecModel, MoreBandwidthNeverSlower)
{
    ExecConfig dram;
    dram.memory = MainMemoryKind::DRAM;
    ExecConfig edram;
    edram.memory = MainMemoryKind::EDRAM;
    ExecConfig hbm;
    hbm.memory = MainMemoryKind::HBM;

    const Network vgg = make_vgg16();
    const double t_dram = model(dram).run(vgg).secondsPerInference();
    const double t_edram = model(edram).run(vgg).secondsPerInference();
    const double t_hbm = model(hbm).run(vgg).secondsPerInference();
    EXPECT_GE(t_dram, t_edram);
    EXPECT_GE(t_edram, t_hbm);
    EXPECT_GT(t_dram, t_hbm); // strictly better end to end
}

TEST(ExecModel, BatchingAmortizesWeightLoad)
{
    ExecConfig b1;
    b1.batch = 1;
    ExecConfig b16;
    b16.batch = 16;
    const Network vgg = make_vgg16();
    const RunResult r1 = model(b1).run(vgg);
    const RunResult r16 = model(b16).run(vgg);
    EXPECT_LT(r16.time.weightLoad, r1.time.weightLoad / 10.0);
    EXPECT_LT(r16.secondsPerInference(), r1.secondsPerInference());
}

TEST(ExecModel, SystolicOverlapHidesInputLoad)
{
    ExecConfig with;
    with.batch = 16;
    with.systolicOverlap = true;
    ExecConfig without = with;
    without.systolicOverlap = false;

    const Network vgg = make_vgg16();
    const RunResult r_with = model(with).run(vgg);
    const RunResult r_without = model(without).run(vgg);
    EXPECT_LT(r_with.time.inputLoad, r_without.time.inputLoad);
    EXPECT_LT(r_with.secondsPerInference(),
              r_without.secondsPerInference());
}

TEST(ExecModel, MixedPrecisionCutsExecutionTime)
{
    // Fig. 14: layer-wise 4/8-bit precision halves the execution time
    // of the 8-bit VGG-16 run.
    Network mixed = make_vgg16();
    apply_mixed_precision(mixed);

    ExecConfig cfg;
    cfg.memory = MainMemoryKind::HBM; // expose compute, not the channel
    cfg.batch = 16;
    const double t8 = model(cfg).run(make_vgg16()).time.compute;
    const double tmix = model(cfg).run(mixed).time.compute;
    EXPECT_LT(tmix, 0.75 * t8);
    EXPECT_GT(tmix, 0.35 * t8);
}

TEST(ExecModel, LstmRunsInFractionOfMillisecond)
{
    // Table III: BFree executes the 300-step LSTM-1024 in 0.43 ms.
    const RunResult r = model().run(make_lstm());
    EXPECT_GT(r.secondsPerInference(), 0.1e-3);
    EXPECT_LT(r.secondsPerInference(), 1.5e-3);
}

TEST(ExecModel, BertBaseBatchOneIsWeightLoadBound)
{
    const RunResult r = model().run(make_bert_base());
    // ~87 MB over 20 GB/s dominates (paper: 5.3 ms total).
    EXPECT_GT(r.time.weightLoad, 0.5 * r.secondsPerInference());
    EXPECT_GT(r.secondsPerInference(), 2e-3);
    EXPECT_LT(r.secondsPerInference(), 10e-3);
}

TEST(ExecModel, BertBaseBatchSixteenNearPaper)
{
    ExecConfig cfg;
    cfg.batch = 16;
    const RunResult r = model(cfg).run(make_bert_base());
    // Paper: 1.2 ms per inference at batch 16.
    EXPECT_GT(r.secondsPerInference(), 0.3e-3);
    EXPECT_LT(r.secondsPerInference(), 3e-3);
}

TEST(ExecModel, BertLargeScalesWithWork)
{
    const double base =
        model().run(make_bert_base()).secondsPerInference();
    const double large =
        model().run(make_bert_large()).secondsPerInference();
    // ~3.6x the MACs and ~3.7x the weights.
    EXPECT_GT(large, 2.5 * base);
    EXPECT_LT(large, 5.5 * base);
}

TEST(ExecModel, EnergyBreakdownDominatedBySaAndBce)
{
    // Fig. 12(d): excluding DRAM, sub-array access + BCE dominate the
    // dynamic energy.
    const RunResult r = model().run(make_inception_v3());
    const auto &e = r.energy;
    const double dynamic =
        e.totalExcludingDram()
        - e.joules(bfree::mem::EnergyCategory::Leakage);
    const double sa_bce =
        e.joules(bfree::mem::EnergyCategory::SubarrayAccess)
        + e.joules(bfree::mem::EnergyCategory::BceCompute);
    EXPECT_GT(sa_bce, 0.70 * dynamic);
}

TEST(ExecModel, DramEnergyDominatesTotalForCnns)
{
    // "almost 80% of the energy is attributed to the weight loading
    // phase from DRAM" (Section V-D, batch 1).
    const RunResult r = model().run(make_inception_v3());
    const double dram =
        r.energy.joules(bfree::mem::EnergyCategory::DramTransfer);
    EXPECT_GT(dram, 0.20 * r.energy.total());
}

TEST(ExecModel, PhasesAreNonNegative)
{
    for (const Network &net :
         {make_vgg16(), make_inception_v3(), make_bert_base()}) {
        const RunResult r = model().run(net);
        for (const LayerResult &l : r.layers) {
            EXPECT_GE(l.time.weightLoad, 0.0) << l.name;
            EXPECT_GE(l.time.inputLoad, 0.0) << l.name;
            EXPECT_GE(l.time.compute, 0.0) << l.name;
            EXPECT_GE(l.time.special, 0.0) << l.name;
            EXPECT_GE(l.time.requant, 0.0) << l.name;
        }
    }
}

TEST(ExecModelDeath, ZeroBatchIsFatal)
{
    ExecConfig cfg;
    cfg.batch = 0;
    EXPECT_DEATH(model(cfg), "batch");
}
