/**
 * @file
 * The 2-D systolic grid: exact outputs per filter column, cycles match
 * the closed form, and the equivalence with a matrix multiply.
 */

#include <gtest/gtest.h>

#include <vector>

#include "map/detailed_slice_sim.hh"
#include "sim/random.hh"

using namespace bfree::map;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

struct GridCase
{
    unsigned rows;
    unsigned cols;
    unsigned slice_len;
    unsigned waves;
    unsigned bits;
};

class GridSweep : public ::testing::TestWithParam<GridCase>
{};

using Weights = std::vector<std::vector<std::vector<std::int8_t>>>;

std::int32_t
reference_output(const Weights &w, const std::vector<std::int8_t> &wave,
                 unsigned col, unsigned slice_len)
{
    std::int32_t acc = 0;
    for (std::size_t r = 0; r < w[col].size(); ++r)
        for (unsigned i = 0; i < slice_len; ++i)
            acc += std::int32_t(w[col][r][i]) * wave[r * slice_len + i];
    return acc;
}

} // namespace

TEST_P(GridSweep, OutputsAndCyclesMatchClosedForm)
{
    const GridCase p = GetParam();
    CacheGeometry geom;
    TechParams tech;
    DetailedSliceSim sim(geom, tech, p.rows, p.cols, p.slice_len,
                         p.bits);

    bfree::sim::Rng rng(500 + p.rows * 10 + p.cols);
    const int lo = p.bits == 4 ? -8 : -128;
    const int hi = p.bits == 4 ? 7 : 127;

    Weights weights(p.cols);
    for (auto &col : weights) {
        col.resize(p.rows);
        for (auto &slice : col) {
            slice.resize(p.slice_len);
            for (auto &w : slice)
                w = static_cast<std::int8_t>(rng.uniformInt(lo, hi));
        }
    }
    sim.loadWeights(weights);

    std::vector<std::vector<std::int8_t>> inputs(p.waves);
    for (auto &wave : inputs) {
        wave.resize(std::size_t(p.rows) * p.slice_len);
        for (auto &x : wave)
            x = static_cast<std::int8_t>(rng.uniformInt(lo, hi));
    }

    const DetailedGridResult r = sim.run(inputs);

    ASSERT_EQ(r.outputs.size(), p.cols);
    for (unsigned c = 0; c < p.cols; ++c) {
        ASSERT_EQ(r.outputs[c].size(), p.waves) << "column " << c;
        for (unsigned w = 0; w < p.waves; ++w)
            EXPECT_EQ(r.outputs[c][w],
                      reference_output(weights, inputs[w], c,
                                       p.slice_len))
                << "column " << c << " wave " << w;
    }

    EXPECT_EQ(r.cycles,
              detailed_grid_formula(p.rows, p.cols, p.waves,
                                    sim.cyclesPerStep(),
                                    tech.routerHopCycles));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GridSweep,
    ::testing::Values(GridCase{1, 1, 8, 2, 8},  // degenerate
                      GridCase{2, 3, 4, 3, 8},
                      GridCase{4, 4, 8, 5, 8},
                      GridCase{8, 6, 8, 4, 8},  // full sub-bank column
                      GridCase{3, 10, 5, 6, 8}, // wide filter bank
                      GridCase{4, 4, 8, 5, 4},  // 4-bit operands
                      GridCase{8, 2, 16, 8, 8}));

TEST(GridFormula, KnownValues)
{
    // 8 rows, 6 cols, 4 waves, 64 cps, 1-cycle hops:
    // 4*64 + (5 + 7) = 268.
    EXPECT_EQ(detailed_grid_formula(8, 6, 4, 64, 1), 268u);
    EXPECT_EQ(detailed_grid_formula(1, 1, 1, 10, 1), 10u);
    EXPECT_EQ(detailed_grid_formula(0, 3, 1, 10, 1), 0u);
}

TEST(Grid, EveryColumnProducesOneOutputPerWave)
{
    // The paper: "each column produces one element of output feature
    // map at every step".
    CacheGeometry geom;
    TechParams tech;
    DetailedSliceSim sim(geom, tech, 2, 4, 4, 8);

    Weights w(4, std::vector<std::vector<std::int8_t>>(
                     2, std::vector<std::int8_t>(4, 1)));
    sim.loadWeights(w);
    std::vector<std::vector<std::int8_t>> inputs(
        3, std::vector<std::int8_t>(8, 2));
    const DetailedGridResult r = sim.run(inputs);
    for (const auto &col : r.outputs) {
        ASSERT_EQ(col.size(), 3u);
        for (std::int32_t v : col)
            EXPECT_EQ(v, 16); // 8 ones x 2
    }
}

TEST(Grid, WiderGridTakesLongerOnlyByHops)
{
    CacheGeometry geom;
    TechParams tech;
    const std::uint64_t cps = 8; // slice_len 4, 8-bit -> 4*2

    auto run_grid = [&](unsigned cols) {
        DetailedSliceSim sim(geom, tech, 2, cols, 4, 8);
        Weights w(cols, std::vector<std::vector<std::int8_t>>(
                            2, std::vector<std::int8_t>(4, 1)));
        sim.loadWeights(w);
        std::vector<std::vector<std::int8_t>> inputs(
            4, std::vector<std::int8_t>(8, 1));
        return sim.run(inputs).cycles;
    };

    const std::uint64_t narrow = run_grid(2);
    const std::uint64_t wide = run_grid(6);
    EXPECT_EQ(wide - narrow, 4u); // 4 extra horizontal hops
    EXPECT_EQ(narrow, 4 * cps + 1 + 1);
}

TEST(Grid, ChargesRouterEnergyOnBothAxes)
{
    CacheGeometry geom;
    TechParams tech;
    DetailedSliceSim sim(geom, tech, 3, 3, 4, 8);
    Weights w(3, std::vector<std::vector<std::int8_t>>(
                     3, std::vector<std::int8_t>(4, 1)));
    sim.loadWeights(w);
    std::vector<std::vector<std::int8_t>> inputs(
        2, std::vector<std::int8_t>(12, 1));
    sim.run(inputs);
    EXPECT_GT(sim.energy().joules(bfree::mem::EnergyCategory::Router),
              0.0);
}

TEST(GridDeath, BadShapes)
{
    CacheGeometry geom;
    TechParams tech;
    EXPECT_DEATH(DetailedSliceSim(geom, tech, 0, 2, 4, 8), "rows");
    EXPECT_DEATH(DetailedSliceSim(geom, tech, 9, 2, 4, 8), "rows");
    EXPECT_DEATH(DetailedSliceSim(geom, tech, 2, 0, 4, 8), "column");
}
