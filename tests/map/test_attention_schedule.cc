/**
 * @file
 * K/Q/V overlap scheduling (Section IV-B2).
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "map/attention_schedule.hh"

using namespace bfree::map;
using namespace bfree::dnn;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

AttentionSchedule
schedule_for(unsigned seq, unsigned d)
{
    const Layer attn = make_attention("attn", seq, d, d / 64);
    Mapper mapper((CacheGeometry()));
    return schedule_attention(attn, mapper.map(attn), TechParams{});
}

} // namespace

TEST(AttentionSchedule, OverlapNeverSlower)
{
    for (unsigned seq : {32u, 128u, 512u}) {
        for (unsigned d : {256u, 768u, 1024u}) {
            const AttentionSchedule s = schedule_for(seq, d);
            EXPECT_LE(s.overlappedSeconds, s.serialSeconds)
                << seq << "x" << d;
            EXPECT_GT(s.savings(), 0.0) << seq << "x" << d;
        }
    }
}

TEST(AttentionSchedule, BertBaseSavesMeaningfulTime)
{
    const AttentionSchedule s = schedule_for(128, 768);
    // V overlaps the scores + softmax window: a few percent of the
    // block at BERT-base shapes (s << d), growing with sequence
    // length.
    EXPECT_GT(s.savings(), 0.02);
    EXPECT_LT(s.savings(), 0.60);
}

TEST(AttentionSchedule, PhasesArePositiveAndSumToSerial)
{
    const AttentionSchedule s = schedule_for(128, 768);
    const AttentionPhases &p = s.phases;
    for (double v : {p.qProjection, p.kProjection, p.vProjection,
                     p.scores, p.softmax, p.context, p.output})
        EXPECT_GT(v, 0.0);
    EXPECT_NEAR(s.serialSeconds, p.sum(), 1e-15);
}

TEST(AttentionSchedule, ProjectionsAreSymmetric)
{
    const AttentionSchedule s = schedule_for(128, 768);
    EXPECT_DOUBLE_EQ(s.phases.qProjection, s.phases.kProjection);
    EXPECT_DOUBLE_EQ(s.phases.qProjection, s.phases.vProjection);
}

TEST(AttentionSchedule, LongSequencesHideVCompletely)
{
    // The scores + softmax window grows with s^2 while V's projection
    // grows with s: once s exceeds d, V hides completely.
    const AttentionSchedule long_seq = schedule_for(1024, 256);
    EXPECT_TRUE(long_seq.vFullyHidden);
    const AttentionSchedule short_seq = schedule_for(32, 768);
    EXPECT_FALSE(short_seq.vFullyHidden);
}

TEST(AttentionSchedule, OverlapBoundedByComponents)
{
    const AttentionSchedule s = schedule_for(128, 1024);
    // The overlapped timeline can never beat the critical path of the
    // GEMMs alone.
    const double gemm_critical = 2.0 * s.phases.qProjection
                                 + s.phases.scores + s.phases.context
                                 + s.phases.output;
    EXPECT_GE(s.overlappedSeconds, gemm_critical - 1e-15);
}

TEST(AttentionScheduleDeath, RequiresAttentionLayer)
{
    Mapper mapper((CacheGeometry()));
    const Layer fc = make_fc("fc", 64, 64);
    EXPECT_DEATH(
        (void)schedule_attention(fc, mapper.map(fc), TechParams{}),
        "attention");
}
