/**
 * @file
 * Property sweeps over the execution model: scaling laws and
 * invariants that must hold for any layer, not just the zoo networks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "dnn/model_zoo.hh"
#include "map/exec_model.hh"
#include "sim/random.hh"

using namespace bfree::map;
using namespace bfree::dnn;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

/** A reproducible random conv/fc layer. */
Layer
random_layer(bfree::sim::Rng &rng)
{
    if (rng.uniformInt(0, 1) == 0) {
        const auto c = static_cast<unsigned>(rng.uniformInt(1, 64));
        const auto hw = static_cast<unsigned>(rng.uniformInt(7, 64));
        const auto k = static_cast<unsigned>(rng.uniformInt(1, 3)) * 2
                       - 1; // 1, 3, 5
        const auto out = static_cast<unsigned>(rng.uniformInt(1, 128));
        const auto stride =
            static_cast<unsigned>(rng.uniformInt(1, 2));
        return make_conv("rand_conv", {c, hw, hw}, out, k, stride,
                         k / 2);
    }
    Layer fc = make_fc("rand_fc",
                       static_cast<unsigned>(rng.uniformInt(16, 4096)),
                       static_cast<unsigned>(rng.uniformInt(16, 4096)));
    fc.fcRows = static_cast<unsigned>(rng.uniformInt(1, 128));
    return fc;
}

double
run_layer_seconds(const Layer &layer, unsigned slices, unsigned batch)
{
    Network net("probe", layer.input);
    net.add(layer);
    ExecConfig cfg;
    cfg.batch = batch;
    cfg.mapper.slices = slices;
    ExecutionModel model(CacheGeometry{}, TechParams{}, cfg);
    return model.run(net).secondsPerInference();
}

} // namespace

TEST(ExecProperties, MoreSlicesNeverSlower)
{
    bfree::sim::Rng rng(1001);
    for (int trial = 0; trial < 20; ++trial) {
        const Layer l = random_layer(rng);
        const double t1 = run_layer_seconds(l, 1, 1);
        const double t7 = run_layer_seconds(l, 7, 1);
        const double t14 = run_layer_seconds(l, 14, 1);
        EXPECT_GE(t1 * 1.0001, t7) << l.name << " trial " << trial;
        EXPECT_GE(t7 * 1.0001, t14) << l.name << " trial " << trial;
    }
}

TEST(ExecProperties, TimesAreFiniteAndPositive)
{
    bfree::sim::Rng rng(1002);
    for (int trial = 0; trial < 30; ++trial) {
        const Layer l = random_layer(rng);
        const double t = run_layer_seconds(l, 14, 1);
        EXPECT_TRUE(std::isfinite(t)) << l.name;
        EXPECT_GT(t, 0.0) << l.name;
    }
}

TEST(ExecProperties, BatchAmortizationIsMonotonic)
{
    bfree::sim::Rng rng(1003);
    for (int trial = 0; trial < 15; ++trial) {
        const Layer l = random_layer(rng);
        // Batch 1 keeps intermediates in SRAM; from batch 2 onward the
        // spill cost is constant and amortization must be monotonic.
        double prev = run_layer_seconds(l, 14, 2);
        for (unsigned batch : {4u, 8u, 16u}) {
            const double t = run_layer_seconds(l, 14, batch);
            EXPECT_LE(t, prev * 1.0001)
                << l.name << " batch " << batch;
            prev = t;
        }
    }
}

TEST(ExecProperties, EnergyScalesWithWorkNotConfiguration)
{
    // Doubling a FC layer's rows roughly doubles its dynamic MAC
    // energy contribution.
    Layer fc = make_fc("fc", 1024, 1024);
    fc.fcRows = 8;
    Network small("s", fc.input);
    small.add(fc);
    fc.fcRows = 16;
    Network large("l", fc.input);
    large.add(fc);

    ExecutionModel model(CacheGeometry{}, TechParams{}, ExecConfig{});
    const double e_small =
        model.run(small).energy.joules(
            bfree::mem::EnergyCategory::SubarrayAccess);
    const double e_large =
        model.run(large).energy.joules(
            bfree::mem::EnergyCategory::SubarrayAccess);
    EXPECT_NEAR(e_large / e_small, 2.0, 0.25);
}

TEST(ExecProperties, LayerTimesSumAcrossArbitraryNetworks)
{
    bfree::sim::Rng rng(1004);
    Network net("random", {3, 32, 32});
    for (int i = 0; i < 10; ++i)
        net.add(random_layer(rng));

    ExecutionModel model(CacheGeometry{}, TechParams{}, ExecConfig{});
    const RunResult r = model.run(net);
    double sum = 0.0;
    for (const LayerResult &l : r.layers)
        sum += l.time.total();
    EXPECT_NEAR(r.secondsPerInference(), sum, sum * 1e-12);
}

TEST(ExecProperties, FourBitNeverSlowerThanEightBit)
{
    bfree::sim::Rng rng(1005);
    for (int trial = 0; trial < 15; ++trial) {
        Layer l = random_layer(rng);
        l.precisionBits = 8;
        Network n8("n8", l.input);
        n8.add(l);
        l.precisionBits = 4;
        Network n4("n4", l.input);
        n4.add(l);

        ExecutionModel model(CacheGeometry{}, TechParams{},
                             ExecConfig{});
        EXPECT_LE(model.run(n4).secondsPerInference(),
                  model.run(n8).secondsPerInference() * 1.0001)
            << l.name;
    }
}

TEST(ExecProperties, NonOverlapIsAnUpperBound)
{
    bfree::sim::Rng rng(1006);
    for (int trial = 0; trial < 10; ++trial) {
        const Layer l = random_layer(rng);
        Network net("probe", l.input);
        net.add(l);
        ExecConfig on;
        on.batch = 16;
        ExecConfig off = on;
        off.systolicOverlap = false;
        ExecutionModel m_on(CacheGeometry{}, TechParams{}, on);
        ExecutionModel m_off(CacheGeometry{}, TechParams{}, off);
        EXPECT_LE(m_on.run(net).secondsPerInference(),
                  m_off.run(net).secondsPerInference() * 1.0001)
            << l.name;
    }
}
