/**
 * @file
 * Kernel compilation: opcode lowering, MAC conservation, LUT image
 * fit, config-block consistency, and the full configuration round trip
 * through the cache controller.
 */

#include <gtest/gtest.h>

#include "dnn/model_zoo.hh"
#include "map/controllers.hh"
#include "map/kernel_compiler.hh"

using namespace bfree::map;
using namespace bfree::dnn;
using namespace bfree::bce;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

KernelCompiler
compiler()
{
    return KernelCompiler((CacheGeometry()));
}

} // namespace

TEST(OpcodeLowering, EveryLayerKindMaps)
{
    EXPECT_EQ(opcode_for(make_fc("f", 8, 8), ExecMode::MatmulMode),
              PimOpcode::Matmul);
    EXPECT_EQ(opcode_for(make_conv("c", {1, 8, 8}, 1, 3, 1, 1),
                         ExecMode::ConvMode),
              PimOpcode::Conv);
    EXPECT_EQ(opcode_for(make_conv("c", {1, 8, 8}, 1, 3, 1, 1),
                         ExecMode::MatmulMode),
              PimOpcode::Matmul);
    EXPECT_EQ(opcode_for(make_pool("p", LayerKind::AvgPool, {1, 8, 8},
                                   2, 2),
                         ExecMode::SpecialMode),
              PimOpcode::AvgPool);
    EXPECT_EQ(
        opcode_for(make_activation("s", LayerKind::Sigmoid, {8, 1, 1}),
                   ExecMode::SpecialMode),
        PimOpcode::Sigmoid);
    EXPECT_EQ(opcode_for(make_layer_norm("ln", 8, 8),
                         ExecMode::SpecialMode),
              PimOpcode::LayerNorm);
}

TEST(KernelCompiler, MacConservationAcrossTheZoo)
{
    const KernelCompiler kc = compiler();
    for (const Network &net :
         {make_vgg16(), make_inception_v3(), make_lstm(),
          make_bert_base()}) {
        for (const Layer &layer : net.layers()) {
            const CompiledKernel k = kc.compile(layer);
            EXPECT_EQ(k.totalMacs(), layer.macs()) << layer.name;
        }
    }
}

TEST(KernelCompiler, AttentionLowersToSevenInstructions)
{
    const CompiledKernel k =
        compiler().compile(make_attention("attn", 128, 768, 12));
    // Q, K, V, scores, softmax, context, output projection.
    ASSERT_EQ(k.instructions.size(), 7u);
    EXPECT_EQ(k.instructions[4].opcode, PimOpcode::Softmax);
    EXPECT_EQ(k.instructions[0].rows, 128u);
    EXPECT_EQ(k.instructions[0].inner, 768u);
}

TEST(KernelCompiler, EveryLutImageFitsTheSubarrayRegion)
{
    const KernelCompiler kc = compiler();
    const CacheGeometry geom;
    for (const Network &net : {make_vgg16(), make_bert_base()}) {
        for (const Layer &layer : net.layers()) {
            const CompiledKernel k = kc.compile(layer);
            for (const auto &image : k.lutImages)
                EXPECT_TRUE(image.fits(geom.lutBytesPerSubarray()))
                    << layer.name << " " << image.name;
        }
    }
}

TEST(KernelCompiler, SoftmaxNeedsTwoConfigPhases)
{
    const CompiledKernel k = compiler().compile(
        make_activation("sm", LayerKind::Softmax, {1000, 1, 1}));
    ASSERT_EQ(k.lutImages.size(), 2u);
    EXPECT_NE(k.lutImages[0].name.find("exp"), std::string::npos);
    EXPECT_NE(k.lutImages[1].name.find("recip"), std::string::npos);
}

TEST(KernelCompiler, ReluNeedsNoTable)
{
    const CompiledKernel k = compiler().compile(
        make_activation("r", LayerKind::Relu, {64, 8, 8}));
    EXPECT_TRUE(k.lutImages.empty());
}

TEST(KernelCompiler, ConfigBlockMatchesMapping)
{
    const Layer fc = make_fc("fc", 4096, 4096);
    const CompiledKernel k = compiler().compile(fc);
    EXPECT_EQ(k.configBlock.opcode, PimOpcode::Matmul);
    EXPECT_EQ(k.configBlock.precisionBits, 8u);
    EXPECT_GT(k.configBlock.endRow, k.configBlock.startRow);
    EXPECT_GT(k.totalSteps, 0u);
    EXPECT_EQ(k.configBlock.iterations,
              std::min<std::uint64_t>(k.totalSteps, 0xFFFF));
}

TEST(KernelCompiler, StepsShrinkWithFourBitPrecision)
{
    // A batched FC (independent rows available for duplication): at
    // 4-bit the doubled MAC rate shows up as fewer steps. A pure
    // matvec (fcRows = 1) would instead halve its tile count at the
    // same step count — also correct, but not what this test probes.
    Layer fc = make_fc("fc", 2048, 2048);
    fc.fcRows = 64;
    const std::uint64_t steps8 = compiler().compile(fc).totalSteps;
    fc.precisionBits = 4;
    const std::uint64_t steps4 = compiler().compile(fc).totalSteps;
    EXPECT_LT(steps4, steps8);
}

TEST(KernelCompiler, EndToEndThroughTheController)
{
    // Compile a kernel and run the real configuration phase against
    // the cache model; the CB every BCE would decode must match.
    CacheGeometry geom;
    geom.numSlices = 1;
    geom.banksPerSlice = 2;
    geom.subBanksPerBank = 1;
    geom.subarraysPerSubBank = 4;
    TechParams tech;

    bfree::mem::SramCache cache(geom, tech);
    bfree::mem::MainMemory memory(
        bfree::tech::main_memory_params(
            bfree::tech::MainMemoryKind::DRAM),
        cache.energy());
    CacheController controller(cache, memory, tech);

    MapperOptions opts;
    opts.slices = 1;
    KernelCompiler kc(geom, opts);
    const CompiledKernel k = kc.compile(make_fc("fc", 64, 64));

    const ConfigPhaseResult r = controller.configureKernel(k);
    EXPECT_GT(r.total(), 0.0);

    const unsigned active = std::min(
        std::max(1u, k.mapping.activeSubarrays), cache.numSubarrays());
    for (unsigned i = 0; i < active; ++i)
        EXPECT_EQ(controller.readConfig(i), k.configBlock) << i;

    // The multiply table landed in the LUT rows.
    EXPECT_EQ(cache.subarray(0).lutRead(0), 9u); // 3 x 3
}

TEST(KernelCompiler, SpecialLayersGetElementwiseInstructions)
{
    const Layer pool =
        make_pool("p", LayerKind::MaxPool, {64, 56, 56}, 2, 2);
    const CompiledKernel k = compiler().compile(pool);
    ASSERT_EQ(k.instructions.size(), 1u);
    EXPECT_EQ(k.instructions[0].opcode, PimOpcode::MaxPool);
    EXPECT_EQ(k.instructions[0].macs(), 0u);
    EXPECT_EQ(k.instructions[0].rows, pool.specialOps());
}
