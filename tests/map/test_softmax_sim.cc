/**
 * @file
 * Distributed softmax: accuracy against the exact softmax, chain
 * parallelism in the cycle model, and the Section IV-B2 claim that
 * more sub-arrays means more softmax parallelism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "map/softmax_sim.hh"
#include "sim/random.hh"

using namespace bfree::map;
using bfree::tech::CacheGeometry;
using bfree::tech::TechParams;

namespace {

std::vector<double>
exact_softmax(const std::vector<double> &logits)
{
    const double max_v =
        *std::max_element(logits.begin(), logits.end());
    std::vector<double> out(logits.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        out[i] = std::exp(logits[i] - max_v);
        denom += out[i];
    }
    for (double &v : out)
        v /= denom;
    return out;
}

} // namespace

TEST(DistributedSoftmax, MatchesExactSoftmax)
{
    DistributedSoftmax sm(CacheGeometry{}, TechParams{}, 8);
    bfree::sim::Rng rng(606);
    std::vector<double> logits(64);
    for (double &v : logits)
        v = rng.uniformReal(-4.0, 4.0);

    const SoftmaxRunResult r = sm.run(logits);
    const std::vector<double> expected = exact_softmax(logits);
    ASSERT_EQ(r.probabilities.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_NEAR(r.probabilities[i], expected[i], 0.01) << i;
}

TEST(DistributedSoftmax, SumsToOne)
{
    DistributedSoftmax sm(CacheGeometry{}, TechParams{}, 4);
    bfree::sim::Rng rng(607);
    std::vector<double> logits(100);
    for (double &v : logits)
        v = rng.uniformReal(-3.0, 3.0);
    const SoftmaxRunResult r = sm.run(logits);
    const double sum = std::accumulate(r.probabilities.begin(),
                                       r.probabilities.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 0.03);
}

TEST(DistributedSoftmax, ResultIndependentOfChainLength)
{
    // The distribution of elements over sub-arrays must not change the
    // math, only the timing.
    bfree::sim::Rng rng(608);
    std::vector<double> logits(48);
    for (double &v : logits)
        v = rng.uniformReal(-2.0, 2.0);

    const SoftmaxRunResult one =
        DistributedSoftmax(CacheGeometry{}, TechParams{}, 1)
            .run(logits);
    const SoftmaxRunResult eight =
        DistributedSoftmax(CacheGeometry{}, TechParams{}, 8)
            .run(logits);
    ASSERT_EQ(one.probabilities.size(), eight.probabilities.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(one.probabilities[i], eight.probabilities[i],
                    1e-12);
    EXPECT_NEAR(one.denominator, eight.denominator, 1e-12);
}

TEST(DistributedSoftmax, MoreNodesFewerCycles)
{
    // "This denominator is redistributed to all the sub-arrays
    // (increased parallelism)".
    const std::size_t len = 1024;
    std::uint64_t prev = ~0ull;
    for (unsigned nodes : {1u, 2u, 4u, 8u}) {
        const std::uint64_t cycles =
            softmax_chain_cycles(nodes, len, 1);
        EXPECT_LT(cycles, prev) << nodes;
        prev = cycles;
    }
}

TEST(DistributedSoftmax, CycleFormula)
{
    // 8 nodes, 64 elements: 8 per node -> 2*8 exp + 7 + 7 + 4*8 = 62.
    EXPECT_EQ(softmax_chain_cycles(8, 64, 1), 62u);
    // Single node: no hops.
    EXPECT_EQ(softmax_chain_cycles(1, 10, 1), 6u * 10u);
    EXPECT_EQ(softmax_chain_cycles(4, 0, 1), 0u);
}

TEST(DistributedSoftmax, RunReportsTheFormulaCycles)
{
    DistributedSoftmax sm(CacheGeometry{}, TechParams{}, 8);
    std::vector<double> logits(64, 0.5);
    const SoftmaxRunResult r = sm.run(logits);
    EXPECT_EQ(r.cycles, softmax_chain_cycles(8, 64, 1));
}

TEST(DistributedSoftmax, PreservesArgmaxOnAttentionScores)
{
    // The operation it serves in BERT: a row of attention scores.
    DistributedSoftmax sm(CacheGeometry{}, TechParams{}, 8);
    bfree::sim::Rng rng(609);
    std::vector<double> scores(128);
    for (double &v : scores)
        v = rng.uniformReal(-1.0, 1.0);
    scores[37] = 3.5; // clear winner

    const SoftmaxRunResult r = sm.run(scores);
    const auto argmax =
        std::max_element(r.probabilities.begin(),
                         r.probabilities.end())
        - r.probabilities.begin();
    EXPECT_EQ(argmax, 37);
}

TEST(DistributedSoftmaxDeath, BadChainLength)
{
    EXPECT_DEATH(
        DistributedSoftmax(CacheGeometry{}, TechParams{}, 0),
        "chain length");
    EXPECT_DEATH(
        DistributedSoftmax(CacheGeometry{}, TechParams{}, 9),
        "chain length");
}
