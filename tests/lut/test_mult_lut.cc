/**
 * @file
 * The 49-entry odd x odd multiply table (Fig. 5).
 */

#include <gtest/gtest.h>

#include "lut/mult_lut.hh"

using namespace bfree::lut;

TEST(MultLut, Has49Entries)
{
    MultLut lut;
    EXPECT_EQ(lut.entries(), 49u);
    EXPECT_EQ(lut.raw().size(), 49u);
}

TEST(MultLut, TableOperandsAreOddAndAtLeastThree)
{
    EXPECT_FALSE(MultLut::isTableOperand(0));
    EXPECT_FALSE(MultLut::isTableOperand(1)); // trivial multiply
    EXPECT_FALSE(MultLut::isTableOperand(2)); // power of two
    EXPECT_TRUE(MultLut::isTableOperand(3));
    EXPECT_FALSE(MultLut::isTableOperand(4));
    EXPECT_TRUE(MultLut::isTableOperand(15));
    EXPECT_FALSE(MultLut::isTableOperand(16));
    EXPECT_FALSE(MultLut::isTableOperand(6)); // even composite
}

TEST(MultLut, OperandIndexing)
{
    EXPECT_EQ(MultLut::operandIndex(3), 0u);
    EXPECT_EQ(MultLut::operandIndex(5), 1u);
    EXPECT_EQ(MultLut::operandIndex(15), 6u);
}

TEST(MultLut, AllStoredProductsAreExact)
{
    MultLut lut;
    for (unsigned a = 3; a <= 15; a += 2)
        for (unsigned b = 3; b <= 15; b += 2)
            EXPECT_EQ(lut.lookup(a, b), a * b)
                << a << " x " << b;
}

TEST(MultLut, TableIsSymmetric)
{
    MultLut lut;
    for (unsigned a = 3; a <= 15; a += 2)
        for (unsigned b = 3; b <= 15; b += 2)
            EXPECT_EQ(lut.lookup(a, b), lut.lookup(b, a));
}

TEST(MultLut, MaxEntryFitsOneByte)
{
    MultLut lut;
    EXPECT_EQ(lut.lookup(15, 15), 225u);
    for (std::uint8_t v : lut.raw())
        EXPECT_LE(v, 225u);
}

TEST(MultLutVariants, StorageCosts)
{
    const auto variants = mult_lut_variants();
    EXPECT_EQ(variants[0].entries, 256u); // naive full table
    EXPECT_EQ(variants[1].entries, 49u);  // the paper's design
    EXPECT_EQ(variants[2].entries, 28u);  // triangular (Section III-C1:
                                          // "reduced by half" option)
    EXPECT_LT(variants[1].entries, variants[0].entries);
    EXPECT_LT(variants[2].entries, variants[1].entries);
}

TEST(MultLutDeath, NonTableOperandPanics)
{
    MultLut lut;
    EXPECT_DEATH((void)lut.lookup(2, 3), "not stored");
    EXPECT_DEATH((void)lut.lookup(3, 6), "not stored");
}
