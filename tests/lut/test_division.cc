/**
 * @file
 * LUT division (Hung et al. reciprocal method, paper Equation 1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "lut/division.hh"
#include "sim/random.hh"

using namespace bfree::lut;

TEST(DivisionLut, TableSizeIsTwoToTheM)
{
    EXPECT_EQ(DivisionLut(4).entries(), 16u);
    EXPECT_EQ(DivisionLut(6).entries(), 64u);
    EXPECT_EQ(DivisionLut(4).raw().size(), 16u);
}

TEST(DivisionLut, ExactOnPowersOfTwo)
{
    DivisionLut div(4);
    EXPECT_NEAR(div.divide(8.0, 2.0), 4.0, 4.0 * div.errorBound());
    EXPECT_NEAR(div.divide(1.0, 4.0), 0.25, 0.25 * div.errorBound());
}

TEST(DivisionLut, ZeroNumerator)
{
    DivisionLut div(4);
    EXPECT_DOUBLE_EQ(div.divide(0.0, 3.7), 0.0);
}

/** Relative error stays within the analytical bound across ranges. */
class DivisionErrorSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(DivisionErrorSweep, RelativeErrorWithinBound)
{
    const unsigned m = GetParam();
    DivisionLut div(m);
    const double bound = div.errorBound() * 2.0 + 1e-6;
    bfree::sim::Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.uniformReal(1e-3, 1e4);
        const double y = rng.uniformReal(1e-3, 1e4);
        const double got = div.divide(x, y);
        const double expected = x / y;
        EXPECT_NEAR(got, expected, expected * bound)
            << x << " / " << y << " (m=" << m << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(TableWidths, DivisionErrorSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

TEST(DivisionLut, ErrorBoundShrinksWithM)
{
    EXPECT_GT(DivisionLut(2).errorBound(), DivisionLut(4).errorBound());
    EXPECT_GT(DivisionLut(4).errorBound(), DivisionLut(6).errorBound());
}

TEST(DivisionLut, PaperDesignPointIsAccurateEnough)
{
    // m = 4 gives ~0.4% worst-case error: good enough for average
    // pooling and softmax normalization.
    DivisionLut div(4);
    EXPECT_LT(div.errorBound(), 0.005);
}

TEST(DivisionLut, IntegerDivision)
{
    DivisionLut div(5);
    EXPECT_NEAR(div.divideInt(100, 4), 25, 1);
    EXPECT_NEAR(div.divideInt(144, 9), 16, 1);
    EXPECT_NEAR(div.divideInt(1000000, 1000), 1000, 12);
    EXPECT_EQ(div.divideInt(0, 7), 0);
}

TEST(DivisionLut, AveragePoolingWindows)
{
    // The operation average pooling actually performs: sum / count for
    // common window sizes.
    DivisionLut div(4);
    for (int count : {4, 9, 25, 49, 64}) {
        const double sum = 1234.0;
        EXPECT_NEAR(div.divide(sum, count), sum / count,
                    sum / count * 0.02);
    }
}

TEST(DivisionLut, CountsMicroOps)
{
    DivisionLut div(4);
    MicroOpCounts counts;
    div.divide(10.0, 3.0, &counts);
    EXPECT_EQ(counts.lutLookups, 1u); // one reciprocal fetch
    EXPECT_GT(counts.cycles, 0u);
    EXPECT_GT(counts.romLookups, 0u); // datapath multiplies
}

/**
 * Dense operand sweep: every Y mantissa on a fine grid, across many
 * binades of X and Y, must obey the Hung identity's analytic relative
 * error bound |X/Y - X(Yh-Yl)/Yh^2| / (X/Y) = (Yl/Yh)^2 <= 2^-2m (plus
 * the Q12 table rounding folded into errorBound()).
 */
TEST(DivisionLutBounds, DenseMantissaSweepWithinAnalyticBound)
{
    for (unsigned m : {2u, 4u, 6u}) {
        const DivisionLut div(m);
        const double bound = div.errorBound() * 2.0 + 1e-9;
        for (int step = 0; step < 512; ++step) {
            const double fy = 1.0 + step / 512.0; // Y mantissa in [1, 2)
            for (int ey : {-7, -1, 0, 1, 9}) {
                const double y = std::ldexp(fy, ey);
                for (double fx : {1.0, 1.3125, 1.75, 1.9999}) {
                    for (int ex : {-3, 0, 5}) {
                        const double x = std::ldexp(fx, ex);
                        const double expected = x / y;
                        const double got = div.divide(x, y);
                        ASSERT_NEAR(got, expected, expected * bound)
                            << x << " / " << y << " (m=" << m << ")";
                    }
                }
            }
        }
    }
}

/**
 * Y normalization edge cases at the [1, 2) boundaries: exact powers of
 * two (mantissa exactly 1.0, the first table entry) and divisors one
 * ulp below a power of two (mantissa 2 - ulp, the last table entry).
 */
TEST(DivisionLutBounds, NormalizationBoundaryOperands)
{
    const DivisionLut div(4);
    const double bound = div.errorBound() * 2.0 + 1e-9;
    for (int k = -8; k <= 8; ++k) {
        const double pow2 = std::ldexp(1.0, k);
        const double below = std::nextafter(pow2, 0.0); // mantissa 2-ulp
        const double above = std::nextafter(pow2, 1e30);
        for (double y : {pow2, below, above}) {
            for (double x : {1.0, 3.7, 1000.0}) {
                const double expected = x / y;
                ASSERT_NEAR(div.divide(x, y), expected, expected * bound)
                    << x << " / " << y;
            }
        }
    }
}

/**
 * Binade invariance: normalization strips powers of two before the
 * table, so scaling either operand by 2^k must scale the result by
 * exactly 2^±k — bit-exact, not approximately.
 */
TEST(DivisionLutBounds, BinadeShiftsAreExact)
{
    const DivisionLut div(4);
    bfree::sim::Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.uniformReal(1.0, 2.0);
        const double y = rng.uniformReal(1.0, 2.0);
        const double base = div.divide(x, y);
        for (int k : {-12, -3, 1, 7, 20}) {
            EXPECT_EQ(div.divide(std::ldexp(x, k), y),
                      std::ldexp(base, k))
                << x << " " << y << " " << k;
            EXPECT_EQ(div.divide(x, std::ldexp(y, k)),
                      std::ldexp(base, -k))
                << x << " " << y << " " << k;
        }
    }
}

/** The worst observed error should actually approach the bound's order
 *  of magnitude — otherwise the bound test is vacuous. */
TEST(DivisionLutBounds, BoundIsTightWithinAFactorOfFour)
{
    const DivisionLut div(4);
    double worst = 0.0;
    for (int step = 0; step < 4096; ++step) {
        const double y = 1.0 + step / 4096.0;
        const double got = div.divide(1.5, y);
        worst = std::max(worst, std::abs(got - 1.5 / y) / (1.5 / y));
    }
    EXPECT_GT(worst, div.errorBound() / 4.0);
    EXPECT_LT(worst, div.errorBound() * 2.0);
}

TEST(DivisionLutDeath, RejectsNonPositiveDivisor)
{
    DivisionLut div(4);
    EXPECT_DEATH((void)div.divide(1.0, 0.0), "y > 0");
    EXPECT_DEATH((void)div.divide(-1.0, 2.0), "x >= 0");
}

TEST(DivisionLutDeath, RejectsBadTableWidth)
{
    EXPECT_DEATH(DivisionLut(1), "index width");
    EXPECT_DEATH(DivisionLut(9), "index width");
}
