/**
 * @file
 * Exhaustive differential test of the LUT multiply path.
 *
 * The operand analyzer + 49-entry odd-odd ROM claim to be EXACT for
 * every signed operand pair at 4- and 8-bit precision. Spot checks are
 * not evidence of that; enumerating the whole space is. The spaces are
 * small enough to brute-force:
 *
 *   - 8-bit signed:   256 x 256 = 65,536 pairs,
 *   - 4-bit signed:    16 x 16  =    256 pairs,
 *   - 4-bit unsigned:  16 x 16  =    256 pairs (multiply_u4),
 *
 * each checked against plain integer multiplication, through both
 * lookup sources (sub-array LUT rows and the BCE's hardwired ROM).
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "lut/operand_analyzer.hh"

using namespace bfree::lut;

namespace {

class MultExhaustive : public ::testing::TestWithParam<LookupSource>
{
  protected:
    MultLut lut;
};

} // namespace

TEST_P(MultExhaustive, AllSigned8BitPairsExact)
{
    const LookupSource source = GetParam();
    for (int a = -128; a <= 127; ++a) {
        for (int b = -128; b <= 127; ++b) {
            const MultResult r = multiply_signed(a, b, 8, lut, source);
            ASSERT_EQ(r.product, std::int64_t(a) * std::int64_t(b))
                << a << " * " << b;
        }
    }
}

TEST_P(MultExhaustive, AllSigned4BitPairsExact)
{
    const LookupSource source = GetParam();
    for (int a = -8; a <= 7; ++a) {
        for (int b = -8; b <= 7; ++b) {
            const MultResult r = multiply_signed(a, b, 4, lut, source);
            ASSERT_EQ(r.product, std::int64_t(a) * std::int64_t(b))
                << a << " * " << b;
        }
    }
}

TEST_P(MultExhaustive, AllUnsigned4BitPairsExact)
{
    const LookupSource source = GetParam();
    for (unsigned a = 0; a <= 15; ++a) {
        for (unsigned b = 0; b <= 15; ++b) {
            const MultResult r = multiply_u4(a, b, lut, source);
            ASSERT_EQ(r.product, std::int64_t(a) * std::int64_t(b))
                << a << " * " << b;
        }
    }
}

/**
 * Micro-op accounting invariants over the full 4-bit space: zero/one
 * operands never touch a table; an odd-odd pair costs exactly one
 * lookup; the lookup lands in the selected source.
 */
TEST_P(MultExhaustive, MicroOpInvariantsOverFull4BitSpace)
{
    const LookupSource source = GetParam();
    for (unsigned a = 0; a <= 15; ++a) {
        for (unsigned b = 0; b <= 15; ++b) {
            const MultResult r = multiply_u4(a, b, lut, source);
            const std::uint64_t lookups =
                r.counts.lutLookups + r.counts.romLookups;
            if (a <= 1 || b <= 1) {
                ASSERT_EQ(lookups, 0u) << a << " * " << b;
            } else if (a % 2 == 1 && b % 2 == 1) {
                ASSERT_EQ(lookups, 1u) << a << " * " << b;
            }
            if (source == LookupSource::SubarrayLut)
                ASSERT_EQ(r.counts.romLookups, 0u) << a << " * " << b;
            else
                ASSERT_EQ(r.counts.lutLookups, 0u) << a << " * " << b;
        }
    }
}

/** 8-bit multiplies decompose into at most 4 nibble products. */
TEST_P(MultExhaustive, LookupCountBoundedByNibbleProducts)
{
    const LookupSource source = GetParam();
    for (int a = -128; a <= 127; ++a) {
        for (int b = -128; b <= 127; ++b) {
            const MultResult r = multiply_signed(a, b, 8, lut, source);
            ASSERT_LE(r.counts.lutLookups + r.counts.romLookups,
                      nibble_products(8))
                << a << " * " << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sources, MultExhaustive,
                         ::testing::Values(LookupSource::SubarrayLut,
                                           LookupSource::BceRom),
                         [](const auto &info) {
                             return info.param == LookupSource::SubarrayLut
                                        ? "SubarrayLut"
                                        : "BceRom";
                         });
