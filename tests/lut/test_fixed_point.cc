/**
 * @file
 * Quantization and gemmlowp requantization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "lut/fixed_point.hh"

using namespace bfree::lut;

TEST(QuantParams, RangeOfSignedBits)
{
    QuantParams qp;
    qp.bits = 8;
    EXPECT_EQ(qp.qmin(), -128);
    EXPECT_EQ(qp.qmax(), 127);
    qp.bits = 4;
    EXPECT_EQ(qp.qmin(), -8);
    EXPECT_EQ(qp.qmax(), 7);
}

TEST(Quantize, RoundTripWithinHalfScale)
{
    const QuantParams qp = choose_quant_params(-1.0, 1.0, 8);
    for (double v = -1.0; v <= 1.0; v += 0.01) {
        const std::int32_t q = quantize(v, qp);
        EXPECT_NEAR(dequantize(q, qp), v, qp.scale / 2 + 1e-9);
    }
}

TEST(Quantize, SaturatesOutOfRange)
{
    const QuantParams qp = choose_quant_params(-1.0, 1.0, 8);
    EXPECT_EQ(quantize(100.0, qp), qp.qmax());
    EXPECT_EQ(quantize(-100.0, qp), qp.qmin());
}

TEST(Quantize, ZeroIsExactlyRepresentable)
{
    // Required so zero padding quantizes without error.
    for (double lo : {-3.0, -0.5, 0.0}) {
        for (double hi : {0.0, 0.7, 5.0}) {
            if (lo == hi)
                continue;
            const QuantParams qp = choose_quant_params(lo, hi, 8);
            const std::int32_t q0 = quantize(0.0, qp);
            EXPECT_NEAR(dequantize(q0, qp), 0.0, qp.scale / 2 + 1e-12);
        }
    }
}

TEST(Quantize, FourBitIsCoarserThanEightBit)
{
    const QuantParams q8 = choose_quant_params(-2.0, 2.0, 8);
    const QuantParams q4 = choose_quant_params(-2.0, 2.0, 4);
    EXPECT_GT(q4.scale, q8.scale);
}

TEST(RequantScale, DecomposesMultiplier)
{
    for (double m : {0.001, 0.01, 0.3, 0.5, 0.999, 1.0}) {
        const RequantScale rs = compute_requant_scale(m);
        EXPECT_GE(rs.multiplier, 1 << 30);
        EXPECT_GE(rs.shift, 0);
        const double reconstructed =
            static_cast<double>(rs.multiplier) / (1LL << 31)
            / std::pow(2.0, rs.shift);
        EXPECT_NEAR(reconstructed, m, m * 1e-8);
    }
}

TEST(HighMul, MatchesWideArithmetic)
{
    const std::int32_t a = 123456789;
    const std::int32_t b = 1987654321;
    const std::int64_t wide = (static_cast<std::int64_t>(a) * b + (1LL << 30))
                              >> 31;
    EXPECT_EQ(saturating_rounding_doubling_high_mul(a, b),
              static_cast<std::int32_t>(wide));
}

TEST(HighMul, SaturatesTheOverflowCase)
{
    const std::int32_t min = std::numeric_limits<std::int32_t>::min();
    EXPECT_EQ(saturating_rounding_doubling_high_mul(min, min),
              std::numeric_limits<std::int32_t>::max());
}

TEST(RoundingShift, RoundsHalfAwayFromZero)
{
    // gemmlowp semantics: halves round away from zero.
    EXPECT_EQ(rounding_divide_by_pot(5, 1), 3);   // 2.5 -> 3
    EXPECT_EQ(rounding_divide_by_pot(4, 1), 2);
    EXPECT_EQ(rounding_divide_by_pot(-5, 1), -3); // -2.5 -> -3
    EXPECT_EQ(rounding_divide_by_pot(-4, 1), -2);
    EXPECT_EQ(rounding_divide_by_pot(7, 2), 2);   // 1.75 -> 2
    EXPECT_EQ(rounding_divide_by_pot(100, 0), 100);
}

/** Requantization matches the double-precision computation closely. */
class RequantizeSweep : public ::testing::TestWithParam<double>
{};

TEST_P(RequantizeSweep, MatchesDoubleReference)
{
    const double multiplier = GetParam();
    const RequantScale rs = compute_requant_scale(multiplier);
    for (std::int32_t acc = -100000; acc <= 100000; acc += 7919) {
        const std::int32_t got = requantize(acc, rs, 0, 8);
        const double expected = acc * multiplier;
        const auto clamped = std::clamp<double>(
            std::round(expected), -128.0, 127.0);
        EXPECT_NEAR(got, clamped, 1.0)
            << "acc=" << acc << " mult=" << multiplier;
    }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, RequantizeSweep,
                         ::testing::Values(0.0005, 0.002, 0.01, 0.05,
                                           0.25, 0.5, 0.9, 1.0));

TEST(Requantize, AppliesZeroPointAndSaturates)
{
    const RequantScale rs = compute_requant_scale(1.0);
    EXPECT_EQ(requantize(100, rs, 50, 8), 127); // 150 saturates
    EXPECT_EQ(requantize(10, rs, 5, 8), 15);
    EXPECT_EQ(requantize(-200, rs, 0, 8), -128);
}

TEST(Saturate, ClampsIntoRange)
{
    EXPECT_EQ(saturate(1000, -128, 127), 127);
    EXPECT_EQ(saturate(-1000, -128, 127), -128);
    EXPECT_EQ(saturate(5, -128, 127), 5);
}
