/**
 * @file
 * 4-bit packing: round trips, saturation, size accounting.
 */

#include <gtest/gtest.h>

#include "lut/packing.hh"
#include "sim/random.hh"

using namespace bfree::lut;

TEST(PackInt4, RoundTripsAllValues)
{
    std::vector<std::int8_t> values;
    for (int v = -8; v <= 7; ++v)
        values.push_back(static_cast<std::int8_t>(v));
    const auto packed = pack_int4(values);
    EXPECT_EQ(packed.size(), 8u);
    EXPECT_EQ(unpack_int4(packed, values.size()), values);
}

TEST(PackInt4, RandomRoundTrip)
{
    bfree::sim::Rng rng(77);
    for (int trial = 0; trial < 50; ++trial) {
        const auto n = static_cast<std::size_t>(rng.uniformInt(0, 257));
        std::vector<std::int8_t> values(n);
        for (auto &v : values)
            v = static_cast<std::int8_t>(rng.uniformInt(-8, 7));
        EXPECT_EQ(unpack_int4(pack_int4(values), n), values);
    }
}

TEST(PackInt4, OddLengthPadsHighNibble)
{
    const std::vector<std::int8_t> values = {3, -2, 7};
    const auto packed = pack_int4(values);
    EXPECT_EQ(packed.size(), 2u);
    // The pad nibble is zero.
    EXPECT_EQ(packed[1] >> 4, 0);
    EXPECT_EQ(unpack_int4(packed, 3), values);
}

TEST(PackInt4, HalvesStorage)
{
    EXPECT_EQ(packed_int4_bytes(100), 50u);
    EXPECT_EQ(packed_int4_bytes(101), 51u);
    EXPECT_EQ(packed_int4_bytes(0), 0u);
}

TEST(PackInt4, NibbleLayoutIsLittleFirst)
{
    const std::vector<std::int8_t> values = {1, 2};
    const auto packed = pack_int4(values);
    ASSERT_EQ(packed.size(), 1u);
    EXPECT_EQ(packed[0], 0x21);
}

TEST(PackInt4, NegativeValuesSignExtend)
{
    const std::vector<std::int8_t> values = {-1, -8};
    const auto unpacked = unpack_int4(pack_int4(values), 2);
    EXPECT_EQ(unpacked[0], -1);
    EXPECT_EQ(unpacked[1], -8);
}

TEST(SaturateInt4, Clamps)
{
    EXPECT_EQ(saturate_int4(100), 7);
    EXPECT_EQ(saturate_int4(-100), -8);
    EXPECT_EQ(saturate_int4(5), 5);
}

TEST(PackInt4Death, OutOfRangePanics)
{
    EXPECT_DEATH((void)pack_int4({100}), "4-bit range");
    EXPECT_DEATH((void)unpack_int4({0x12}, 3), "cannot hold");
}
