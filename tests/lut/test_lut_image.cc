/**
 * @file
 * LUT image serialization: everything a kernel needs fits the 64-byte
 * sub-array LUT region, and PWL tables round-trip losslessly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lut/lut_image.hh"
#include "tech/geometry.hh"

using namespace bfree::lut;

namespace {

constexpr std::size_t lut_region_bytes = 64;

} // namespace

TEST(LutImage, MultiplyTableFitsTheLutRegion)
{
    const LutImage image = serialize(MultLut{});
    EXPECT_EQ(image.size(), 49u);
    EXPECT_TRUE(image.fits(lut_region_bytes));
    EXPECT_EQ(image.name, "mult49");
    // Geometry agrees with the constant used here.
    EXPECT_EQ(bfree::tech::CacheGeometry{}.lutBytesPerSubarray(),
              lut_region_bytes);
}

TEST(LutImage, MultiplyBytesMatchTable)
{
    MultLut lut;
    const LutImage image = serialize(lut);
    for (unsigned i = 0; i < num_odd_operands; ++i)
        for (unsigned j = 0; j < num_odd_operands; ++j)
            EXPECT_EQ(image.bytes[i * num_odd_operands + j],
                      (3 + 2 * i) * (3 + 2 * j));
}

TEST(LutImage, DivisionTableFitsAtDesignPoint)
{
    const LutImage image = serialize(DivisionLut(4));
    EXPECT_EQ(image.size(), 32u); // 16 entries x 2 bytes
    EXPECT_TRUE(image.fits(lut_region_bytes));
}

TEST(LutImage, LargeDivisionTableDoesNotFit)
{
    const LutImage image = serialize(DivisionLut(8));
    EXPECT_FALSE(image.fits(lut_region_bytes));
}

TEST(LutImage, SixteenSegmentPwlFits)
{
    const LutImage image = serialize(make_sigmoid_table(16));
    EXPECT_EQ(image.size(), 64u); // 16 segments x 4 bytes
    EXPECT_TRUE(image.fits(lut_region_bytes));
}

TEST(LutImage, PwlRoundTripsThroughBytes)
{
    const PwlTable table = make_tanh_table(16);
    const unsigned frac = 12;
    const LutImage image = serialize(table, frac);
    const std::vector<PwlSegment> parsed = parse_pwl(image, frac);
    ASSERT_EQ(parsed.size(), table.raw().size());
    const double quantum = 1.0 / (1 << frac);
    for (std::size_t s = 0; s < parsed.size(); ++s) {
        EXPECT_NEAR(parsed[s].alpha, table.raw()[s].alpha, quantum);
        EXPECT_NEAR(parsed[s].beta, table.raw()[s].beta, quantum);
    }
}

TEST(LutImage, QuantizedPwlStillApproximatesWell)
{
    const PwlTable table = make_sigmoid_table(16);
    const unsigned frac = 12;
    const std::vector<PwlSegment> parsed =
        parse_pwl(serialize(table, frac), frac);

    // Evaluate through the quantized segments.
    auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
    const double width = 16.0 / 16;
    for (double x = -8.0; x <= 8.0; x += 0.05) {
        auto idx = static_cast<std::size_t>((x + 8.0) / width);
        idx = std::min(idx, parsed.size() - 1);
        const double y = parsed[idx].alpha * x + parsed[idx].beta;
        EXPECT_NEAR(y, sigmoid(x), 0.05) << x;
    }
}

TEST(LutImageDeath, MalformedPwlImagePanics)
{
    LutImage image;
    image.name = "broken";
    image.bytes = {1, 2, 3}; // not a multiple of 4
    EXPECT_DEATH((void)parse_pwl(image), "multiple of 4");
}
