/**
 * @file
 * Structure-of-arrays datapath tables: plane contents against the
 * operand analyzer, packed-delta round-trips, the productsExact fast
 * path flag and generation matching — the invariants the SIMD span
 * kernels consume without re-checking.
 */

#include <cstdint>

#include <gtest/gtest.h>

#include "lut/datapath_table.hh"
#include "lut/mult_lut.hh"
#include "lut/operand_analyzer.hh"

namespace {

using namespace bfree;

TEST(DatapathSoa, CoversExactlyFourAndEightBits)
{
    EXPECT_TRUE(lut::DatapathTable::coversBits(4));
    EXPECT_TRUE(lut::DatapathTable::coversBits(8));
    EXPECT_FALSE(lut::DatapathTable::coversBits(2));
    EXPECT_FALSE(lut::DatapathTable::coversBits(16));
}

TEST(DatapathSoa, RomTableMatchesAnalyzerOverFullDomain)
{
    const lut::MultLut rom;
    for (const unsigned bits : {4u, 8u}) {
        const lut::DatapathTable t =
            lut::build_rom_datapath_table(bits, rom);
        ASSERT_TRUE(t.valid());
        EXPECT_EQ(bits, t.bits());
        const std::int32_t half = std::int32_t{1} << (bits - 1);
        EXPECT_EQ(half, t.half());
        EXPECT_EQ(2u * static_cast<unsigned>(half) + 1, t.span());
        EXPECT_EQ(std::size_t{t.span()} * t.span(), t.entryCount());
        EXPECT_TRUE(t.countsRomLookups());

        for (std::int32_t a = -half; a <= half; ++a) {
            for (std::int32_t b = -half; b <= half; ++b) {
                const lut::MultResult r = lut::multiply_signed(
                    a, b, bits, rom, lut::LookupSource::BceRom);
                const lut::DatapathEntry e = t.at(a, b);
                ASSERT_EQ(r.product, e.product)
                    << a << " * " << b << " @ " << bits << " bits";
                EXPECT_EQ(r.counts.romLookups, e.romLookups);
                EXPECT_EQ(0u, e.lutLookups);
                EXPECT_EQ(r.counts.shifts, e.shifts);
                EXPECT_EQ(r.counts.adds, e.adds);
                EXPECT_EQ(r.counts.cycles, e.cycles);
            }
        }
    }
}

TEST(DatapathSoa, AsymmetricEndpointsAreMemoized)
{
    // The analyzer's signed domain is [-2^(bits-1), +2^(bits-1)] —
    // BOTH endpoints, although int8 can only represent the negative
    // one. The planes must cover the full square.
    const lut::MultLut rom;
    for (const unsigned bits : {4u, 8u}) {
        const lut::DatapathTable t =
            lut::build_rom_datapath_table(bits, rom);
        const std::int32_t half = t.half();
        for (const std::int32_t a : {-half, half}) {
            for (const std::int32_t b : {-half, half}) {
                EXPECT_EQ(a * b, t.at(a, b).product)
                    << "endpoint " << a << " * " << b;
                EXPECT_LT(t.index(a, b), t.entryCount());
            }
        }
        // Endpoint rows sit at the plane borders.
        EXPECT_EQ(0u, t.index(-half, -half));
        EXPECT_EQ(t.entryCount() - 1, t.index(half, half));
    }
}

TEST(DatapathSoa, RomProductsAreExact)
{
    // The hardwired ROM holds the pristine multiply image, so the
    // product plane must equal a*b everywhere — the precondition for
    // the kernels' widening-multiply fast path.
    const lut::MultLut rom;
    for (const unsigned bits : {4u, 8u}) {
        const lut::DatapathTable t =
            lut::build_rom_datapath_table(bits, rom);
        EXPECT_TRUE(t.productsExact());
        const std::int32_t half = t.half();
        const std::int32_t *products = t.products();
        for (std::int32_t a = -half; a <= half; ++a)
            for (std::int32_t b = -half; b <= half; ++b)
                ASSERT_EQ(a * b, products[t.index(a, b)]);
    }
}

TEST(DatapathSoa, PoisonedReferenceClearsProductsExact)
{
    // A reference that disagrees with a*b anywhere (a rewritten LUT
    // row) must drop the fast-path flag while the plane still serves
    // the poisoned value.
    const lut::DatapathTable t = lut::DatapathTable::build(
        4, [](std::int32_t a, std::int32_t b) {
            lut::MultResult r;
            r.product = (a == 3 && b == 2) ? 42 : a * b;
            r.counts.lutLookups = 1;
            return r;
        });
    EXPECT_FALSE(t.productsExact());
    EXPECT_FALSE(t.countsRomLookups());
    EXPECT_EQ(42, t.at(3, 2).product);
    EXPECT_EQ(-6, t.at(3, -2).product);
}

TEST(DatapathSoa, PackedDeltaRoundTripsEveryField)
{
    const lut::DatapathTable t = lut::DatapathTable::build(
        4, [](std::int32_t a, std::int32_t b) {
            lut::MultResult r;
            r.product = a * b;
            // Distinct per-field values keyed on the pair, so a
            // mis-shifted unpack cannot cancel out.
            r.counts.lutLookups = static_cast<unsigned>(a + 8) % 5;
            r.counts.shifts = static_cast<unsigned>(b + 8) % 7;
            r.counts.adds = static_cast<unsigned>(a + b + 16) % 11;
            r.counts.cycles = static_cast<unsigned>(a - b + 16) % 13;
            return r;
        });
    for (std::int32_t a = -8; a <= 8; ++a) {
        for (std::int32_t b = -8; b <= 8; ++b) {
            const lut::DatapathEntry e = t.at(a, b);
            EXPECT_EQ(static_cast<unsigned>(a + 8) % 5, e.lutLookups);
            EXPECT_EQ(static_cast<unsigned>(b + 8) % 7, e.shifts);
            EXPECT_EQ(static_cast<unsigned>(a + b + 16) % 11, e.adds);
            EXPECT_EQ(static_cast<unsigned>(a - b + 16) % 13, e.cycles);
        }
    }

    // The packed plane itself uses the documented byte positions.
    const std::uint32_t d = t.deltas()[t.index(3, 2)];
    EXPECT_EQ((3u + 8) % 5,
              (d >> lut::DatapathTable::delta_lookups_shift) & 0xFF);
    EXPECT_EQ((2u + 8) % 7,
              (d >> lut::DatapathTable::delta_shifts_shift) & 0xFF);
    EXPECT_EQ((3u + 2 + 16) % 11,
              (d >> lut::DatapathTable::delta_adds_shift) & 0xFF);
    EXPECT_EQ((3u - 2 + 16) % 13,
              (d >> lut::DatapathTable::delta_cycles_shift) & 0xFF);
}

TEST(DatapathSoa, RomTableIsHistogramExactWithUnitCyclesFactor)
{
    // The analyzer's counts are a pure function of the operand nibble
    // structure, so the 256-entry class collapse and its bilinear
    // feature fold must verify for both ROM precisions; ROM tables
    // charge one cycle per nibble-pair product (cyclesFactor 1).
    const lut::MultLut rom;
    for (const unsigned bits : {4u, 8u}) {
        const lut::DatapathTable t =
            lut::build_rom_datapath_table(bits, rom);
        EXPECT_TRUE(t.histogramExact());
        EXPECT_EQ(1u, t.cyclesFactor());

        // Every memoized delta collapses onto its class key.
        const std::int32_t half = t.half();
        const std::uint32_t *deltas = t.deltas();
        const std::uint32_t *pair = t.pairDeltas();
        for (std::int32_t a = -half; a <= half; ++a)
            for (std::int32_t b = -half; b <= half; ++b)
                ASSERT_EQ(pair[lut::DatapathTable::class_key(a, b)],
                          deltas[t.index(a, b)])
                    << a << " * " << b << " @ " << bits;
    }
}

TEST(DatapathSoa, ZeroCycleReferenceDerivesConvCyclesFactor)
{
    // Conv-style references charge cycles at the span level, not per
    // nibble pair: the factored fold must derive cyclesFactor 0 and
    // stay exact.
    const lut::MultLut rom;
    const lut::DatapathTable t = lut::DatapathTable::build(
        8, [&rom](std::int32_t a, std::int32_t b) {
            lut::MultResult r = lut::multiply_signed(
                a, b, 8, rom, lut::LookupSource::BceRom);
            r.counts.cycles = 0;
            return r;
        });
    EXPECT_TRUE(t.histogramExact());
    EXPECT_EQ(0u, t.cyclesFactor());
}

TEST(DatapathSoa, ValueDependentCountsClearHistogramExact)
{
    // adds = |a| differs between magnitudes 2 and 4 — one structural
    // class — so the class collapse cannot hold. The table must clear
    // the flag (forcing the kernels onto the delta-plane gather) and
    // still serve the arbitrary counts faithfully.
    const lut::DatapathTable t = lut::DatapathTable::build(
        4, [](std::int32_t a, std::int32_t b) {
            lut::MultResult r;
            r.product = a * b;
            r.counts.romLookups = 1;
            r.counts.adds = static_cast<std::uint64_t>(a < 0 ? -a : a);
            return r;
        });
    EXPECT_FALSE(t.histogramExact());
    EXPECT_TRUE(t.productsExact());
    EXPECT_EQ(2u, t.at(2, 1).adds);
    EXPECT_EQ(4u, t.at(-4, 1).adds);
}

TEST(DatapathSoa, ClassConsistentNonBilinearCountsClearHistogramExact)
{
    // Constant counts ARE a pure function of the class key, so the
    // collapse holds — but adds = 1 on zero operands defeats the
    // bilinear feature fold (p = 0 forces adds = 0). The second
    // verification stage must catch it.
    const lut::DatapathTable t = lut::DatapathTable::build(
        4, [](std::int32_t a, std::int32_t b) {
            lut::MultResult r;
            r.product = a * b;
            r.counts.romLookups = 0;
            r.counts.adds = 1;
            return r;
        });
    EXPECT_FALSE(t.histogramExact());
}

TEST(DatapathSoa, MatchesGenerationRequiresValidityAndEquality)
{
    lut::DatapathTable empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_FALSE(empty.matchesGeneration(0)); // invalid never matches

    const lut::MultLut rom;
    lut::DatapathTable t = lut::build_rom_datapath_table(8, rom);
    t.generation = 7;
    EXPECT_TRUE(t.matchesGeneration(7));
    EXPECT_FALSE(t.matchesGeneration(8)); // stale must be rejected
}

TEST(DatapathSoaDeath, MicroOpCountOverflowingItsByteIsFatal)
{
    EXPECT_DEATH(lut::DatapathTable::build(
                     4,
                     [](std::int32_t a, std::int32_t b) {
                         lut::MultResult r;
                         r.product = a * b;
                         r.counts.adds = 0x100; // does not fit a byte
                         return r;
                     }),
                 "overflows its packed byte");
}

TEST(DatapathSoaDeath, MixedLookupSourcesAreFatal)
{
    // One table memoizes one lookup source; a reference that books
    // both LUT-row and ROM reads would make the packed lookups byte
    // ambiguous.
    EXPECT_DEATH(lut::DatapathTable::build(
                     4,
                     [](std::int32_t a, std::int32_t b) {
                         lut::MultResult r;
                         r.product = a * b;
                         r.counts.lutLookups = (a > 0) ? 1 : 0;
                         r.counts.romLookups = (a > 0) ? 0 : 1;
                         return r;
                     }),
                 "mixes LUT-row and ROM lookups");
}

} // namespace
