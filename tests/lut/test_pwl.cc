/**
 * @file
 * Piecewise-linear activation tables (paper Equation 2) and softmax.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lut/pwl.hh"

using namespace bfree::lut;

TEST(PwlTable, InterpolatesEndpointsExactly)
{
    PwlTable t("square", [](double x) { return x * x; }, 0.0, 4.0, 4);
    // Segment endpoints are exact by construction.
    for (double x : {0.0, 1.0, 2.0, 3.0, 4.0})
        EXPECT_NEAR(t.evaluate(x), x * x, 1e-12);
}

TEST(PwlTable, ClampsOutOfRange)
{
    PwlTable t = make_sigmoid_table(32);
    EXPECT_NEAR(t.evaluate(100.0), 1.0, 1e-3);
    EXPECT_NEAR(t.evaluate(-100.0), 0.0, 1e-3);
}

/** Error decreases as segments increase, for all three functions. */
class PwlSegmentSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PwlSegmentSweep, SigmoidErrorBound)
{
    const unsigned segments = GetParam();
    PwlTable t = make_sigmoid_table(segments);
    const double err = t.maxAbsError(
        [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
    // Piecewise-linear error of a smooth function scales ~ width^2.
    const double width = 16.0 / segments;
    EXPECT_LT(err, 0.05 * width * width + 1e-6) << segments;
}

TEST_P(PwlSegmentSweep, TanhErrorBound)
{
    const unsigned segments = GetParam();
    PwlTable t = make_tanh_table(segments);
    const double err =
        t.maxAbsError([](double x) { return std::tanh(x); });
    const double width = 8.0 / segments;
    EXPECT_LT(err, 0.15 * width * width + 1e-6) << segments;
}

TEST_P(PwlSegmentSweep, ExpErrorBound)
{
    const unsigned segments = GetParam();
    PwlTable t = make_exp_table(segments);
    const double err =
        t.maxAbsError([](double x) { return std::exp(x); });
    const double width = 16.0 / segments;
    EXPECT_LT(err, 0.15 * width * width + 1e-6) << segments;
}

INSTANTIATE_TEST_SUITE_P(Segments, PwlSegmentSweep,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u));

/**
 * Analytic segment bounds (paper Equation 2 tables): an endpoint-
 * interpolating PWL approximation of a C^2 function obeys
 *
 *     max |f(x) - pwl(x)|  <=  h^2 / 8 * max |f''|
 *
 * over each segment of width h. The second-derivative maxima are
 * exp: 1 on [-16,0]; sigmoid: 1/(6*sqrt(3)); tanh: 4/(3*sqrt(3)).
 */
class PwlAnalyticBound : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PwlAnalyticBound, ExpWithinSegmentBound)
{
    const unsigned segments = GetParam();
    PwlTable t = make_exp_table(segments);
    const double h = 16.0 / segments;
    const double bound = h * h / 8.0 * 1.0; // max|exp''| = exp(0) = 1
    EXPECT_LE(t.maxAbsError([](double x) { return std::exp(x); }, 40000),
              bound + 1e-12)
        << segments;
}

TEST_P(PwlAnalyticBound, SigmoidWithinSegmentBound)
{
    const unsigned segments = GetParam();
    PwlTable t = make_sigmoid_table(segments);
    const double h = 16.0 / segments;
    const double bound = h * h / 8.0 / (6.0 * std::sqrt(3.0));
    EXPECT_LE(t.maxAbsError(
                  [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
                  40000),
              bound + 1e-12)
        << segments;
}

TEST_P(PwlAnalyticBound, TanhWithinSegmentBound)
{
    const unsigned segments = GetParam();
    PwlTable t = make_tanh_table(segments);
    const double h = 8.0 / segments;
    const double bound = h * h / 8.0 * 4.0 / (3.0 * std::sqrt(3.0));
    EXPECT_LE(t.maxAbsError([](double x) { return std::tanh(x); }, 40000),
              bound + 1e-12)
        << segments;
}

INSTANTIATE_TEST_SUITE_P(Segments, PwlAnalyticBound,
                         ::testing::Values(8u, 16u, 32u, 64u, 128u, 256u));

/** Quadratic convergence: doubling segments cuts the error ~4x. */
TEST(PwlAnalyticBound, ErrorConvergesQuadratically)
{
    auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
    double prev = make_sigmoid_table(8).maxAbsError(sigmoid, 40000);
    for (unsigned s : {16u, 32u, 64u, 128u}) {
        const double err = make_sigmoid_table(s).maxAbsError(sigmoid, 40000);
        EXPECT_LT(err, prev / 3.0) << s; // 4x in theory, 3x with slack
        prev = err;
    }
}

/** Design points vs 8-bit quantization noise: 32 segments keep the
 *  activation within one LSB of a [0,1] output, 64 within half an LSB —
 *  so the PWL table never dominates the quantization error budget. */
TEST(PwlAnalyticBound, DesignPointBeatsQuantizationNoise)
{
    auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
    EXPECT_LT(make_sigmoid_table(32).maxAbsError(sigmoid, 40000),
              1.0 / 255.0);
    EXPECT_LT(make_sigmoid_table(64).maxAbsError(sigmoid, 40000),
              0.5 / 255.0);
}

TEST(PwlTable, MoreSegmentsNeverWorse)
{
    auto sigmoid = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
    double prev = 1e9;
    for (unsigned s : {4u, 8u, 16u, 32u, 64u}) {
        const double err = make_sigmoid_table(s).maxAbsError(sigmoid);
        EXPECT_LE(err, prev * 1.05);
        prev = err;
    }
}

TEST(PwlTable, CountsMicroOps)
{
    PwlTable t = make_tanh_table(16);
    MicroOpCounts counts;
    t.evaluate(0.3, &counts);
    EXPECT_EQ(counts.lutLookups, 1u);
    EXPECT_EQ(counts.cycles, 2u);
}

TEST(LutSoftmax, SumsToOne)
{
    PwlTable exp_t = make_exp_table(64);
    DivisionLut div(6);
    const std::vector<double> logits = {1.0, 2.0, 3.0, 4.0, -1.0};
    const std::vector<double> probs = lut_softmax(logits, exp_t, div);
    const double sum =
        std::accumulate(probs.begin(), probs.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 0.05);
    for (double p : probs)
        EXPECT_GE(p, 0.0);
}

TEST(LutSoftmax, MatchesReferenceSoftmax)
{
    PwlTable exp_t = make_exp_table(128);
    DivisionLut div(6);
    const std::vector<double> logits = {0.3, -1.2, 2.5, 0.0, 1.1};
    const std::vector<double> probs = lut_softmax(logits, exp_t, div);

    // Reference.
    double max_v = *std::max_element(logits.begin(), logits.end());
    std::vector<double> expected(logits.size());
    double denom = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        expected[i] = std::exp(logits[i] - max_v);
        denom += expected[i];
    }
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(probs[i], expected[i] / denom, 0.02) << i;
}

TEST(LutSoftmax, PreservesArgmax)
{
    PwlTable exp_t = make_exp_table(32);
    DivisionLut div(4);
    const std::vector<double> logits = {0.1, 3.0, -2.0, 1.5};
    const std::vector<double> probs = lut_softmax(logits, exp_t, div);
    const auto argmax =
        std::max_element(probs.begin(), probs.end()) - probs.begin();
    EXPECT_EQ(argmax, 1);
}

TEST(LutSoftmax, EmptyInput)
{
    PwlTable exp_t = make_exp_table(8);
    DivisionLut div(4);
    EXPECT_TRUE(lut_softmax({}, exp_t, div).empty());
}

TEST(LutSoftmax, LargeNegativeLogitsUnderflowGracefully)
{
    PwlTable exp_t = make_exp_table(32);
    DivisionLut div(4);
    const std::vector<double> logits = {0.0, -50.0};
    const std::vector<double> probs = lut_softmax(logits, exp_t, div);
    EXPECT_GT(probs[0], 0.9);
    EXPECT_LT(probs[1], 0.1);
}
