/**
 * @file
 * Operand analyzer: classification, decomposition, and exhaustive
 * correctness of the LUT-based multiply at 4, 8 and 16 bits.
 */

#include <gtest/gtest.h>

#include "lut/operand_analyzer.hh"
#include "sim/random.hh"

using namespace bfree::lut;

TEST(Classify, AllSixteenValues)
{
    EXPECT_EQ(classify_operand(0), OperandClass::Zero);
    EXPECT_EQ(classify_operand(1), OperandClass::One);
    EXPECT_EQ(classify_operand(2), OperandClass::PowerOfTwo);
    EXPECT_EQ(classify_operand(3), OperandClass::Odd);
    EXPECT_EQ(classify_operand(4), OperandClass::PowerOfTwo);
    EXPECT_EQ(classify_operand(5), OperandClass::Odd);
    EXPECT_EQ(classify_operand(6), OperandClass::EvenComposite);
    EXPECT_EQ(classify_operand(7), OperandClass::Odd);
    EXPECT_EQ(classify_operand(8), OperandClass::PowerOfTwo);
    EXPECT_EQ(classify_operand(9), OperandClass::Odd);
    EXPECT_EQ(classify_operand(10), OperandClass::EvenComposite);
    EXPECT_EQ(classify_operand(11), OperandClass::Odd);
    EXPECT_EQ(classify_operand(12), OperandClass::EvenComposite);
    EXPECT_EQ(classify_operand(13), OperandClass::Odd);
    EXPECT_EQ(classify_operand(14), OperandClass::EvenComposite);
    EXPECT_EQ(classify_operand(15), OperandClass::Odd);
}

TEST(Decompose, OddTimesPowerOfTwo)
{
    for (unsigned v = 1; v <= 255; ++v) {
        const OddDecomposition d = decompose_odd(v);
        EXPECT_EQ(d.odd % 2, 1u);
        EXPECT_EQ(d.odd << d.shift, v);
    }
}

TEST(MultiplyU4, ExhaustivelyExact)
{
    MultLut lut;
    for (unsigned a = 0; a <= 15; ++a)
        for (unsigned b = 0; b <= 15; ++b)
            EXPECT_EQ(multiply_u4(a, b, lut).product,
                      static_cast<std::int64_t>(a) * b)
                << a << " x " << b;
}

TEST(MultiplyU4, ZeroTakesNoCycle)
{
    MultLut lut;
    const MultResult r = multiply_u4(0, 9, lut);
    EXPECT_EQ(r.counts.cycles, 0u);
    EXPECT_EQ(r.counts.lutLookups, 0u);
}

TEST(MultiplyU4, PowersOfTwoUseShiftsNotLut)
{
    MultLut lut;
    for (unsigned a : {1u, 2u, 4u, 8u}) {
        for (unsigned b = 1; b <= 15; ++b) {
            const MultResult r = multiply_u4(a, b, lut);
            EXPECT_EQ(r.counts.lutLookups, 0u)
                << a << " x " << b;
        }
    }
}

TEST(MultiplyU4, OddOddUsesExactlyOneLookup)
{
    MultLut lut;
    for (unsigned a = 3; a <= 15; a += 2)
        for (unsigned b = 3; b <= 15; b += 2) {
            const MultResult r = multiply_u4(a, b, lut);
            EXPECT_EQ(r.counts.lutLookups, 1u);
            EXPECT_EQ(r.counts.cycles, 1u);
        }
}

TEST(MultiplyU4, EvenCompositeDecomposes)
{
    MultLut lut;
    // 6 x 10 = (3<<1) x (5<<1) = 15 << 2.
    const MultResult r = multiply_u4(6, 10, lut);
    EXPECT_EQ(r.product, 60);
    EXPECT_EQ(r.counts.lutLookups, 1u);
    EXPECT_EQ(r.counts.shifts, 1u);
}

TEST(MultiplyU4, RomSourceCountsRomLookups)
{
    MultLut lut;
    const MultResult r = multiply_u4(7, 9, lut, LookupSource::BceRom);
    EXPECT_EQ(r.counts.romLookups, 1u);
    EXPECT_EQ(r.counts.lutLookups, 0u);
}

TEST(MultiplySigned, ExhaustiveInt8)
{
    MultLut lut;
    for (int a = -128; a <= 127; ++a) {
        for (int b = -128; b <= 127; ++b) {
            const MultResult r = multiply_signed(a, b, 8, lut);
            ASSERT_EQ(r.product, static_cast<std::int64_t>(a) * b)
                << a << " x " << b;
        }
    }
}

TEST(MultiplySigned, ExhaustiveInt4)
{
    MultLut lut;
    for (int a = -8; a <= 7; ++a)
        for (int b = -8; b <= 7; ++b)
            EXPECT_EQ(multiply_signed(a, b, 4, lut).product,
                      static_cast<std::int64_t>(a) * b);
}

TEST(MultiplySigned, RandomInt16)
{
    MultLut lut;
    bfree::sim::Rng rng(42);
    for (int i = 0; i < 20000; ++i) {
        const auto a =
            static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        const auto b =
            static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        ASSERT_EQ(multiply_signed(a, b, 16, lut).product,
                  static_cast<std::int64_t>(a) * b)
            << a << " x " << b;
    }
}

TEST(MultiplySigned, ExtremesOfEachWidth)
{
    MultLut lut;
    EXPECT_EQ(multiply_signed(-8, -8, 4, lut).product, 64);
    EXPECT_EQ(multiply_signed(-128, -128, 8, lut).product, 16384);
    EXPECT_EQ(multiply_signed(-128, 127, 8, lut).product, -16256);
    EXPECT_EQ(multiply_signed(-32768, -32768, 16, lut).product,
              1073741824);
}

TEST(MultiplySigned, EightBitUsesAtMostFourPartials)
{
    MultLut lut;
    for (int a : {-127, -100, -3, 17, 85, 127}) {
        for (int b : {-128, -77, 9, 33, 127}) {
            const MultResult r = multiply_signed(a, b, 8, lut);
            EXPECT_LE(r.counts.cycles, 4u) << a << " x " << b;
        }
    }
    EXPECT_EQ(nibble_products(8), 4u);
    EXPECT_EQ(nibble_products(4), 1u);
    EXPECT_EQ(nibble_products(16), 16u);
}

TEST(MicroOpCounts, Accumulate)
{
    MicroOpCounts a;
    a.lutLookups = 1;
    a.cycles = 2;
    MicroOpCounts b;
    b.lutLookups = 3;
    b.adds = 5;
    a += b;
    EXPECT_EQ(a.lutLookups, 4u);
    EXPECT_EQ(a.adds, 5u);
    EXPECT_EQ(a.cycles, 2u);
}

/** Parameterized sweep: the identity holds for structured operands. */
class NibbleSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(NibbleSweep, ShiftedOperandsStayExact)
{
    MultLut lut;
    const unsigned shift = GetParam();
    for (int base = 1; base <= 15; ++base) {
        const std::int32_t a = base << shift;
        if (a > 32767)
            continue;
        for (int b = -100; b <= 100; b += 7) {
            ASSERT_EQ(multiply_signed(a, b, 16, lut).product,
                      static_cast<std::int64_t>(a) * b);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shifts, NibbleSweep,
                         ::testing::Values(0u, 1u, 2u, 4u, 7u, 10u));
