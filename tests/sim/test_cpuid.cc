/**
 * @file
 * Runtime SIMD dispatch: level naming, capability queries, forced
 * overrides and the environment resolution CI leans on.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "sim/cpuid.hh"

namespace {

using namespace bfree;

TEST(Cpuid, LevelNamesAreStable)
{
    EXPECT_STREQ("scalar", sim::simd_level_name(sim::SimdLevel::Scalar));
    EXPECT_STREQ("sse42", sim::simd_level_name(sim::SimdLevel::Sse42));
    EXPECT_STREQ("neon", sim::simd_level_name(sim::SimdLevel::Neon));
    EXPECT_STREQ("avx2", sim::simd_level_name(sim::SimdLevel::Avx2));
    EXPECT_STREQ("avx512",
                 sim::simd_level_name(sim::SimdLevel::Avx512));
}

TEST(Cpuid, ScalarIsAlwaysCompiledAndSupported)
{
    EXPECT_TRUE(sim::simd_level_compiled(sim::SimdLevel::Scalar));
    EXPECT_TRUE(sim::simd_level_supported(sim::SimdLevel::Scalar));
}

TEST(Cpuid, ActiveLevelIsRunnable)
{
    const sim::SimdLevel level = sim::active_simd_level();
    EXPECT_TRUE(sim::simd_level_compiled(level));
    EXPECT_TRUE(sim::simd_level_supported(level));
}

TEST(Cpuid, ForceAndResetRoundTrip)
{
    // Scalar is runnable everywhere, so forcing it must stick.
    sim::force_simd_level(sim::SimdLevel::Scalar);
    EXPECT_EQ(sim::SimdLevel::Scalar, sim::active_simd_level());

    // Reset re-resolves from the environment; whatever comes back
    // must be runnable on this host.
    sim::reset_simd_level();
    const sim::SimdLevel level = sim::active_simd_level();
    EXPECT_TRUE(sim::simd_level_compiled(level));
    EXPECT_TRUE(sim::simd_level_supported(level));
}

TEST(Cpuid, EveryCompiledAndSupportedLevelCanBeForced)
{
    for (const sim::SimdLevel level :
         {sim::SimdLevel::Scalar, sim::SimdLevel::Sse42,
          sim::SimdLevel::Neon, sim::SimdLevel::Avx2,
          sim::SimdLevel::Avx512}) {
        if (!sim::simd_level_compiled(level)
            || !sim::simd_level_supported(level))
            continue;
        sim::force_simd_level(level);
        EXPECT_EQ(level, sim::active_simd_level());
    }
    sim::reset_simd_level();
}

TEST(CpuidDeath, ForcingAnUncompiledLevelIsFatal)
{
    // One of NEON / AVX2 is never compiled in: a binary targets x86
    // or ARM, not both. Forcing the missing one must die loudly
    // rather than silently fall back.
    const sim::SimdLevel missing =
        sim::simd_level_compiled(sim::SimdLevel::Avx2)
            ? sim::SimdLevel::Neon
            : sim::SimdLevel::Avx2;
    ASSERT_FALSE(sim::simd_level_compiled(missing));
    EXPECT_DEATH(sim::force_simd_level(missing),
                 "not built with kernels");
}

TEST(Cpuid, ForceScalarEnvironmentWinsOverIsaRequest)
{
    ASSERT_EQ(0, setenv("BFREE_FORCE_SCALAR", "1", 1));
    ASSERT_EQ(0, setenv("BFREE_FORCE_ISA",
                        sim::simd_level_name(sim::active_simd_level()),
                        1));
    sim::reset_simd_level();
    EXPECT_EQ(sim::SimdLevel::Scalar, sim::active_simd_level());

    // "0" and empty both mean "not forced".
    ASSERT_EQ(0, setenv("BFREE_FORCE_SCALAR", "0", 1));
    ASSERT_EQ(0, unsetenv("BFREE_FORCE_ISA"));
    sim::reset_simd_level();
    const sim::SimdLevel level = sim::active_simd_level();
    EXPECT_TRUE(sim::simd_level_supported(level));
    ASSERT_EQ(0, unsetenv("BFREE_FORCE_SCALAR"));
    sim::reset_simd_level();
}

TEST(CpuidDeath, Avx512IsRunnableOrRejected)
{
    // This must hold on every host, with or without AVX-512: either
    // the trio is supported and the level can be forced, or forcing
    // it dies loudly — never a silent fallback.
    if (sim::simd_level_compiled(sim::SimdLevel::Avx512)
        && sim::simd_level_supported(sim::SimdLevel::Avx512)) {
        sim::force_simd_level(sim::SimdLevel::Avx512);
        EXPECT_EQ(sim::SimdLevel::Avx512, sim::active_simd_level());
        sim::reset_simd_level();
    } else {
        EXPECT_DEATH(sim::force_simd_level(sim::SimdLevel::Avx512),
                     "not built with kernels|does not support");
    }
}

TEST(CpuidDeath, ForceIsaAvx512ResolvesOrDies)
{
    // BFREE_FORCE_ISA=avx512 — the knob the simd-differential CI job
    // sets — must behave identically to the programmatic force.
    ASSERT_EQ(0, setenv("BFREE_FORCE_ISA", "avx512", 1));
    if (sim::simd_level_compiled(sim::SimdLevel::Avx512)
        && sim::simd_level_supported(sim::SimdLevel::Avx512)) {
        sim::reset_simd_level();
        EXPECT_EQ(sim::SimdLevel::Avx512, sim::active_simd_level());
    } else {
        EXPECT_DEATH(
            {
                sim::reset_simd_level();
                (void)sim::active_simd_level();
            },
            "not built with kernels|does not support");
    }
    ASSERT_EQ(0, unsetenv("BFREE_FORCE_ISA"));
    sim::reset_simd_level();
}

TEST(Cpuid, ForceIsaEnvironmentSelectsThatLevel)
{
    ASSERT_EQ(0, setenv("BFREE_FORCE_ISA", "scalar", 1));
    sim::reset_simd_level();
    EXPECT_EQ(sim::SimdLevel::Scalar, sim::active_simd_level());
    ASSERT_EQ(0, unsetenv("BFREE_FORCE_ISA"));
    sim::reset_simd_level();
}

TEST(CpuidDeath, UnknownForceIsaNameIsFatal)
{
    ASSERT_EQ(0, setenv("BFREE_FORCE_ISA", "avx1024", 1));
    EXPECT_DEATH(
        {
            sim::reset_simd_level();
            (void)sim::active_simd_level();
        },
        "not a known ISA");
    ASSERT_EQ(0, unsetenv("BFREE_FORCE_ISA"));
    sim::reset_simd_level();
}

} // namespace
