/**
 * @file
 * Clock domains and clocked scheduling.
 */

#include <gtest/gtest.h>

#include "sim/clocked.hh"

using namespace bfree::sim;

TEST(Cycles, ArithmeticAndComparison)
{
    Cycles a(10);
    Cycles b(3);
    EXPECT_EQ((a + b).value(), 13u);
    EXPECT_EQ((a - b).value(), 7u);
    EXPECT_EQ((b * 4).value(), 12u);
    EXPECT_LT(b, a);
    a += Cycles(5);
    EXPECT_EQ(a.value(), 15u);
}

TEST(ClockDomain, PeriodMatchesFrequency)
{
    ClockDomain ghz(1e9);
    EXPECT_EQ(ghz.period(), 1000u); // 1 ns = 1000 ps
    ClockDomain subarray(1.5e9);
    EXPECT_EQ(subarray.period(), 666u);
}

TEST(ClockDomain, CycleTickConversionsRoundTrip)
{
    ClockDomain d(2e9); // 500 ps period
    EXPECT_EQ(d.cyclesToTicks(Cycles(4)), 2000u);
    EXPECT_EQ(d.ticksToCycles(2000).value(), 4u);
    EXPECT_EQ(d.ticksToCycles(2499).value(), 4u); // floor
}

TEST(TickHelpers, SecondConversions)
{
    EXPECT_EQ(seconds_to_ticks(1e-9), 1000u);
    EXPECT_DOUBLE_EQ(ticks_to_seconds(1000), 1e-9);
    EXPECT_EQ(frequency_to_period(1.5e9), 666u);
}

TEST(ClockedObject, ClockEdgeAlignsForward)
{
    EventQueue q;
    ClockDomain d(1e9); // 1000 ps
    ClockedObject obj(q, "obj", d);

    // At tick 0 the next edge with no delay is tick 0 itself.
    EXPECT_EQ(obj.clockEdge(), 0u);
    EXPECT_EQ(obj.clockEdge(Cycles(2)), 2000u);
}

TEST(ClockedObject, ScheduleClockedFiresOnEdge)
{
    EventQueue q;
    ClockDomain d(1e9);
    ClockedObject obj(q, "obj", d);
    bool fired = false;
    EventFunctionWrapper ev([&] { fired = true; }, "edge event");
    obj.scheduleClocked(ev, Cycles(3));
    q.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(q.now(), 3000u);
}

TEST(ClockedObject, MisalignedNowRoundsUp)
{
    EventQueue q;
    ClockDomain d(1e9);
    ClockedObject obj(q, "obj", d);

    bool stage2 = false;
    EventFunctionWrapper inner([&] { stage2 = true; }, "inner");
    // Fire an event at a non-edge tick, then schedule from there.
    EventFunctionWrapper outer(
        [&] { obj.scheduleClocked(inner, Cycles(1)); }, "outer");
    q.schedule(&outer, 1500);
    q.run();
    EXPECT_TRUE(stage2);
    // Aligned up from 1500 to 2000, plus one cycle.
    EXPECT_EQ(q.now(), 3000u);
}

TEST(SimObject, NameAndQueueBinding)
{
    EventQueue q;
    SimObject obj(q, "slice0.bank1");
    EXPECT_EQ(obj.name(), "slice0.bank1");
    EXPECT_EQ(&obj.eventq(), &q);
    EXPECT_EQ(obj.curTick(), 0u);
}
