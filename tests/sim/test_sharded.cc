/**
 * @file
 * ShardedEngine: epoch-barrier parallel execution over per-shard
 * queues — lockstep windows, deterministic rendezvous, bit-identical
 * results for any worker count, and lookahead enforcement.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/sharded.hh"

using namespace bfree::sim;

namespace {

/**
 * A ping-pong workload: shard s, on every local event, records its
 * tick and forwards a token to shard (s + 1) % N with the lookahead
 * latency, until each token has made `laps` full loops. Every handoff
 * crosses a shard boundary, so this exercises post() on every event.
 */
struct PingPong
{
    static constexpr Tick lookahead = 100;

    std::vector<EventQueue> queues;
    ShardedEngine engine;
    std::vector<std::vector<Tick>> trace; // per shard: ticks seen
    unsigned laps_left;

    PingPong(unsigned shards, unsigned laps, unsigned threads)
        : queues(shards),
          engine(
              [&] {
                  std::vector<EventQueue *> ptrs;
                  for (auto &q : queues)
                      ptrs.push_back(&q);
                  return ptrs;
              }(),
              lookahead, threads),
          trace(shards), laps_left(laps * shards)
    {}

    void
    hop(unsigned s)
    {
        trace[s].push_back(queues[s].now());
        if (--laps_left == 0)
            return;
        const unsigned next =
            (s + 1) % static_cast<unsigned>(queues.size());
        const Tick when = queues[s].now() + lookahead;
        engine.post(s, next, when, [this, next, when] {
            queues[next].scheduleCallback(when,
                                          [this, next] { hop(next); });
        });
    }

    void
    run()
    {
        queues[0].scheduleCallback(10, [this] { hop(0); });
        engine.run();
    }
};

} // namespace

TEST(ShardedEngine, PingPongCrossesShardsWithLookaheadSpacing)
{
    PingPong p(3, 4, 2);
    p.run();
    // 4 laps of 3 shards = 12 hops, spaced exactly one lookahead apart.
    std::vector<Tick> all;
    for (const auto &t : p.trace)
        for (Tick tick : t)
            all.push_back(tick);
    EXPECT_EQ(all.size(), 12u);
    for (unsigned s = 0; s < 3; ++s) {
        for (std::size_t i = 0; i < p.trace[s].size(); ++i) {
            // Shard s sees the token at 10 + (3*i + s) * lookahead.
            EXPECT_EQ(p.trace[s][i],
                      10 + (3 * i + s) * PingPong::lookahead)
                << "shard " << s << " visit " << i;
        }
    }
    EXPECT_EQ(p.engine.messages(), 11u); // final hop posts nothing
    EXPECT_GT(p.engine.epochs(), 0u);
    EXPECT_EQ(p.engine.processed(), 12u);
}

TEST(ShardedEngine, ResultsAreIdenticalForAnyThreadCount)
{
    auto run_with = [](unsigned threads) {
        PingPong p(4, 8, threads);
        p.run();
        return std::make_tuple(p.trace, p.engine.epochs(),
                               p.engine.messages(),
                               p.engine.processed());
    };
    const auto base = run_with(1);
    EXPECT_EQ(run_with(2), base);
    EXPECT_EQ(run_with(4), base);
    EXPECT_EQ(run_with(8), base);
}

TEST(ShardedEngine, IndependentShardsRunWithoutMessages)
{
    std::vector<EventQueue> queues(4);
    std::vector<EventQueue *> ptrs;
    for (auto &q : queues)
        ptrs.push_back(&q);
    ShardedEngine engine(ptrs, 50, 2);

    std::vector<int> counts(4, 0);
    for (unsigned s = 0; s < 4; ++s) {
        for (int i = 1; i <= 3; ++i) {
            queues[s].scheduleCallback(
                static_cast<Tick>(i) * 10 * (s + 1),
                [&counts, s] { ++counts[s]; });
        }
    }
    engine.run();
    EXPECT_EQ(counts, (std::vector<int>{3, 3, 3, 3}));
    EXPECT_EQ(engine.messages(), 0u);
    EXPECT_EQ(engine.processed(), 12u);
}

TEST(ShardedEngine, EpochsFollowTheBarrierSequence)
{
    // Two shards, events only on shard 0 at ticks 10 and 1000, with
    // lookahead 100: epoch 1 covers [10, 110), epoch 2 [1000, 1100).
    std::vector<EventQueue> queues(2);
    ShardedEngine engine({&queues[0], &queues[1]}, 100, 1);
    int fired = 0;
    queues[0].scheduleCallback(10, [&] { ++fired; });
    queues[0].scheduleCallback(1000, [&] { ++fired; });
    engine.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(engine.epochs(), 2u);
    // Both queues idle-advanced through the same barriers.
    EXPECT_EQ(queues[0].now(), queues[1].now());
}

TEST(ShardedEngineDeath, ZeroLookaheadPanics)
{
    EventQueue q;
    EXPECT_DEATH(ShardedEngine({&q}, 0, 1), "lookahead");
}

TEST(ShardedEngineDeath, LookaheadViolationPanics)
{
    std::vector<EventQueue> queues(2);
    ShardedEngine engine({&queues[0], &queues[1]}, 100, 1);
    queues[0].scheduleCallback(10, [&] {
        // Posting for now + 50 < now + lookahead must die.
        engine.post(0, 1, queues[0].now() + 50, [] {});
    });
    EXPECT_DEATH(engine.run(), "lookahead");
}
