/**
 * @file
 * Logging levels and deterministic random generation.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/random.hh"

using namespace bfree::sim;

TEST(Logging, WarnCountsAccumulate)
{
    const std::uint64_t before = warn_count();
    bfree_warn("model approximation in effect: ", 42);
    bfree_warn("another warning");
    EXPECT_EQ(warn_count(), before + 2);
}

TEST(Logging, InformDoesNotCountAsWarning)
{
    const std::uint64_t before = warn_count();
    bfree_inform("status message");
    EXPECT_EQ(warn_count(), before);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(bfree_panic("invariant ", 1, " violated"),
                 "invariant 1 violated");
}

TEST(LoggingDeath, FatalExitsCleanly)
{
    EXPECT_EXIT(bfree_fatal("bad configuration: ", "x"),
                ::testing::ExitedWithCode(1), "bad configuration: x");
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(-1000, 1000), b.uniformInt(-1000, 1000));
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    bool diverged = false;
    for (int i = 0; i < 20 && !diverged; ++i)
        diverged = a.uniformInt(0, 1 << 30) != b.uniformInt(0, 1 << 30);
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, UniformRealStaysInRange)
{
    Rng rng(8);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal(0.25, 0.75);
        EXPECT_GE(v, 0.25);
        EXPECT_LT(v, 0.75);
    }
}

TEST(Rng, GaussianHasRoughlyTheRequestedMoments)
{
    Rng rng(9);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian(3.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}
