/**
 * @file
 * The parallel sweep engine: work-stealing pool, deterministic stats
 * merge, and cross-thread-count reproducibility.
 *
 * The determinism contract under test: a SweepRunner joins job output
 * and job stats in stable job-index order, so every observable result
 * is byte-identical for any thread count — including --threads 1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "dnn/model_zoo.hh"
#include "map/detailed_sim.hh"
#include "map/exec_model.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

using namespace bfree;
using namespace bfree::sim;

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 500; ++i)
        tasks.push_back([&count] { ++count; });
    pool.run(std::move(tasks));
    EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 10; ++batch) {
        std::vector<std::function<void()>> tasks;
        for (int i = 0; i < 17; ++i)
            tasks.push_back([&count] { ++count; });
        pool.run(std::move(tasks));
    }
    EXPECT_EQ(count.load(), 170);
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder)
{
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<int> order;
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([&order, caller, i] {
            EXPECT_EQ(std::this_thread::get_id(), caller);
            order.push_back(i);
        });
    }
    pool.run(std::move(tasks));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ThreadPool, UnbalancedTasksAllComplete)
{
    // One task is 1000x heavier than the rest; stealing must keep the
    // batch from serializing behind the deque it landed in.
    ThreadPool pool(4);
    std::atomic<long> sum{0};
    std::vector<std::function<void()>> tasks;
    tasks.push_back([&sum] {
        long s = 0;
        for (int i = 0; i < 1000000; ++i)
            s += i % 7;
        sum += s;
    });
    for (int i = 0; i < 64; ++i)
        tasks.push_back([&sum] { sum += 1; });
    pool.run(std::move(tasks));
    EXPECT_GE(sum.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i) {
        tasks.push_back([&count, i] {
            if (i == 7)
                throw std::runtime_error("boom");
            ++count;
        });
    }
    EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
    EXPECT_EQ(count.load(), 19); // the batch still drains

    // The pool stays usable after a failed batch.
    std::vector<std::function<void()>> more;
    more.push_back([&count] { ++count; });
    pool.run(std::move(more));
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, ZeroResolvesToHardwareConcurrency)
{
    EXPECT_GE(resolve_threads(0), 1u);
    EXPECT_EQ(resolve_threads(5), 5u);
}

namespace {

/** A job mix with data-dependent cost, text output and all stat kinds. */
std::vector<SweepJob>
make_mixed_jobs(unsigned count)
{
    std::vector<SweepJob> jobs;
    for (unsigned j = 0; j < count; ++j) {
        jobs.push_back({"mix" + std::to_string(j),
                        [j](SweepContext &ctx) {
            Rng rng(1000 + j);
            // Unbalanced, deterministic amount of work per job.
            const int iters =
                static_cast<int>(rng.uniformInt(1000, 20000));
            double acc = 0.0;
            Scalar &draws = ctx.scalar("draws", "rng draws");
            Vector &mod = ctx.vector("mod", "draw mod 4", 4);
            Histogram &hist =
                ctx.histogram("gauss", "gaussian draws", -4.0, 4.0, 8);
            for (int i = 0; i < iters; ++i) {
                const double g = rng.gaussian(0.0, 1.0);
                acc += g;
                ++draws;
                mod.add(static_cast<std::size_t>(i % 4), 1.0);
                hist.sample(g);
            }
            ctx.out << "job " << ctx.jobIndex << " iters " << iters
                    << " acc " << acc << "\n";
        }});
    }
    return jobs;
}

/** Full observable state of a finished sweep as one string. */
std::string
sweep_fingerprint(const SweepReport &report)
{
    std::ostringstream os;
    os << report.output() << "---\n";
    report.dumpStats(os);
    for (const SweepJobResult &r : report.jobs())
        os << r.name << "\n"; // order + names, not timing
    return os.str();
}

} // namespace

TEST(SweepRunner, ByteIdenticalAcrossThreadCounts)
{
    std::string reference;
    for (unsigned threads : {1u, 2u, 8u}) {
        SweepRunner runner(threads);
        const SweepReport report = runner.run(make_mixed_jobs(24));
        const std::string fp = sweep_fingerprint(report);
        if (reference.empty())
            reference = fp;
        else
            EXPECT_EQ(fp, reference) << threads << " threads";
    }
    EXPECT_FALSE(reference.empty());
}

TEST(SweepRunner, JobGroupsNestUnderSweepRootInJobOrder)
{
    SweepRunner runner(2);
    std::vector<SweepJob> jobs;
    jobs.push_back({"alpha", [](SweepContext &ctx) {
        ctx.scalar("value", "v").set(1.0);
    }});
    jobs.push_back({"", [](SweepContext &ctx) { // unnamed -> job1
        ctx.scalar("value", "v").set(2.0);
    }});
    const SweepReport report = runner.run(std::move(jobs));

    const StatGroup *alpha = report.stats().findChild("alpha");
    const StatGroup *anon = report.stats().findChild("job1");
    ASSERT_NE(alpha, nullptr);
    ASSERT_NE(anon, nullptr);
    const auto *v = dynamic_cast<Scalar *>(alpha->findStat("value"));
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->value(), 1.0);
    EXPECT_EQ(alpha->fullName(), "sweep.alpha");
}

TEST(SweepRunner, MergeFromFoldsCongruentJobStats)
{
    SweepRunner runner(4);
    std::vector<SweepJob> jobs;
    for (unsigned j = 0; j < 6; ++j) {
        jobs.push_back({"shard" + std::to_string(j),
                        [j](SweepContext &ctx) {
            ctx.scalar("count", "c").set(static_cast<double>(j));
            Vector &v = ctx.vector("v", "v", 3);
            v.add(j % 3, 1.0);
        }});
    }
    const SweepReport report = runner.run(std::move(jobs));

    // Fold shards 1..5 into shard 0, in job-index order.
    StatGroup *total = report.stats().findChild("shard0");
    ASSERT_NE(total, nullptr);
    for (unsigned j = 1; j < 6; ++j)
        total->mergeFrom(*report.stats().findChild(
            "shard" + std::to_string(j)));

    const auto *count = dynamic_cast<Scalar *>(total->findStat("count"));
    ASSERT_NE(count, nullptr);
    EXPECT_DOUBLE_EQ(count->value(), 0 + 1 + 2 + 3 + 4 + 5);
    const auto *v = dynamic_cast<Vector *>(total->findStat("v"));
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->total(), 6.0);
    EXPECT_DOUBLE_EQ(v->value(0), 2.0);
}

TEST(SweepRunner, RecordsPerJobTiming)
{
    SweepRunner runner(2);
    std::vector<SweepJob> jobs = make_mixed_jobs(4);
    const SweepReport report = runner.run(std::move(jobs));
    ASSERT_EQ(report.jobs().size(), 4u);
    for (const SweepJobResult &r : report.jobs())
        EXPECT_GE(r.seconds, 0.0);
    EXPECT_GE(report.totalJobSeconds(), 0.0);
}

TEST(ExecSweep, ResultsBitIdenticalAcrossThreadCounts)
{
    const tech::CacheGeometry geom;
    const tech::TechParams tech;
    std::vector<map::ExecJob> jobs;
    for (unsigned slices : {1u, 2u, 4u, 7u, 14u}) {
        map::ExecConfig cfg;
        cfg.mapper.slices = slices;
        jobs.push_back({dnn::make_tiny_cnn(), cfg});
    }

    const auto serial = map::run_sweep(geom, tech, jobs, 1);
    const auto parallel = map::run_sweep(geom, tech, jobs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Bit-identical, not approximately equal.
        EXPECT_EQ(serial[i].secondsPerInference(),
                  parallel[i].secondsPerInference())
            << i;
        EXPECT_EQ(serial[i].joulesPerInference(),
                  parallel[i].joulesPerInference())
            << i;
        EXPECT_EQ(serial[i].layers.size(), parallel[i].layers.size());
    }
    // Larger fabrics are not slower on the same network.
    EXPECT_LE(serial.back().time.compute, serial.front().time.compute);
}

TEST(DetailedBatch, MatchesSingleRunsAndFormula)
{
    const tech::CacheGeometry geom;
    const tech::TechParams tech;

    std::vector<map::DetailedJob> jobs;
    for (unsigned j = 0; j < 3; ++j) {
        map::DetailedJob job;
        job.nodes = 2 + j;
        job.sliceLen = 8;
        job.bits = 8;
        Rng rng(42 + j);
        job.weights.assign(job.nodes,
                           std::vector<std::int8_t>(job.sliceLen));
        for (auto &s : job.weights)
            for (auto &w : s)
                w = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        job.inputs.assign(
            5, std::vector<std::int8_t>(std::size_t(job.nodes)
                                        * job.sliceLen));
        for (auto &wave : job.inputs)
            for (auto &x : wave)
                x = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        jobs.push_back(std::move(job));
    }

    const auto batch =
        map::run_detailed_batch(geom, tech, jobs, 3);
    ASSERT_EQ(batch.size(), jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        map::DetailedSubBankSim single(geom, tech, jobs[j].nodes,
                                       jobs[j].sliceLen, jobs[j].bits);
        single.loadWeights(jobs[j].weights);
        const auto expected = single.run(jobs[j].inputs);
        EXPECT_EQ(batch[j].outputs, expected.outputs) << j;
        EXPECT_EQ(batch[j].cycles, expected.cycles) << j;
        EXPECT_EQ(batch[j].cycles,
                  map::detailed_chain_formula(jobs[j].nodes, 5,
                                              single.cyclesPerStep(),
                                              tech.routerHopCycles))
            << j;
    }
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(0xfeedULL);
    Rng b(0xfeedULL);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.uniformInt(-1000000, 1000000),
                  b.uniformInt(-1000000, 1000000));
        EXPECT_EQ(a.uniformReal(0.0, 1.0), b.uniformReal(0.0, 1.0));
        EXPECT_EQ(a.gaussian(0.0, 1.0), b.gaussian(0.0, 1.0));
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniformInt(0, 1u << 30) != b.uniformInt(0, 1u << 30))
            ++differing;
    }
    EXPECT_GT(differing, 90);
}

TEST(Rng, PerJobStreamsUnaffectedByThreadCount)
{
    // Each job owns a seeded Rng; interleaving with other threads must
    // not perturb any job's stream.
    auto draw_sums = [](unsigned threads) {
        std::vector<double> sums(16, 0.0);
        std::vector<SweepJob> jobs;
        for (unsigned j = 0; j < 16; ++j) {
            jobs.push_back({"rng" + std::to_string(j),
                            [j, &sums](SweepContext &) {
                Rng rng(7000 + j);
                double s = 0.0;
                for (int i = 0; i < 5000; ++i)
                    s += rng.uniformReal(-1.0, 1.0);
                sums[j] = s;
            }});
        }
        SweepRunner runner(threads);
        runner.run(std::move(jobs));
        return sums;
    };
    const auto serial = draw_sums(1);
    EXPECT_EQ(draw_sums(2), serial);
    EXPECT_EQ(draw_sums(8), serial);
}
