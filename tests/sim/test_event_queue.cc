/**
 * @file
 * EventQueue: ordering, determinism, descheduling and time advance.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace bfree::sim;

namespace {

/** Records its firing time and order into shared logs. */
class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id,
                   int priority = Event::default_priority)
        : Event(priority), log(&log), id(id)
    {}

    void process() override { log->push_back(id); }

  private:
    std::vector<int> *log;
    int id;
};

} // namespace

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.processed(), 0u);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&b, 200);
    q.schedule(&a, 100);
    q.schedule(&c, 300);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 300u);
    EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&c, 50);
    q.schedule(&a, 50);
    q.schedule(&b, 50);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{3, 1, 2}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent low(log, 1, 10);
    RecordingEvent high(log, 2, -10);
    q.schedule(&low, 50);
    q.schedule(&high, 50);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, StepProcessesExactlyOne)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunStopsAtBound)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 1000);
    q.run(500);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST(EventQueue, DescheduledEventDoesNotFire)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleAfterDeschedule)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    q.schedule(&a, 10);
    q.deschedule(&a);
    q.schedule(&a, 30);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper ev(
        [&] {
            ++fired;
            if (fired < 5)
                q.schedule(&ev, q.now() + 10);
        },
        "self rescheduling");
    q.schedule(&ev, 10);
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, ScheduledFlagTracksLifecycle)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_FALSE(a.scheduled());
    q.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    q.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueue, FunctionWrapperCarriesName)
{
    EventFunctionWrapper ev([] {}, "my event");
    EXPECT_EQ(ev.name(), "my event");
}

TEST(EventQueue, RescheduleEarlierThanOriginalFiltersStaleEntry)
{
    // Deschedule + reschedule EARLIER: the stale heap entry (sequence
    // of the first schedule) still sits at tick 100 and must be
    // filtered by the sequence comparison after the live entry fires.
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 100);
    q.deschedule(&a);
    q.schedule(&a, 10);
    q.schedule(&b, 100);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.now(), 100u);
    // Only the two live firings count; the stale entry is not an event.
    EXPECT_EQ(q.processed(), 2u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleLaterThanOriginalFiltersStaleEntry)
{
    // Deschedule + reschedule LATER: the stale entry surfaces FIRST.
    // If it were dispatched, the event would fire at tick 10 and the
    // live entry at 50 would be dropped as superseded.
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    q.schedule(&a, 10);
    q.deschedule(&a);
    q.schedule(&a, 50);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.processed(), 1u);
}

TEST(EventQueue, RepeatedDescheduleRescheduleLeavesOneLiveEntry)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    for (int i = 0; i < 4; ++i) {
        q.schedule(&a, 10 + 10 * i);
        q.deschedule(&a);
    }
    q.schedule(&a, 25);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 25u);
    EXPECT_EQ(q.processed(), 1u);
}

TEST(EventQueue, DescheduledNeverRescheduledIsSquashedSilently)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
    EXPECT_EQ(q.processed(), 1u);
    // The event is reusable afterwards.
    q.schedule(&a, 30);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, NextEventTickSeesThroughStaleEntries)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    q.schedule(&a, 10);
    q.deschedule(&a);
    q.schedule(&a, 70);
    EXPECT_EQ(q.nextEventTick(), 70u);
    q.run();
    EXPECT_EQ(q.nextEventTick(), max_tick);
}

TEST(EventQueue, ScheduleCallbackFiresAndRecycles)
{
    EventQueue q;
    std::vector<int> log;
    q.scheduleCallback(10, [&] { log.push_back(1); });
    q.scheduleCallback(20, [&] { log.push_back(2); });
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.callbackPoolSize(), 2u);

    // The fired events are back on the free list: scheduling two more
    // must not grow the pool.
    q.scheduleCallback(30, [&] { log.push_back(3); });
    q.scheduleCallback(40, [&] { log.push_back(4); });
    EXPECT_EQ(q.callbackPoolSize(), 2u);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, PooledCallbackCanScheduleFromInsideItself)
{
    // A callback scheduling another pooled callback may get the very
    // slot it is running from (it was recycled before invocation).
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5)
            q.scheduleCallback(q.now() + 10, chain);
    };
    q.scheduleCallback(10, chain);
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 50u);
    EXPECT_EQ(q.callbackPoolSize(), 1u);
}

TEST(EventQueue, CallbackRespectsPriority)
{
    EventQueue q;
    std::vector<int> log;
    q.scheduleCallback(10, [&] { log.push_back(1); }, 10);
    q.scheduleCallback(10, [&] { log.push_back(2); }, -10);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RunUntilBarrierIsStrictAndIdleAdvances)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&a, 10);
    q.schedule(&b, 50); // exactly at the barrier: must NOT fire
    q.schedule(&c, 90);
    EXPECT_EQ(q.runUntilBarrier(50), 1u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 50u); // idle-advanced to the barrier

    // Work injected at exactly the barrier tick is legal and ordered
    // before the event already waiting there (b was scheduled first,
    // but same-tick order is by sequence, so b still fires first).
    q.scheduleCallback(50, [&] { log.push_back(4); });
    EXPECT_EQ(q.runUntilBarrier(100), 3u);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 4, 3}));
    EXPECT_EQ(q.now(), 100u);

    // An empty queue still advances to the barrier.
    EXPECT_EQ(q.runUntilBarrier(200), 0u);
    EXPECT_EQ(q.now(), 200u);
}

TEST(EventQueueDeath, BarrierInThePastPanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    q.schedule(&a, 100);
    q.run();
    EXPECT_DEATH(q.runUntilBarrier(50), "in the past");
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 100);
    q.run();
    EXPECT_DEATH(q.schedule(&b, 50), "in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    q.schedule(&a, 10);
    EXPECT_DEATH(q.schedule(&a, 20), "already scheduled");
}
