/**
 * @file
 * EventQueue: ordering, determinism, descheduling and time advance.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace bfree::sim;

namespace {

/** Records its firing time and order into shared logs. */
class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id,
                   int priority = Event::default_priority)
        : Event(priority), log(&log), id(id)
    {}

    void process() override { log->push_back(id); }

  private:
    std::vector<int> *log;
    int id;
};

} // namespace

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.now(), 0u);
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.processed(), 0u);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&b, 200);
    q.schedule(&a, 100);
    q.schedule(&c, 300);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 300u);
    EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, SameTickFiresInScheduleOrder)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    RecordingEvent c(log, 3);
    q.schedule(&c, 50);
    q.schedule(&a, 50);
    q.schedule(&b, 50);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{3, 1, 2}));
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent low(log, 1, 10);
    RecordingEvent high(log, 2, -10);
    q.schedule(&low, 50);
    q.schedule(&high, 50);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, StepProcessesExactlyOne)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    EXPECT_TRUE(q.step());
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(q.now(), 10u);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunStopsAtBound)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 1000);
    q.run(500);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(log.size(), 2u);
}

TEST(EventQueue, DescheduledEventDoesNotFire)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 10);
    q.schedule(&b, 20);
    q.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    q.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleAfterDeschedule)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    q.schedule(&a, 10);
    q.deschedule(&a);
    q.schedule(&a, 30);
    q.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EventCanRescheduleItself)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper ev(
        [&] {
            ++fired;
            if (fired < 5)
                q.schedule(&ev, q.now() + 10);
        },
        "self rescheduling");
    q.schedule(&ev, 10);
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, ScheduledFlagTracksLifecycle)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_FALSE(a.scheduled());
    q.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    q.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueue, FunctionWrapperCarriesName)
{
    EventFunctionWrapper ev([] {}, "my event");
    EXPECT_EQ(ev.name(), "my event");
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    RecordingEvent b(log, 2);
    q.schedule(&a, 100);
    q.run();
    EXPECT_DEATH(q.schedule(&b, 50), "in the past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    EventQueue q;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    q.schedule(&a, 10);
    EXPECT_DEATH(q.schedule(&a, 20), "already scheduled");
}
