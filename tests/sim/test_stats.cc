/**
 * @file
 * Statistics package: values, naming, dumping, reset.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>

#include "sim/stats.hh"

using namespace bfree::sim;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("sim");
    Scalar s(root, "count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FullNamesNest)
{
    StatGroup root("sim");
    StatGroup child(root, "cache");
    Scalar s(child, "hits", "");
    EXPECT_EQ(s.fullName(), "sim.cache.hits");
    EXPECT_EQ(child.fullName(), "sim.cache");
}

TEST(Stats, VectorIndexedAccumulation)
{
    StatGroup root("sim");
    Vector v(root, "perBank", "", 4);
    v.add(0, 1.0);
    v.add(3, 2.0);
    v.add(3, 3.0);
    EXPECT_DOUBLE_EQ(v.value(0), 1.0);
    EXPECT_DOUBLE_EQ(v.value(3), 5.0);
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 4u);
}

TEST(StatsDeath, VectorOutOfRangePanics)
{
    StatGroup root("sim");
    Vector v(root, "v", "", 2);
    EXPECT_DEATH(v.add(2, 1.0), "out of range");
}

TEST(Stats, HistogramBinsAndMean)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 0.0, 10.0, 5);
    h.sample(1.0);
    h.sample(3.0);
    h.sample(9.0);
    h.sample(100.0); // clamps into the last bin
    EXPECT_DOUBLE_EQ(h.samples(), 4.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(4), 2.0);
    EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 3.0 + 9.0 + 100.0) / 4.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.samples(), 0.0);
}

TEST(Stats, HistogramWeightedSamples)
{
    StatGroup root("sim");
    Histogram h(root, "w", "", 0.0, 4.0, 2);
    h.sample(1.0, 3.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 3.0);
    EXPECT_DOUBLE_EQ(h.samples(), 3.0);
}

TEST(Stats, FormulaEvaluatesAtDumpTime)
{
    StatGroup root("sim");
    Scalar hits(root, "hits", "");
    Scalar misses(root, "misses", "");
    Formula rate(root, "hitRate", "", [&] {
        const double total = hits.value() + misses.value();
        return total > 0.0 ? hits.value() / total : 0.0;
    });
    hits += 3.0;
    misses += 1.0;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, DumpContainsNamesValuesDescriptions)
{
    StatGroup root("sim");
    Scalar s(root, "count", "number of things");
    s += 42.0;
    std::ostringstream os;
    root.dumpAll(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sim.count"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("number of things"), std::string::npos);
}

TEST(Stats, DumpIsSortedByName)
{
    StatGroup root("sim");
    Scalar b(root, "bbb", "");
    Scalar a(root, "aaa", "");
    std::ostringstream os;
    root.dumpAll(os);
    const std::string text = os.str();
    EXPECT_LT(text.find("sim.aaa"), text.find("sim.bbb"));
}

TEST(Stats, ResetAllRecursesIntoChildren)
{
    StatGroup root("sim");
    StatGroup child(root, "sub");
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a += 1.0;
    b += 2.0;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, ChildGroupDumpsUnderParent)
{
    StatGroup root("top");
    StatGroup child(root, "inner");
    Scalar s(child, "x", "");
    std::ostringstream os;
    root.dumpAll(os);
    EXPECT_NE(os.str().find("top.inner.x"), std::string::npos);
}

TEST(Stats, StatUnregistersOnDestruction)
{
    StatGroup root("sim");
    {
        Scalar temp(root, "ephemeral", "");
        temp += 1.0;
    }
    Scalar keep(root, "keep", "");
    keep += 2.0;
    std::ostringstream os;
    root.dumpAll(os); // must not touch the dead stat
    EXPECT_EQ(os.str().find("ephemeral"), std::string::npos);
    EXPECT_NE(os.str().find("sim.keep"), std::string::npos);
}

TEST(Stats, FindStatAndChild)
{
    StatGroup root("sim");
    StatGroup child(root, "sub");
    Scalar s(child, "x", "");
    EXPECT_EQ(root.findChild("sub"), &child);
    EXPECT_EQ(root.findChild("nope"), nullptr);
    EXPECT_EQ(child.findStat("x"), &s);
    EXPECT_EQ(child.findStat("y"), nullptr);
}

TEST(StatsMerge, ScalarAdds)
{
    StatGroup a("a"), b("b");
    Scalar sa(a, "s", ""), sb(b, "s", "");
    sa += 3.0;
    sb += 4.5;
    EXPECT_TRUE(sa.mergeFrom(sb));
    EXPECT_DOUBLE_EQ(sa.value(), 7.5);
    EXPECT_DOUBLE_EQ(sb.value(), 4.5); // source untouched
}

TEST(StatsMerge, VectorAddsElementwise)
{
    StatGroup a("a"), b("b");
    Vector va(a, "v", "", 3), vb(b, "v", "", 3);
    va.add(0, 1.0);
    vb.add(0, 2.0);
    vb.add(2, 5.0);
    EXPECT_TRUE(va.mergeFrom(vb));
    EXPECT_DOUBLE_EQ(va.value(0), 3.0);
    EXPECT_DOUBLE_EQ(va.value(1), 0.0);
    EXPECT_DOUBLE_EQ(va.value(2), 5.0);
}

TEST(StatsMerge, HistogramAddsBinsSamplesAndSum)
{
    StatGroup a("a"), b("b");
    Histogram ha(a, "h", "", 0.0, 10.0, 5);
    Histogram hb(b, "h", "", 0.0, 10.0, 5);
    ha.sample(1.0);
    hb.sample(1.0);
    hb.sample(9.0);
    EXPECT_TRUE(ha.mergeFrom(hb));
    EXPECT_DOUBLE_EQ(ha.samples(), 3.0);
    EXPECT_DOUBLE_EQ(ha.binCount(0), 2.0);
    EXPECT_DOUBLE_EQ(ha.binCount(4), 1.0);
    EXPECT_DOUBLE_EQ(ha.mean(), (1.0 + 1.0 + 9.0) / 3.0);
}

TEST(StatsMerge, ShapeMismatchesAreRejected)
{
    StatGroup a("a"), b("b");
    Scalar s(a, "s", "");
    Vector v3(a, "v3", "", 3), v4(b, "v4", "", 4);
    Histogram h5(a, "h5", "", 0.0, 10.0, 5);
    Histogram h8(b, "h8", "", 0.0, 10.0, 8);
    Histogram hRange(b, "hr", "", 0.0, 20.0, 5);
    EXPECT_FALSE(s.mergeFrom(v3));       // kind mismatch
    EXPECT_FALSE(v3.mergeFrom(v4));      // length mismatch
    EXPECT_FALSE(v3.mergeFrom(s));       // kind mismatch
    EXPECT_FALSE(h5.mergeFrom(h8));      // bin-count mismatch
    EXPECT_FALSE(h5.mergeFrom(hRange));  // bin-range mismatch
    EXPECT_DOUBLE_EQ(v3.total(), 0.0);   // rejected merge changes nothing
}

TEST(StatsMerge, GroupMergesRecursively)
{
    StatGroup a("run");
    StatGroup aSub(a, "bank");
    Scalar aHits(a, "hits", "");
    Vector aLat(aSub, "lat", "", 2);
    aHits += 10.0;
    aLat.add(0, 1.0);

    StatGroup b("run");
    StatGroup bSub(b, "bank");
    Scalar bHits(b, "hits", "");
    Vector bLat(bSub, "lat", "", 2);
    bHits += 5.0;
    bLat.add(1, 7.0);

    a.mergeFrom(b);
    EXPECT_DOUBLE_EQ(aHits.value(), 15.0);
    EXPECT_DOUBLE_EQ(aLat.value(0), 1.0);
    EXPECT_DOUBLE_EQ(aLat.value(1), 7.0);
}

TEST(StatsMerge, MergeIsAssociativeInFixedOrder)
{
    // Folding three congruent groups left-to-right equals folding the
    // last two first — the property the sweep join relies on.
    auto build = [](double v) {
        auto g = std::make_unique<StatGroup>("g");
        auto s = std::make_unique<Scalar>(*g, "s", "");
        s->set(v);
        return std::pair(std::move(g), std::move(s));
    };
    auto [g1, s1] = build(1.0);
    auto [g2, s2] = build(2.0);
    auto [g3, s3] = build(4.0);
    g1->mergeFrom(*g2);
    g1->mergeFrom(*g3);
    EXPECT_DOUBLE_EQ(s1->value(), 7.0);

    auto [h1, t1] = build(1.0);
    auto [h2, t2] = build(2.0);
    auto [h3, t3] = build(4.0);
    h2->mergeFrom(*h3);
    h1->mergeFrom(*h2);
    EXPECT_DOUBLE_EQ(t1->value(), 7.0);
}

TEST(StatsMergeDeath, MissingCounterpartPanics)
{
    StatGroup a("run");
    Scalar extra(a, "onlyInA", "");
    StatGroup b("run");
    // b lacks a counterpart for a's stat.
    EXPECT_DEATH(b.mergeFrom(a), "onlyInA");
}

// --- Histogram percentiles (serving-layer SLO readouts) -------------

TEST(StatsPercentile, EmptyHistogramReturnsRangeLo)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 10.0, 20.0, 10);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(h.rangeLo(), 10.0);
    EXPECT_DOUBLE_EQ(h.rangeHi(), 20.0);
}

TEST(StatsPercentile, SingleBinInterpolatesWithinBucket)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 0.0, 100.0, 10);
    // Four samples, all landing in bin 2 ([20, 30)).
    for (int i = 0; i < 4; ++i)
        h.sample(25.0);
    // The bin's weight is spread uniformly over its width: p=0.5 falls
    // at the bin's midpoint, p=1 at its upper edge.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 30.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 20.0);
}

TEST(StatsPercentile, BucketBoundariesAreHalfOpen)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 0.0, 10.0, 10);
    // A sample exactly on a boundary belongs to the upper bin.
    h.sample(3.0);
    EXPECT_DOUBLE_EQ(h.binCount(3), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(2), 0.0);
    // Out-of-range samples clamp into the edge bins.
    h.reset();
    h.sample(-5.0);
    h.sample(42.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(9), 1.0);
    // Percentiles never leave the configured range.
    EXPECT_GE(h.percentile(0.0), 0.0);
    EXPECT_LE(h.percentile(1.0), 10.0);
}

TEST(StatsPercentile, P50AndP99InterpolateAcrossBins)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 0.0, 100.0, 100);
    // 100 samples: one per unit bin. The interpolated cumulative
    // distribution crosses p exactly at the bin edges: 50% of the
    // mass lies below 50.0, 99% below 99.0.
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 1.0);
    // Off-boundary targets interpolate inside the crossing bin:
    // p=0.505 needs half of bin 50's sample => 50.5.
    EXPECT_DOUBLE_EQ(h.percentile(0.505), 50.5);
}

TEST(StatsPercentile, SkewedMassFindsTheHeavyBin)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 0.0, 100.0, 10);
    // 90 fast requests, 10 slow ones: p50 sits in the fast bin,
    // p99 deep in the slow bin.
    for (int i = 0; i < 90; ++i)
        h.sample(5.0);
    for (int i = 0; i < 10; ++i)
        h.sample(95.0);
    // p50: 50 of the 90 fast samples => 50/90 through bin [0, 10).
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0 * 50.0 / 90.0);
    // p99: 9 of the 10 slow samples => 9/10 through bin [90, 100).
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
}

TEST(StatsPercentile, MergePreservesPercentiles)
{
    // Percentiles of a merged histogram equal percentiles of the
    // union of samples, and merging is associative in fixed order.
    auto build = [] {
        auto g = std::make_unique<StatGroup>("g");
        auto h = std::make_unique<Histogram>(*g, "lat", "", 0.0, 100.0,
                                             100);
        return std::pair(std::move(g), std::move(h));
    };
    auto [ga, ha] = build();
    auto [gb, hb] = build();
    auto [gc, hc] = build();
    auto [gu, hu] = build();
    for (int i = 0; i < 30; ++i) {
        ha->sample(10.5);
        hu->sample(10.5);
    }
    for (int i = 0; i < 30; ++i) {
        hb->sample(50.5);
        hu->sample(50.5);
    }
    for (int i = 0; i < 40; ++i) {
        hc->sample(90.5);
        hu->sample(90.5);
    }
    // (a + b) + c
    auto [g1, h1] = build();
    ASSERT_TRUE(h1->mergeFrom(*ha));
    ASSERT_TRUE(h1->mergeFrom(*hb));
    ASSERT_TRUE(h1->mergeFrom(*hc));
    // a + (b + c)
    auto [g2, h2] = build();
    ASSERT_TRUE(hb->mergeFrom(*hc));
    ASSERT_TRUE(h2->mergeFrom(*ha));
    ASSERT_TRUE(h2->mergeFrom(*hb));
    for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_DOUBLE_EQ(h1->percentile(p), hu->percentile(p));
        EXPECT_DOUBLE_EQ(h2->percentile(p), hu->percentile(p));
    }
    EXPECT_DOUBLE_EQ(h1->samples(), 100.0);
    EXPECT_DOUBLE_EQ(h1->mean(), h2->mean());
}
