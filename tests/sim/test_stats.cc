/**
 * @file
 * Statistics package: values, naming, dumping, reset.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace bfree::sim;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("sim");
    Scalar s(root, "count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FullNamesNest)
{
    StatGroup root("sim");
    StatGroup child(root, "cache");
    Scalar s(child, "hits", "");
    EXPECT_EQ(s.fullName(), "sim.cache.hits");
    EXPECT_EQ(child.fullName(), "sim.cache");
}

TEST(Stats, VectorIndexedAccumulation)
{
    StatGroup root("sim");
    Vector v(root, "perBank", "", 4);
    v.add(0, 1.0);
    v.add(3, 2.0);
    v.add(3, 3.0);
    EXPECT_DOUBLE_EQ(v.value(0), 1.0);
    EXPECT_DOUBLE_EQ(v.value(3), 5.0);
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 4u);
}

TEST(StatsDeath, VectorOutOfRangePanics)
{
    StatGroup root("sim");
    Vector v(root, "v", "", 2);
    EXPECT_DEATH(v.add(2, 1.0), "out of range");
}

TEST(Stats, HistogramBinsAndMean)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 0.0, 10.0, 5);
    h.sample(1.0);
    h.sample(3.0);
    h.sample(9.0);
    h.sample(100.0); // clamps into the last bin
    EXPECT_DOUBLE_EQ(h.samples(), 4.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(4), 2.0);
    EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 3.0 + 9.0 + 100.0) / 4.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.samples(), 0.0);
}

TEST(Stats, HistogramWeightedSamples)
{
    StatGroup root("sim");
    Histogram h(root, "w", "", 0.0, 4.0, 2);
    h.sample(1.0, 3.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 3.0);
    EXPECT_DOUBLE_EQ(h.samples(), 3.0);
}

TEST(Stats, FormulaEvaluatesAtDumpTime)
{
    StatGroup root("sim");
    Scalar hits(root, "hits", "");
    Scalar misses(root, "misses", "");
    Formula rate(root, "hitRate", "", [&] {
        const double total = hits.value() + misses.value();
        return total > 0.0 ? hits.value() / total : 0.0;
    });
    hits += 3.0;
    misses += 1.0;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, DumpContainsNamesValuesDescriptions)
{
    StatGroup root("sim");
    Scalar s(root, "count", "number of things");
    s += 42.0;
    std::ostringstream os;
    root.dumpAll(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sim.count"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("number of things"), std::string::npos);
}

TEST(Stats, DumpIsSortedByName)
{
    StatGroup root("sim");
    Scalar b(root, "bbb", "");
    Scalar a(root, "aaa", "");
    std::ostringstream os;
    root.dumpAll(os);
    const std::string text = os.str();
    EXPECT_LT(text.find("sim.aaa"), text.find("sim.bbb"));
}

TEST(Stats, ResetAllRecursesIntoChildren)
{
    StatGroup root("sim");
    StatGroup child(root, "sub");
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a += 1.0;
    b += 2.0;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, ChildGroupDumpsUnderParent)
{
    StatGroup root("top");
    StatGroup child(root, "inner");
    Scalar s(child, "x", "");
    std::ostringstream os;
    root.dumpAll(os);
    EXPECT_NE(os.str().find("top.inner.x"), std::string::npos);
}
