/**
 * @file
 * Statistics package: values, naming, dumping, reset.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>

#include "sim/stats.hh"

using namespace bfree::sim;

TEST(Stats, ScalarAccumulates)
{
    StatGroup root("sim");
    Scalar s(root, "count", "a counter");
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FullNamesNest)
{
    StatGroup root("sim");
    StatGroup child(root, "cache");
    Scalar s(child, "hits", "");
    EXPECT_EQ(s.fullName(), "sim.cache.hits");
    EXPECT_EQ(child.fullName(), "sim.cache");
}

TEST(Stats, VectorIndexedAccumulation)
{
    StatGroup root("sim");
    Vector v(root, "perBank", "", 4);
    v.add(0, 1.0);
    v.add(3, 2.0);
    v.add(3, 3.0);
    EXPECT_DOUBLE_EQ(v.value(0), 1.0);
    EXPECT_DOUBLE_EQ(v.value(3), 5.0);
    EXPECT_DOUBLE_EQ(v.total(), 6.0);
    EXPECT_EQ(v.size(), 4u);
}

TEST(StatsDeath, VectorOutOfRangePanics)
{
    StatGroup root("sim");
    Vector v(root, "v", "", 2);
    EXPECT_DEATH(v.add(2, 1.0), "out of range");
}

TEST(Stats, HistogramBinsAndMean)
{
    StatGroup root("sim");
    Histogram h(root, "lat", "", 0.0, 10.0, 5);
    h.sample(1.0);
    h.sample(3.0);
    h.sample(9.0);
    h.sample(100.0); // clamps into the last bin
    EXPECT_DOUBLE_EQ(h.samples(), 4.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(1), 1.0);
    EXPECT_DOUBLE_EQ(h.binCount(4), 2.0);
    EXPECT_DOUBLE_EQ(h.mean(), (1.0 + 3.0 + 9.0 + 100.0) / 4.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.samples(), 0.0);
}

TEST(Stats, HistogramWeightedSamples)
{
    StatGroup root("sim");
    Histogram h(root, "w", "", 0.0, 4.0, 2);
    h.sample(1.0, 3.0);
    EXPECT_DOUBLE_EQ(h.binCount(0), 3.0);
    EXPECT_DOUBLE_EQ(h.samples(), 3.0);
}

TEST(Stats, FormulaEvaluatesAtDumpTime)
{
    StatGroup root("sim");
    Scalar hits(root, "hits", "");
    Scalar misses(root, "misses", "");
    Formula rate(root, "hitRate", "", [&] {
        const double total = hits.value() + misses.value();
        return total > 0.0 ? hits.value() / total : 0.0;
    });
    hits += 3.0;
    misses += 1.0;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, DumpContainsNamesValuesDescriptions)
{
    StatGroup root("sim");
    Scalar s(root, "count", "number of things");
    s += 42.0;
    std::ostringstream os;
    root.dumpAll(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("sim.count"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("number of things"), std::string::npos);
}

TEST(Stats, DumpIsSortedByName)
{
    StatGroup root("sim");
    Scalar b(root, "bbb", "");
    Scalar a(root, "aaa", "");
    std::ostringstream os;
    root.dumpAll(os);
    const std::string text = os.str();
    EXPECT_LT(text.find("sim.aaa"), text.find("sim.bbb"));
}

TEST(Stats, ResetAllRecursesIntoChildren)
{
    StatGroup root("sim");
    StatGroup child(root, "sub");
    Scalar a(root, "a", "");
    Scalar b(child, "b", "");
    a += 1.0;
    b += 2.0;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Stats, ChildGroupDumpsUnderParent)
{
    StatGroup root("top");
    StatGroup child(root, "inner");
    Scalar s(child, "x", "");
    std::ostringstream os;
    root.dumpAll(os);
    EXPECT_NE(os.str().find("top.inner.x"), std::string::npos);
}

TEST(Stats, StatUnregistersOnDestruction)
{
    StatGroup root("sim");
    {
        Scalar temp(root, "ephemeral", "");
        temp += 1.0;
    }
    Scalar keep(root, "keep", "");
    keep += 2.0;
    std::ostringstream os;
    root.dumpAll(os); // must not touch the dead stat
    EXPECT_EQ(os.str().find("ephemeral"), std::string::npos);
    EXPECT_NE(os.str().find("sim.keep"), std::string::npos);
}

TEST(Stats, FindStatAndChild)
{
    StatGroup root("sim");
    StatGroup child(root, "sub");
    Scalar s(child, "x", "");
    EXPECT_EQ(root.findChild("sub"), &child);
    EXPECT_EQ(root.findChild("nope"), nullptr);
    EXPECT_EQ(child.findStat("x"), &s);
    EXPECT_EQ(child.findStat("y"), nullptr);
}

TEST(StatsMerge, ScalarAdds)
{
    StatGroup a("a"), b("b");
    Scalar sa(a, "s", ""), sb(b, "s", "");
    sa += 3.0;
    sb += 4.5;
    EXPECT_TRUE(sa.mergeFrom(sb));
    EXPECT_DOUBLE_EQ(sa.value(), 7.5);
    EXPECT_DOUBLE_EQ(sb.value(), 4.5); // source untouched
}

TEST(StatsMerge, VectorAddsElementwise)
{
    StatGroup a("a"), b("b");
    Vector va(a, "v", "", 3), vb(b, "v", "", 3);
    va.add(0, 1.0);
    vb.add(0, 2.0);
    vb.add(2, 5.0);
    EXPECT_TRUE(va.mergeFrom(vb));
    EXPECT_DOUBLE_EQ(va.value(0), 3.0);
    EXPECT_DOUBLE_EQ(va.value(1), 0.0);
    EXPECT_DOUBLE_EQ(va.value(2), 5.0);
}

TEST(StatsMerge, HistogramAddsBinsSamplesAndSum)
{
    StatGroup a("a"), b("b");
    Histogram ha(a, "h", "", 0.0, 10.0, 5);
    Histogram hb(b, "h", "", 0.0, 10.0, 5);
    ha.sample(1.0);
    hb.sample(1.0);
    hb.sample(9.0);
    EXPECT_TRUE(ha.mergeFrom(hb));
    EXPECT_DOUBLE_EQ(ha.samples(), 3.0);
    EXPECT_DOUBLE_EQ(ha.binCount(0), 2.0);
    EXPECT_DOUBLE_EQ(ha.binCount(4), 1.0);
    EXPECT_DOUBLE_EQ(ha.mean(), (1.0 + 1.0 + 9.0) / 3.0);
}

TEST(StatsMerge, ShapeMismatchesAreRejected)
{
    StatGroup a("a"), b("b");
    Scalar s(a, "s", "");
    Vector v3(a, "v3", "", 3), v4(b, "v4", "", 4);
    Histogram h5(a, "h5", "", 0.0, 10.0, 5);
    Histogram h8(b, "h8", "", 0.0, 10.0, 8);
    Histogram hRange(b, "hr", "", 0.0, 20.0, 5);
    EXPECT_FALSE(s.mergeFrom(v3));       // kind mismatch
    EXPECT_FALSE(v3.mergeFrom(v4));      // length mismatch
    EXPECT_FALSE(v3.mergeFrom(s));       // kind mismatch
    EXPECT_FALSE(h5.mergeFrom(h8));      // bin-count mismatch
    EXPECT_FALSE(h5.mergeFrom(hRange));  // bin-range mismatch
    EXPECT_DOUBLE_EQ(v3.total(), 0.0);   // rejected merge changes nothing
}

TEST(StatsMerge, GroupMergesRecursively)
{
    StatGroup a("run");
    StatGroup aSub(a, "bank");
    Scalar aHits(a, "hits", "");
    Vector aLat(aSub, "lat", "", 2);
    aHits += 10.0;
    aLat.add(0, 1.0);

    StatGroup b("run");
    StatGroup bSub(b, "bank");
    Scalar bHits(b, "hits", "");
    Vector bLat(bSub, "lat", "", 2);
    bHits += 5.0;
    bLat.add(1, 7.0);

    a.mergeFrom(b);
    EXPECT_DOUBLE_EQ(aHits.value(), 15.0);
    EXPECT_DOUBLE_EQ(aLat.value(0), 1.0);
    EXPECT_DOUBLE_EQ(aLat.value(1), 7.0);
}

TEST(StatsMerge, MergeIsAssociativeInFixedOrder)
{
    // Folding three congruent groups left-to-right equals folding the
    // last two first — the property the sweep join relies on.
    auto build = [](double v) {
        auto g = std::make_unique<StatGroup>("g");
        auto s = std::make_unique<Scalar>(*g, "s", "");
        s->set(v);
        return std::pair(std::move(g), std::move(s));
    };
    auto [g1, s1] = build(1.0);
    auto [g2, s2] = build(2.0);
    auto [g3, s3] = build(4.0);
    g1->mergeFrom(*g2);
    g1->mergeFrom(*g3);
    EXPECT_DOUBLE_EQ(s1->value(), 7.0);

    auto [h1, t1] = build(1.0);
    auto [h2, t2] = build(2.0);
    auto [h3, t3] = build(4.0);
    h2->mergeFrom(*h3);
    h1->mergeFrom(*h2);
    EXPECT_DOUBLE_EQ(t1->value(), 7.0);
}

TEST(StatsMergeDeath, MissingCounterpartPanics)
{
    StatGroup a("run");
    Scalar extra(a, "onlyInA", "");
    StatGroup b("run");
    // b lacks a counterpart for a's stat.
    EXPECT_DEATH(b.mergeFrom(a), "onlyInA");
}
