/**
 * @file
 * Ablation — conv mode vs matmul mode (Sections III-C1 and IV-B).
 *
 * Matmul mode raises throughput from 0.5 to 4 MACs/cycle/sub-array but
 * requires unrolled (im2col) inputs whose storage expands by ~kernel
 * area. This ablation forces each mode across the CNNs and reports
 * where the automatic policy lands.
 */

#include <cstdio>

#include "core/bfree.hh"
#include "core/report.hh"
#include "dnn/im2col.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;

    std::printf("Ablation — execution mode policy\n\n");
    std::printf("%-14s %12s %12s %12s\n", "network", "forced conv",
                "forced mm", "auto");
    for (const dnn::Network &net :
         {dnn::make_vgg16(), dnn::make_inception_v3()}) {
        double t[3];
        int i = 0;
        for (map::ExecMode mode :
             {map::ExecMode::ConvMode, map::ExecMode::MatmulMode,
              map::ExecMode::SpecialMode /* = auto */}) {
            map::ExecConfig cfg;
            cfg.mapper.forcedMode = mode;
            cfg.batch = 16;
            t[i++] = acc.run(net, cfg).secondsPerInference();
        }
        std::printf("%-14s %10.3fms %10.3fms %10.3fms\n",
                    net.name().c_str(), t[0] * 1e3, t[1] * 1e3,
                    t[2] * 1e3);
    }

    // Storage expansion that gates the policy.
    std::printf("\nim2col storage expansion of representative "
                "layers:\n");
    const dnn::Network vgg = dnn::make_vgg16();
    for (const dnn::Layer &l : vgg.layers()) {
        if (l.kind != dnn::LayerKind::Conv)
            continue;
        std::printf("  %-10s %5.1fx (%6.2f MB unrolled)\n",
                    l.name.c_str(), dnn::storage_expansion(l),
                    static_cast<double>(dnn::unrolled_input_bytes(l))
                        / 1e6);
    }
    std::printf("\nauto mode should track the faster of the two forced "
                "settings per network.\n");
    return 0;
}
