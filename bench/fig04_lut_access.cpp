/**
 * @file
 * Fig. 4(c) — Latency and energy of the three LUT integration
 * strategies (Section III-B).
 *
 * Paper's point: decoupled bitlines with a local precharge make LUT
 * lookups 3x faster and 231x more energy efficient than rows sharing
 * the full partition bitline, for +0.5% sub-array area.
 */

#include <cstdio>

#include "tech/access_breakdown.hh"

int
main()
{
    using namespace bfree::tech;

    const TechParams tech;
    const auto space = lut_design_space(tech);
    const LutAccessCost &shared = space[1];

    std::printf("Fig. 4(c) — LUT access design space\n\n");
    std::printf("%-20s %12s %12s %10s %10s %10s\n", "design",
                "latency(ns)", "energy(pJ)", "lat gain", "en gain",
                "area");
    for (const LutAccessCost &c : space) {
        std::printf("%-20s %12.3f %12.4f %9.2fx %9.1fx %9.2f%%\n",
                    c.name.c_str(), c.latencyNs, c.energyPj,
                    shared.latencyNs / c.latencyNs,
                    shared.energyPj / c.energyPj,
                    100.0 * c.areaFraction);
    }

    std::printf("\npaper: decoupled bitline is 3x faster and 231x more "
                "energy efficient than shared bitline at 0.5%% area\n");
    return 0;
}
