/**
 * @file
 * Table II — Summary of neural network workloads: layers, parameters
 * and multiplies of each evaluated network, derived from the rebuilt
 * architectures.
 *
 * Each network is rebuilt and characterized in its own sweep job
 * (--threads N, default: hardware concurrency); rows are joined in
 * job-index order, so the table is bit-identical for any thread count.
 */

#include <cstdio>
#include <iostream>

#include "dnn/model_zoo.hh"
#include "sim/parallel.hh"

namespace {

using namespace bfree;

void
row(std::ostream &os, const dnn::Network &net, const char *paper_params,
    const char *paper_mults, const char *dataset)
{
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-14s %7u %9.1fM %9.2fG   %-9s (paper: %s params, %s "
                  "mults)\n",
                  net.name().c_str(), net.reportedDepth,
                  static_cast<double>(net.totalParams()) / 1e6,
                  static_cast<double>(net.totalMacs()) / 1e9, dataset,
                  paper_params, paper_mults);
    os << line;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfree::dnn;

    const unsigned threads = bfree::sim::threads_from_args(argc, argv);

    std::vector<bfree::sim::SweepJob> jobs;
    jobs.push_back({"inception", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_inception_v3(), "24M", "4.7G", "ImageNet");
    }});
    jobs.push_back({"vgg16", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_vgg16(), "138M", "15.5G", "ImageNet");
    }});
    jobs.push_back({"lstm", [](bfree::sim::SweepContext &ctx) {
        const Network lstm = make_lstm();
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-14s %7u %9.1fM %9.2fM   %-9s (paper: 4.3M "
                      "params, 4.35M mults/step)\n",
                      lstm.name().c_str(), lstm.reportedDepth,
                      static_cast<double>(lstm.totalParams()) / 1e6,
                      static_cast<double>(lstm.totalMacs()) / 1e6,
                      "TIMIT");
        ctx.out << line;
    }});
    jobs.push_back({"bert_base", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_bert_base(), "87M", "11.1G", "MRPC");
    }});
    jobs.push_back({"bert_large", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_bert_large(), "324M", "39.5G", "MRPC");
    }});

    bfree::sim::SweepRunner sweeper(threads);
    const bfree::sim::SweepReport report = sweeper.run(std::move(jobs));

    std::printf("Table II — summary of neural network workloads\n\n");
    std::printf("%-14s %7s %10s %10s   %-9s\n", "network", "layers",
                "params", "mults", "dataset");
    std::cout << report.output();

    std::printf("\nnote: 'layers' is the publication's depth; branched "
                "topologies flatten to more operators (Inception-v3: "
                "%zu MAC layers).\n",
                make_inception_v3().computeLayerCount());
    return 0;
}
