/**
 * @file
 * Table II — Summary of neural network workloads: layers, parameters
 * and multiplies of each evaluated network, derived from the rebuilt
 * architectures, plus the functional execution-plan footprint (the
 * steady-state scratch arena a compiled core::NetworkPlan would
 * reserve; '-' where the flattened layer list cannot be planned, e.g.
 * branched Inception or the BERT residual/LayerNorm blocks).
 *
 * Each network is rebuilt and characterized in its own sweep job
 * (--threads N, default: hardware concurrency); rows are joined in
 * job-index order, so the table is bit-identical for any thread count.
 */

#include <cstdio>
#include <iostream>

#include "core/network_plan.hh"
#include "dnn/model_zoo.hh"
#include "sim/parallel.hh"

namespace {

using namespace bfree;

/** Plan arena column: "12.3K" / "24.5M" or "-" when unplannable. */
void
plan_arena(const dnn::Network &net, char *buf, std::size_t len)
{
    core::PlanStats ps;
    if (!core::NetworkPlan::tryEstimate(net, 8, ps)) {
        std::snprintf(buf, len, "%9s", "-");
        return;
    }
    const double bytes = static_cast<double>(ps.arenaBytes);
    if (bytes >= 1024.0 * 1024.0)
        std::snprintf(buf, len, "%8.1fM", bytes / (1024.0 * 1024.0));
    else
        std::snprintf(buf, len, "%8.1fK", bytes / 1024.0);
}

void
row(std::ostream &os, const dnn::Network &net, const char *paper_params,
    const char *paper_mults, const char *dataset)
{
    char arena[16];
    plan_arena(net, arena, sizeof(arena));
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%-14s %7u %9.1fM %9.2fG %s   %-9s (paper: %s params, "
                  "%s mults)\n",
                  net.name().c_str(), net.reportedDepth,
                  static_cast<double>(net.totalParams()) / 1e6,
                  static_cast<double>(net.totalMacs()) / 1e9, arena,
                  dataset, paper_params, paper_mults);
    os << line;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfree::dnn;

    const unsigned threads = bfree::sim::threads_from_args(argc, argv);

    std::vector<bfree::sim::SweepJob> jobs;
    jobs.push_back({"inception", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_inception_v3(), "24M", "4.7G", "ImageNet");
    }});
    jobs.push_back({"vgg16", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_vgg16(), "138M", "15.5G", "ImageNet");
    }});
    jobs.push_back({"lstm", [](bfree::sim::SweepContext &ctx) {
        const Network lstm = make_lstm();
        char arena[16];
        plan_arena(lstm, arena, sizeof(arena));
        char line[192];
        std::snprintf(line, sizeof(line),
                      "%-14s %7u %9.1fM %9.2fM %s   %-9s (paper: 4.3M "
                      "params, 4.35M mults/step)\n",
                      lstm.name().c_str(), lstm.reportedDepth,
                      static_cast<double>(lstm.totalParams()) / 1e6,
                      static_cast<double>(lstm.totalMacs()) / 1e6, arena,
                      "TIMIT");
        ctx.out << line;
    }});
    jobs.push_back({"bert_base", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_bert_base(), "87M", "11.1G", "MRPC");
    }});
    jobs.push_back({"bert_large", [](bfree::sim::SweepContext &ctx) {
        row(ctx.out, make_bert_large(), "324M", "39.5G", "MRPC");
    }});

    bfree::sim::SweepRunner sweeper(threads);
    const bfree::sim::SweepReport report = sweeper.run(std::move(jobs));

    std::printf("Table II — summary of neural network workloads\n\n");
    std::printf("%-14s %7s %10s %10s %9s   %-9s\n", "network", "layers",
                "params", "mults", "plan", "dataset");
    std::cout << report.output();

    std::printf("\nnote: 'layers' is the publication's depth; branched "
                "topologies flatten to more operators (Inception-v3: "
                "%zu MAC layers). 'plan' is the steady-state scratch "
                "arena of a compiled execution plan.\n",
                make_inception_v3().computeLayerCount());
    return 0;
}
