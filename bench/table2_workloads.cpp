/**
 * @file
 * Table II — Summary of neural network workloads: layers, parameters
 * and multiplies of each evaluated network, derived from the rebuilt
 * architectures.
 */

#include <cstdio>

#include "dnn/model_zoo.hh"

namespace {

void
row(const bfree::dnn::Network &net, const char *paper_params,
    const char *paper_mults, const char *dataset)
{
    std::printf("%-14s %7u %9.1fM %9.2fG   %-9s (paper: %s params, %s "
                "mults)\n",
                net.name().c_str(), net.reportedDepth,
                static_cast<double>(net.totalParams()) / 1e6,
                static_cast<double>(net.totalMacs()) / 1e9, dataset,
                paper_params, paper_mults);
}

} // namespace

int
main()
{
    using namespace bfree::dnn;

    std::printf("Table II — summary of neural network workloads\n\n");
    std::printf("%-14s %7s %10s %10s   %-9s\n", "network", "layers",
                "params", "mults", "dataset");

    row(make_inception_v3(), "24M", "4.7G", "ImageNet");
    row(make_vgg16(), "138M", "15.5G", "ImageNet");

    const Network lstm = make_lstm();
    std::printf("%-14s %7u %9.1fM %9.2fM   %-9s (paper: 4.3M params, "
                "4.35M mults/step)\n",
                lstm.name().c_str(), lstm.reportedDepth,
                static_cast<double>(lstm.totalParams()) / 1e6,
                static_cast<double>(lstm.totalMacs()) / 1e6, "TIMIT");

    row(make_bert_base(), "87M", "11.1G", "MRPC");
    row(make_bert_large(), "324M", "39.5G", "MRPC");

    std::printf("\nnote: 'layers' is the publication's depth; branched "
                "topologies flatten to more operators (Inception-v3: "
                "%zu MAC layers).\n",
                make_inception_v3().computeLayerCount());
    return 0;
}
