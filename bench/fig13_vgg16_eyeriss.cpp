/**
 * @file
 * Fig. 13 — Layer-wise latency of VGG-16: BFree in one 2.5 MB slice vs
 * an iso-area, iso-frequency Eyeriss (12x12 8-bit PEs).
 *
 * Paper headline: BFree is 3.97x faster; execution is dominated by
 * weight/input loading rather than compute (~10% compute).
 */

#include <cstdio>
#include <iostream>

#include "core/bfree.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;
    map::ExecConfig cfg;
    cfg.mapper.slices = 1; // one 2.5 MB slice (iso-area setup)

    const dnn::Network vgg = dnn::make_vgg16();
    const map::RunResult bf = acc.run(vgg, cfg);
    const map::RunResult ey = acc.runEyeriss(vgg);

    const auto pes = tech::iso_area_eyeriss_pes(acc.geometry(),
                                                acc.techParams());
    std::printf("Fig. 13 — VGG-16, BFree slice vs iso-area Eyeriss "
                "(%u PEs)\n\n", pes);
    std::printf("%-12s %14s %14s %9s\n", "layer", "BFree(ms)",
                "Eyeriss(ms)", "speedup");
    for (std::size_t i = 0; i < bf.layers.size(); ++i) {
        if (bf.layers[i].macs == 0)
            continue;
        const double tb = bf.layers[i].time.total() * 1e3;
        const double te = ey.layers[i].time.total() * 1e3;
        std::printf("%-12s %14.3f %14.3f %8.2fx\n",
                    bf.layers[i].name.c_str(), tb, te, te / tb);
    }

    std::printf("\ntotals\n");
    core::print_phase_shares(std::cout, "BFree phases", bf.time);
    std::printf("BFree:   %s\nEyeriss: %s\nspeedup: %.2fx "
                "(paper 3.97x)\n",
                core::format_seconds(bf.secondsPerInference()).c_str(),
                core::format_seconds(ey.secondsPerInference()).c_str(),
                ey.secondsPerInference() / bf.secondsPerInference());
    std::printf("compute share of BFree runtime: %.1f%% (paper: ~10%%, "
                "load dominated)\n",
                100.0 * bf.time.compute / bf.secondsPerInference());
    return 0;
}
