/**
 * @file
 * Fig. 14 — VGG-16 latency breakdown with varied main-memory bandwidth
 * (DRAM 20 GB/s, eDRAM 64 GB/s, HBM 100 GB/s), batch sizes 1 and 16,
 * at uniform 8-bit and layer-wise mixed 4/8-bit precision.
 *
 * Paper's points: batch-16 runs are input-load bound on DRAM/eDRAM and
 * become compute bound on HBM; mixed precision cuts ~50% of the
 * execution time since most layers run at 4-bit.
 */

#include <cstdio>

#include "core/bfree.hh"
#include "core/report.hh"
#include "dnn/quantize.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;

    dnn::Network vgg8 = dnn::make_vgg16();
    dnn::Network vggmix = dnn::make_vgg16();
    dnn::apply_mixed_precision(vggmix);

    std::printf("Fig. 14 — VGG-16 latency breakdown vs main-memory "
                "bandwidth\n");
    std::printf("(mixed precision: %.0f%% of MACs at 4-bit)\n\n",
                100.0 * dnn::fraction_macs_at_4bit(vggmix));
    std::printf("%-7s %5s %-7s %12s %12s %12s %12s %12s\n", "memory",
                "batch", "prec", "weight(ms)", "input(ms)",
                "compute(ms)", "other(ms)", "total(ms)");

    for (auto kind : {tech::MainMemoryKind::DRAM,
                      tech::MainMemoryKind::EDRAM,
                      tech::MainMemoryKind::HBM}) {
        for (unsigned batch : {1u, 16u}) {
            for (const dnn::Network *net : {&vgg8, &vggmix}) {
                map::ExecConfig cfg;
                cfg.memory = kind;
                cfg.batch = batch;
                const map::RunResult r = acc.run(*net, cfg);
                const double other = r.time.special + r.time.requant
                                     + r.time.fill;
                std::printf(
                    "%-7s %5u %-7s %12.3f %12.3f %12.3f %12.3f "
                    "%12.3f\n",
                    tech::main_memory_params(kind).name(), batch,
                    net == &vgg8 ? "8-bit" : "mixed",
                    r.time.weightLoad * 1e3, r.time.inputLoad * 1e3,
                    r.time.compute * 1e3, other * 1e3,
                    r.secondsPerInference() * 1e3);
            }
        }
    }

    // The paper's two trend claims, quantified.
    map::ExecConfig dram16;
    dram16.batch = 16;
    map::ExecConfig hbm16;
    hbm16.batch = 16;
    hbm16.memory = tech::MainMemoryKind::HBM;
    const double t_dram =
        acc.run(vgg8, dram16).secondsPerInference();
    const double t_hbm = acc.run(vgg8, hbm16).secondsPerInference();
    const double t8 = acc.run(vgg8, hbm16).time.compute;
    const double tmix = acc.run(vggmix, hbm16).time.compute;
    std::printf("\nHBM vs DRAM at batch 16: %.2fx faster "
                "(input-load bottleneck relieved)\n",
                t_dram / t_hbm);
    std::printf("mixed vs 8-bit compute time: %.0f%% reduction "
                "(paper: ~50%%)\n",
                100.0 * (1.0 - tmix / t8));
    return 0;
}
