/**
 * @file
 * The abstract's headline numbers, regenerated in one run:
 *
 *   - 1.72x performance and 3.14x lower energy vs Neural Cache
 *     (Inception-v3, 35 MB LLC);
 *   - +5.6% cache area;
 *   - 3.97x vs iso-area systolic accelerator (VGG-16, one slice);
 *   - 101x / 3x speed and 91x / 11x energy vs CPU / GPU on BERT-base;
 *   - CNN ratios of Section V-D (259x/5.5x Inception, 193x/3x VGG at
 *     batch 16).
 *
 * Each comparison is an independent SweepRunner job (--threads N,
 * default: hardware concurrency). Jobs print to their private streams
 * and record their ratios as statistics; the join concatenates both in
 * job-index order, so stdout and the stats dump are bit-identical for
 * any thread count.
 */

#include <cstring>
#include <iostream>
#include <utility>

#include "core/bfree.hh"
#include "core/report.hh"
#include "sim/bench_json.hh"
#include "sim/parallel.hh"

int
main(int argc, char **argv)
{
    using namespace bfree;

    const unsigned threads = sim::threads_from_args(argc, argv);
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (!std::strcmp(argv[i], "--json"))
            json_path = argv[i + 1];
    core::BFreeAccelerator acc;

    // Pre-sized per-job slots for the machine-readable export; jobs
    // write only their own slot, so the merge stays deterministic.
    std::vector<std::vector<std::pair<const char *, double>>> exported(6);

    std::vector<sim::SweepJob> jobs;

    jobs.push_back({"neural_cache", [&](sim::SweepContext &ctx) {
        map::ExecConfig cfg;
        cfg.mapper.forcedMode = map::ExecMode::ConvMode;
        const auto net = dnn::make_inception_v3();
        const auto bf = acc.run(net, cfg);
        const auto nc = acc.runNeuralCache(net, cfg);
        const double speed =
            nc.secondsPerInference() / bf.secondsPerInference();
        const double energy =
            nc.joulesPerInference() / bf.joulesPerInference();
        char line[128];
        std::snprintf(line, sizeof(line),
                      "vs Neural Cache (Inception-v3): %.2fx speed "
                      "(1.72x), %.2fx energy (3.14x)\n",
                      speed, energy);
        ctx.out << line;
        ctx.scalar("speedup", "speed vs baseline").set(speed);
        ctx.scalar("energy_ratio", "energy vs baseline").set(energy);
        exported[ctx.jobIndex] = {{"neural_cache_speedup", speed},
                                  {"neural_cache_energy_ratio", energy}};
    }});

    jobs.push_back({"area", [&](sim::SweepContext &ctx) {
        char line[64];
        const double overhead = 100.0 * acc.area().totalOverheadFraction;
        std::snprintf(line, sizeof(line),
                      "cache area overhead: %.2f%% (5.6%%)\n", overhead);
        ctx.out << line;
        ctx.scalar("area_overhead_pct", "added cache area %").set(overhead);
        exported[ctx.jobIndex] = {{"area_overhead_pct", overhead}};
    }});

    jobs.push_back({"eyeriss", [&](sim::SweepContext &ctx) {
        map::ExecConfig cfg;
        cfg.mapper.slices = 1;
        const auto vgg = dnn::make_vgg16();
        const double speed = acc.runEyeriss(vgg).secondsPerInference()
                             / acc.run(vgg, cfg).secondsPerInference();
        char line[80];
        std::snprintf(line, sizeof(line),
                      "vs iso-area Eyeriss (VGG-16): %.2fx (3.97x)\n",
                      speed);
        ctx.out << line;
        ctx.scalar("speedup", "speed vs baseline").set(speed);
        exported[ctx.jobIndex] = {{"eyeriss_speedup", speed}};
    }});

    jobs.push_back({"bert_cpu_gpu", [&](sim::SweepContext &ctx) {
        const auto bert = dnn::make_bert_base();
        const auto bf = acc.run(bert);
        const auto cpu = acc.runCpu(bert, 1);
        const auto gpu = acc.runGpu(bert, 1);
        char line[160];
        std::snprintf(line, sizeof(line),
                      "BERT-base vs CPU: %.0fx speed (101x), %.0fx "
                      "energy (91x)\n",
                      cpu.secondsPerInference / bf.secondsPerInference(),
                      cpu.joulesPerInference / bf.joulesPerInference());
        ctx.out << line;
        std::snprintf(line, sizeof(line),
                      "BERT-base vs GPU: %.1fx speed (3x), %.1fx energy "
                      "(11x)\n",
                      gpu.secondsPerInference / bf.secondsPerInference(),
                      gpu.joulesPerInference / bf.joulesPerInference());
        ctx.out << line;
        ctx.scalar("cpu_speedup", "speed vs CPU")
            .set(cpu.secondsPerInference / bf.secondsPerInference());
        ctx.scalar("gpu_speedup", "speed vs GPU")
            .set(gpu.secondsPerInference / bf.secondsPerInference());
        exported[ctx.jobIndex] = {
            {"bert_cpu_speedup",
             cpu.secondsPerInference / bf.secondsPerInference()},
            {"bert_gpu_speedup",
             gpu.secondsPerInference / bf.secondsPerInference()}};
    }});

    jobs.push_back({"cnn_batch16", [&](sim::SweepContext &ctx) {
        for (const dnn::Network &net :
             {dnn::make_inception_v3(), dnn::make_vgg16()}) {
            map::ExecConfig cfg;
            cfg.batch = 16;
            const auto bf = acc.run(net, cfg);
            const auto cpu = acc.runCpu(net, 16);
            const auto gpu = acc.runGpu(net, 16);
            char line[200];
            std::snprintf(
                line, sizeof(line),
                "%s (batch 16) vs CPU/GPU: %.0fx / %.1fx speed, "
                "%.0fx / %.1fx energy\n",
                net.name().c_str(),
                cpu.secondsPerInference / bf.secondsPerInference(),
                gpu.secondsPerInference / bf.secondsPerInference(),
                cpu.joulesPerInference / bf.joulesPerInference(),
                gpu.joulesPerInference / bf.joulesPerInference());
            ctx.out << line;
        }
    }});

    jobs.push_back({"functional_plan", [&](sim::SweepContext &ctx) {
        // The execution-plan layer end to end: compile once, amortize
        // across a batch on the pool. Everything printed here is
        // deterministic (counts and bytes, no wall clock), so the
        // 1-vs-N-thread determinism check covers this job too.
        const auto net = dnn::make_tiny_cnn();
        sim::Rng rng(12);
        const core::NetworkWeights weights =
            core::random_weights(net, rng);
        const core::NetworkPlan plan = acc.compilePlan(net, weights, 8);

        std::vector<dnn::FloatTensor> batch;
        for (int i = 0; i < 8; ++i) {
            dnn::FloatTensor in({1, 8, 8});
            in.fillUniform(rng, 0.0, 1.0);
            batch.push_back(std::move(in));
        }
        const core::BatchResult r = acc.runFunctionalBatch(plan, batch);

        char line[160];
        std::snprintf(line, sizeof(line),
                      "functional plan (tiny CNN): %zu layers frozen "
                      "once (%.1f KB), arena %zu B, %llu-input batch, "
                      "%.2f MMACs\n",
                      plan.layers().size(),
                      static_cast<double>(plan.stats().frozenWeightBytes)
                          / 1024.0,
                      plan.stats().arenaBytes,
                      static_cast<unsigned long long>(plan.runsServed()),
                      static_cast<double>(r.stats.macs) / 1e6);
        ctx.out << line;
        ctx.scalar("plan_arena_bytes", "steady-state scratch arena")
            .set(static_cast<double>(plan.stats().arenaBytes));
        ctx.scalar("plan_runs_served", "inferences amortized")
            .set(static_cast<double>(plan.runsServed()));
        exported[ctx.jobIndex] = {
            {"plan_arena_bytes",
             static_cast<double>(plan.stats().arenaBytes)},
            {"plan_frozen_values",
             static_cast<double>(plan.stats().frozenValues)},
            {"plan_batch_macs", static_cast<double>(r.stats.macs)}};
    }});

    sim::SweepRunner sweeper(threads);
    const sim::SweepReport report = sweeper.run(std::move(jobs));

    std::cout << "BFree headline summary (paper value in parentheses)\n";
    std::cout << "====================================================\n";
    std::cout << report.output();
    std::cout << "(paper: Inception 259x/5.5x speed & 307x/11.8x "
                 "energy; VGG-16 193x/3x & 253x/7x)\n";
    std::cout << "\nmerged sweep statistics (job-index order):\n";
    report.dumpStats(std::cout);

    if (!json_path.empty()) {
        // Append to an existing document (e.g. micro_datapath's
        // BENCH_pr3.json) rather than clobbering it.
        sim::BenchJson json;
        json.load(json_path);
        for (const auto &slot : exported)
            for (const auto &kv : slot)
                json.set("headline_summary", kv.first, kv.second);
        if (!json.save(json_path)) {
            std::cerr << "cannot write " << json_path << "\n";
            return 1;
        }
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
