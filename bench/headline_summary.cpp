/**
 * @file
 * The abstract's headline numbers, regenerated in one run:
 *
 *   - 1.72x performance and 3.14x lower energy vs Neural Cache
 *     (Inception-v3, 35 MB LLC);
 *   - +5.6% cache area;
 *   - 3.97x vs iso-area systolic accelerator (VGG-16, one slice);
 *   - 101x / 3x speed and 91x / 11x energy vs CPU / GPU on BERT-base;
 *   - CNN ratios of Section V-D (259x/5.5x Inception, 193x/3x VGG at
 *     batch 16).
 */

#include <cstdio>

#include "core/bfree.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;
    std::printf("BFree headline summary (paper value in parentheses)\n");
    std::printf("====================================================\n");

    // Neural Cache comparison.
    {
        map::ExecConfig cfg;
        cfg.mapper.forcedMode = map::ExecMode::ConvMode;
        const auto net = dnn::make_inception_v3();
        const auto bf = acc.run(net, cfg);
        const auto nc = acc.runNeuralCache(net, cfg);
        std::printf("vs Neural Cache (Inception-v3): %.2fx speed "
                    "(1.72x), %.2fx energy (3.14x)\n",
                    nc.secondsPerInference() / bf.secondsPerInference(),
                    nc.joulesPerInference() / bf.joulesPerInference());
    }

    // Area.
    std::printf("cache area overhead: %.2f%% (5.6%%)\n",
                100.0 * acc.area().totalOverheadFraction);

    // Eyeriss.
    {
        map::ExecConfig cfg;
        cfg.mapper.slices = 1;
        const auto vgg = dnn::make_vgg16();
        std::printf("vs iso-area Eyeriss (VGG-16): %.2fx (3.97x)\n",
                    acc.runEyeriss(vgg).secondsPerInference()
                        / acc.run(vgg, cfg).secondsPerInference());
    }

    // BERT-base vs CPU / GPU.
    {
        const auto bert = dnn::make_bert_base();
        const auto bf = acc.run(bert);
        const auto cpu = acc.runCpu(bert, 1);
        const auto gpu = acc.runGpu(bert, 1);
        std::printf("BERT-base vs CPU: %.0fx speed (101x), %.0fx "
                    "energy (91x)\n",
                    cpu.secondsPerInference / bf.secondsPerInference(),
                    cpu.joulesPerInference / bf.joulesPerInference());
        std::printf("BERT-base vs GPU: %.1fx speed (3x), %.1fx energy "
                    "(11x)\n",
                    gpu.secondsPerInference / bf.secondsPerInference(),
                    gpu.joulesPerInference / bf.joulesPerInference());
    }

    // Section V-D CNN ratios at batch 16.
    for (const dnn::Network &net :
         {dnn::make_inception_v3(), dnn::make_vgg16()}) {
        map::ExecConfig cfg;
        cfg.batch = 16;
        const auto bf = acc.run(net, cfg);
        const auto cpu = acc.runCpu(net, 16);
        const auto gpu = acc.runGpu(net, 16);
        std::printf("%s (batch 16) vs CPU/GPU: %.0fx / %.1fx speed, "
                    "%.0fx / %.1fx energy\n",
                    net.name().c_str(),
                    cpu.secondsPerInference / bf.secondsPerInference(),
                    gpu.secondsPerInference / bf.secondsPerInference(),
                    cpu.joulesPerInference / bf.joulesPerInference(),
                    gpu.joulesPerInference / bf.joulesPerInference());
    }
    std::printf("(paper: Inception 259x/5.5x speed & 307x/11.8x "
                "energy; VGG-16 193x/3x & 253x/7x)\n");
    return 0;
}
