/**
 * @file
 * Micro-benchmarks (google-benchmark) of the functional LUT datapath:
 * host-side throughput of the operand analyzer, BCE multiply paths,
 * LUT division, PWL evaluation and the detailed chain simulator.
 * These measure the simulator itself, not the modelled hardware.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bce/bce.hh"
#include "lut/division.hh"
#include "lut/operand_analyzer.hh"
#include "lut/pwl.hh"
#include "map/detailed_sim.hh"
#include "sim/random.hh"

namespace {

using namespace bfree;

void
BM_OperandAnalyzerMultiply8(benchmark::State &state)
{
    lut::MultLut table;
    sim::Rng rng(1);
    std::vector<std::int32_t> a(1024);
    std::vector<std::int32_t> b(1024);
    for (int i = 0; i < 1024; ++i) {
        a[i] = static_cast<std::int32_t>(rng.uniformInt(-128, 127));
        b[i] = static_cast<std::int32_t>(rng.uniformInt(-128, 127));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lut::multiply_signed(a[i & 1023], b[i & 1023], 8, table));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperandAnalyzerMultiply8);

void
BM_OperandAnalyzerMultiply16(benchmark::State &state)
{
    lut::MultLut table;
    sim::Rng rng(2);
    std::vector<std::int32_t> a(1024);
    std::vector<std::int32_t> b(1024);
    for (int i = 0; i < 1024; ++i) {
        a[i] = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
        b[i] = static_cast<std::int32_t>(rng.uniformInt(-32768, 32767));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lut::multiply_signed(a[i & 1023], b[i & 1023], 16, table));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OperandAnalyzerMultiply16);

void
BM_BceDotProduct(benchmark::State &state)
{
    const auto len = static_cast<std::size_t>(state.range(0));
    tech::CacheGeometry geom;
    tech::TechParams tp;
    mem::EnergyAccount energy;
    mem::Subarray sa(geom, tp, energy);
    bce::Bce engine(sa, tp, energy);
    engine.loadMultLutImage();
    engine.setMode(bce::BceMode::Conv);

    sim::Rng rng(3);
    std::vector<std::int8_t> weights(len);
    std::vector<std::int8_t> inputs(len);
    for (std::size_t i = 0; i < len; ++i) {
        weights[i] = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
        inputs[i] = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    }
    sa.write(0, reinterpret_cast<std::uint8_t *>(weights.data()), len);

    for (auto _ : state)
        benchmark::DoNotOptimize(
            engine.dotProduct(0, inputs.data(), len, 8));
    state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_BceDotProduct)->Arg(16)->Arg(64)->Arg(256);

void
BM_LutDivision(benchmark::State &state)
{
    lut::DivisionLut div(4);
    sim::Rng rng(4);
    std::vector<double> xs(256);
    std::vector<double> ys(256);
    for (int i = 0; i < 256; ++i) {
        xs[i] = rng.uniformReal(0.1, 1e4);
        ys[i] = rng.uniformReal(0.1, 1e4);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(div.divide(xs[i & 255], ys[i & 255]));
        ++i;
    }
}
BENCHMARK(BM_LutDivision);

void
BM_PwlSigmoid(benchmark::State &state)
{
    const lut::PwlTable table = lut::make_sigmoid_table(32);
    double x = -8.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.evaluate(x));
        x += 0.001;
        if (x > 8.0)
            x = -8.0;
    }
}
BENCHMARK(BM_PwlSigmoid);

void
BM_DetailedChain(benchmark::State &state)
{
    const auto nodes = static_cast<unsigned>(state.range(0));
    tech::CacheGeometry geom;
    tech::TechParams tp;
    sim::Rng rng(5);

    std::vector<std::vector<std::int8_t>> weights(
        nodes, std::vector<std::int8_t>(8));
    for (auto &slice : weights)
        for (auto &w : slice)
            w = static_cast<std::int8_t>(rng.uniformInt(-128, 127));
    std::vector<std::vector<std::int8_t>> inputs(
        4, std::vector<std::int8_t>(std::size_t(nodes) * 8));
    for (auto &wave : inputs)
        for (auto &v : wave)
            v = static_cast<std::int8_t>(rng.uniformInt(-128, 127));

    for (auto _ : state) {
        map::DetailedSubBankSim sim(geom, tp, nodes, 8, 8);
        sim.loadWeights(weights);
        benchmark::DoNotOptimize(sim.run(inputs));
    }
}
BENCHMARK(BM_DetailedChain)->Arg(2)->Arg(8);

} // namespace
