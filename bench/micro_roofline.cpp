/**
 * @file
 * Roofline and scaling study of the SIMD tiered datapath.
 *
 * Measurements, one JSON document (default BENCH_pr10.json):
 *
 *  - host: hardware threads and the ISA the dispatcher resolved, so
 *    every number downstream can be read in context.
 *
 *  - membw: a STREAM-triad pass (c[i] = a[i] + s * b[i] over arrays
 *    far larger than LLC) giving the memory bandwidth that bounds any
 *    streaming kernel on this host.
 *
 *  - kernel_<isa>: steady-state conv/matmul MAC/s of the tiered span
 *    kernels with the dispatcher pinned to each ISA variant this
 *    binary carries AND this CPU supports (scalar always; sse42/avx2/
 *    avx512 on x86, neon on ARM). The headline conv number runs the
 *    gather-free histogram tally (the production default); a second
 *    conv point pins the delta-plane gather so the ablation
 *    hist_over_gather quantifies exactly what the factored fold buys.
 *    speedup_vs_scalar compares the headline against the scalar
 *    tiered loop.
 *
 *  - stages / stages_<mode>: whole-image wall time of one conv layer
 *    split into marshal (everything that produces int8 patches:
 *    quantize, im2col, staging, span materialization) vs the tiered
 *    span kernels, measured once per conv front-end mode (legacy,
 *    fused, elided) at the resolved ISA. Each mode section also
 *    carries its modeled marshal traffic in bytes and the bandwidth
 *    that implies, so marshal cost can be cross-checked against the
 *    triad roof. The "stages" summary keeps the legacy per-stage keys
 *    for continuity and adds the auto-resolved mode's
 *    front_half_fraction and the e2e images/s uplift of auto over
 *    forced-legacy. The three modes must produce identical kernel
 *    checksums (byte-identical patches) or the run exits 2.
 *
 *  - roofline: the tiered MAC streams two int8 operands per multiply
 *    (the tables and tallies stay cache-resident), so the bandwidth
 *    roof is membw / 2 MAC/s. achieved_fraction locates the best
 *    measured kernel against that roof.
 *
 *  - scaling: aggregate MAC/s with 1/2/4/8 ThreadPool workers, each
 *    owning a private engine (the production batch-dispatch shape).
 *    On a 1-hardware-thread host the efficiency figures could only
 *    measure oversubscription, so the section records skipped = 1 and
 *    nothing else is emitted or gated.
 *
 * With --check-baseline FILE the run exits 1 on a >5x collapse of any
 * kernel point present in both the run and the baseline.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bce/bce.hh"
#include "bce/simd_kernels.hh"
#include "dnn/im2col.hh"
#include "dnn/layer.hh"
#include "dnn/quantize.hh"
#include "mem/energy_account.hh"
#include "mem/subarray.hh"
#include "sim/bench_json.hh"
#include "sim/cpuid.hh"
#include "sim/parallel.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace {

using namespace bfree;

/** A self-contained tiered BCE rig. */
struct Engine
{
    tech::CacheGeometry geom{};
    tech::TechParams tech{};
    mem::EnergyAccount account;
    mem::Subarray subarray{geom, tech, account};
    bce::Bce bce{subarray, tech, account};

    explicit Engine(bce::BceMode mode)
    {
        bce.setTier(bce::ExecTier::Tiered);
        bce.loadMultLutImage();
        bce.setMode(mode);
    }
};

/** Deterministic int8 operand pattern within [-limit, limit]. */
std::vector<std::int8_t>
pattern(std::size_t n, int seed, int limit)
{
    std::vector<std::int8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int r = static_cast<int>((i * 37 + seed * 101) % 1000);
        v[i] = static_cast<std::int8_t>(r % (2 * limit + 1) - limit);
    }
    return v;
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

/**
 * STREAM-triad memory bandwidth: three float arrays well past any LLC,
 * best-of-3 timed passes, 3 streamed floats (2 loads + 1 store) per
 * element.
 */
double
measure_membw_bytes_per_s()
{
    const std::size_t n = 16u << 20; // 3 x 64 MiB of floats
    std::vector<float> a(n, 1.0f), b(n, 2.0f), c(n, 0.0f);
    const float s = 3.0f;

    double best = 0.0;
    for (int pass = 0; pass < 4; ++pass) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < n; ++i)
            c[i] = a[i] + s * b[i];
        const double secs = seconds_since(start);
        const double bytes = 3.0 * static_cast<double>(n) * sizeof(float);
        if (pass > 0 && secs > 0.0) // pass 0 is the page-fault warm-up
            best = std::max(best, bytes / secs);
        // Fold the result back in so the triad cannot be optimized out.
        a[0] += c[n - 1] * 1e-30f;
    }
    return best;
}

/** Steady-state MAC/s of one span kernel on the active ISA and tally. */
double
measure_kernel_macs_per_s(bce::BceMode mode, unsigned bits,
                          std::size_t reps, std::int64_t &checksum)
{
    const std::size_t len = 512;
    const int limit = bits == 4 ? 7 : 127;
    const std::vector<std::int8_t> a = pattern(len, 1, limit);
    const std::vector<std::int8_t> b = pattern(len, 2, limit);

    Engine e(mode);
    auto pass = [&]() -> std::int64_t {
        if (mode == bce::BceMode::Conv)
            return e.bce.dotProductSpan(a.data(), b.data(), len, bits);
        return e.bce.matmulDotSpan(a.data(), b.data(), len, bits);
    };
    checksum += pass(); // warm-up: table seeding stays untimed

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r)
        checksum += pass();
    const double secs = seconds_since(start);
    const double macs = static_cast<double>(reps) * len;
    return secs > 0.0 ? macs / secs : 0.0;
}

/** Per-image marshal cost of one conv front-end mode. */
struct MarshalResult
{
    double quantize = 0.0; ///< Plane quantize share (zero for fused).
    double marshal = 0.0;  ///< Everything producing patches, quantize
                           ///< included.

    /** Modeled marshal traffic per image in bytes (reads + writes,
     *  padded taps counted as writes only on the read side — an upper
     *  bound within a few percent for padded layers). */
    double marshalBytes = 0.0;

    /** FNV-1a over the marshalled patch bytes: the byte-identity
     *  witness compared across modes. */
    std::uint64_t patchFnv = 0;
};

/**
 * The stage-study rig: one conv layer (3x3 stride-1 pad-1, 32x16x16
 * -> 32 channels) with the production front half of core/functional.cc
 * replicated per mode, marshalling every output position's int8 patch
 * into one buffer — plane quantize + row-run im2col for legacy, the
 * fused quantize-into-patch kernel for fused, plane quantize + row
 * staging + slack8 span materialization for elided.
 *
 * Marshal and kernel are timed SEPARATELY: the kernel loop reads only
 * the marshalled patch buffer, and the modes produce byte-identical
 * patches (witnessed by patchFnv), so one shared kernel measurement
 * serves every mode and the cross-mode comparison is free of kernel
 * timing noise.
 */
struct StageRig
{
    dnn::Layer l = dnn::make_conv("stage", {32, 16, 16}, 32, 3, 1, 1);
    dnn::FeatureShape out = l.outputShape();
    std::size_t in_elems = l.input.elements();
    std::size_t patch_len =
        std::size_t(l.input.c) * l.kernelH * l.kernelW;
    std::size_t positions = std::size_t(out.h) * out.w;

    std::vector<float> in;
    dnn::SymQuant sq;
    std::vector<std::int8_t> qin, patches, staging, weights;
    std::vector<std::int32_t> offsets;
    dnn::ElisionLayout el;
    bce::simd::SpanView view;

    StageRig()
    {
        static constexpr std::size_t slack =
            bce::simd::SpanView::slackBytes;
        in.resize(in_elems);
        for (std::size_t i = 0; i < in_elems; ++i)
            in[i] = static_cast<float>(static_cast<int>(i * 13 % 255)
                                       - 127)
                    / 64.0f;
        sq.scale = 1.0 / 64.0;
        qin.resize(in_elems + slack);
        patches.resize(positions * patch_len + slack);
        weights = pattern(std::size_t(l.outChannels) * patch_len, 5,
                          127);
        el = dnn::elision_layout(l);
        staging.resize(el.staged ? el.stagingBytes + slack : 0);
        offsets.resize(el.nRuns);
        dnn::elided_offsets(l, offsets.data());
        view.offsets = offsets.data();
        view.nRuns = el.nRuns;
        view.runLen = el.runLen;
        view.slack8 = true;
    }

    /** One whole-image marshal pass in @p mode; returns the quantize
     *  share of the pass's wall time. */
    double
    marshal_once(dnn::FrontendMode mode)
    {
        double quantize = 0.0;
        const auto t0 = std::chrono::steady_clock::now();
        switch (mode) {
          case dnn::FrontendMode::Legacy:
            dnn::quantize_span(sq, in.data(), in_elems, qin.data());
            quantize = seconds_since(t0);
            for (unsigned oh = 0; oh < out.h; ++oh)
                for (unsigned ow = 0; ow < out.w; ++ow)
                    dnn::im2col_patch_i8(
                        l, qin.data(), oh, ow,
                        patches.data()
                            + (std::size_t(oh) * out.w + ow)
                                  * patch_len);
            break;
          case dnn::FrontendMode::Fused:
            for (unsigned oh = 0; oh < out.h; ++oh)
                for (unsigned ow = 0; ow < out.w; ++ow)
                    dnn::im2col_quantize_patch(
                        l, sq, in.data(), oh, ow,
                        patches.data()
                            + (std::size_t(oh) * out.w + ow)
                                  * patch_len);
            break;
          case dnn::FrontendMode::Elided: {
            dnn::quantize_span(sq, in.data(), in_elems, qin.data());
            quantize = seconds_since(t0);
            const std::int8_t *plane = qin.data();
            if (el.staged) {
                dnn::stage_plane_i8(l, qin.data(), staging.data());
                plane = staging.data();
            }
            for (unsigned oh = 0; oh < out.h; ++oh) {
                view.base = plane
                            + std::size_t(oh) * l.strideH * el.rowBytes;
                bce::simd::materialize_span_block(
                    view, out.w, l.strideW,
                    patches.data()
                        + std::size_t(oh) * out.w * patch_len,
                    patch_len);
            }
            break;
          }
        }
        return quantize;
    }

    /** Per-mode marshal timing: @p reps whole-image passes. */
    MarshalResult
    measure_marshal(dnn::FrontendMode mode, std::size_t reps)
    {
        MarshalResult r;
        marshal_once(mode); // warm-up untimed
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < reps; ++i)
            r.quantize += marshal_once(mode);
        r.marshal = seconds_since(t0);
        const double per = 1.0 / static_cast<double>(reps);
        r.quantize *= per;
        r.marshal *= per;

        std::uint64_t h = 1469598103934665603ull; // FNV offset basis
        for (std::size_t i = 0; i < positions * patch_len; ++i) {
            h ^= static_cast<std::uint8_t>(patches[i]);
            h *= 1099511628211ull;
        }
        r.patchFnv = h;

        // Modeled marshal traffic per image, all counted as touched
        // bytes (4 B read + 1 B written per quantized tap; 1 B each
        // way per copied patch byte; staging writes its zero-padded
        // strip and reads the in-bounds plane rows).
        const double patch_bytes = static_cast<double>(positions)
                                   * static_cast<double>(patch_len);
        switch (mode) {
          case dnn::FrontendMode::Legacy:
            r.marshalBytes = 5.0 * static_cast<double>(in_elems)
                             + 2.0 * patch_bytes;
            break;
          case dnn::FrontendMode::Fused:
            r.marshalBytes = 5.0 * patch_bytes;
            break;
          case dnn::FrontendMode::Elided:
            // Quantize + one whole-plane staging pass (write the
            // padded plane, read the quantized one) + the patch copy.
            r.marshalBytes =
                5.0 * static_cast<double>(in_elems) + 2.0 * patch_bytes
                + (el.staged
                       ? static_cast<double>(el.stagingBytes)
                             + static_cast<double>(in_elems)
                       : 0.0);
            break;
        }
        return r;
    }

    /** Shared kernel timing: per-image seconds of the tiered span
     *  kernel over whatever patches are currently marshalled. */
    double
    measure_kernel(std::size_t reps, std::int64_t &checksum)
    {
        Engine e(bce::BceMode::Conv);
        // Warm-up pass seeds the conv table untimed.
        for (std::size_t p = 0; p < positions; ++p)
            checksum += e.bce.dotProductSpan(
                patches.data() + p * patch_len, weights.data(),
                patch_len, 8);
        const auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            for (std::size_t p = 0; p < positions; ++p)
                for (unsigned oc = 0; oc < l.outChannels; ++oc)
                    checksum += e.bce.dotProductSpan(
                        patches.data() + p * patch_len,
                        weights.data() + std::size_t(oc) * patch_len,
                        patch_len, 8);
        return seconds_since(t0) / static_cast<double>(reps);
    }
};

/**
 * Aggregate MAC/s with @p threads pool workers, each running the
 * conv_8bit span workload on a private engine — the shape
 * run_functional_batch uses for batched inference.
 */
double
measure_scaling_macs_per_s(unsigned threads, std::size_t reps_per_thread)
{
    const std::size_t len = 512;
    const std::vector<std::int8_t> a = pattern(len, 1, 127);
    const std::vector<std::int8_t> b = pattern(len, 2, 127);

    std::vector<std::function<void()>> tasks;
    tasks.reserve(threads);
    std::vector<std::int64_t> sink(threads, 0);
    for (unsigned t = 0; t < threads; ++t) {
        tasks.push_back([&, t] {
            Engine e(bce::BceMode::Conv);
            for (std::size_t r = 0; r < reps_per_thread; ++r)
                sink[t] += e.bce.dotProductSpan(a.data(), b.data(), len,
                                                8);
        });
    }

    const auto start = std::chrono::steady_clock::now();
    sim::ThreadPool pool(threads);
    pool.run(std::move(tasks));
    const double secs = seconds_since(start);
    const double macs = static_cast<double>(threads)
                        * static_cast<double>(reps_per_thread) * len;
    return secs > 0.0 ? macs / secs : 0.0;
}

std::string
kernel_section(sim::SimdLevel level)
{
    return std::string("kernel_") + sim::simd_level_name(level);
}

constexpr sim::SimdLevel all_levels[] = {
    sim::SimdLevel::Scalar, sim::SimdLevel::Sse42, sim::SimdLevel::Neon,
    sim::SimdLevel::Avx2, sim::SimdLevel::Avx512};

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_pr10.json";
    std::string baseline_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--out"))
            out_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--check-baseline"))
            baseline_path = argv[i + 1];
    }

    const unsigned hw = sim::resolve_threads(0);
    const sim::SimdLevel dispatched = sim::active_simd_level();
    std::cout << "micro_roofline: host has " << hw
              << " hardware thread(s); dispatcher resolved "
              << sim::simd_level_name(dispatched) << "\n";

    sim::BenchJson json;
    json.set("host", "hardware_threads", static_cast<double>(hw));
    json.set("host", "simd_level", static_cast<double>(dispatched));

    // ---- Memory bandwidth roof -------------------------------------
    const double membw = measure_membw_bytes_per_s();
    json.set("membw", "triad_bytes_per_s", membw);
    std::cout << "triad bandwidth: " << membw / 1e9 << " GB/s\n";

    // ---- Per-ISA kernel points --------------------------------------
    const std::size_t reps = 20000;
    std::int64_t checksum0 = 0; // scalar reference checksums
    double scalar_conv = 0.0;
    double best_conv = 0.0;
    for (const sim::SimdLevel level : all_levels) {
        if (!sim::simd_level_compiled(level)
            || !sim::simd_level_supported(level))
            continue;
        sim::force_simd_level(level);
        std::int64_t checksum = 0;

        // Headline: the gather-free histogram tally (the default).
        bce::simd::force_tally_mode(bce::simd::TallyMode::Histogram);
        const double conv = measure_kernel_macs_per_s(
            bce::BceMode::Conv, 8, reps, checksum);
        const double mm = measure_kernel_macs_per_s(
            bce::BceMode::Matmul, 8, reps, checksum);

        // Ablation: same span, delta-plane gather pinned.
        bce::simd::force_tally_mode(bce::simd::TallyMode::Gather);
        const double conv_gather = measure_kernel_macs_per_s(
            bce::BceMode::Conv, 8, reps, checksum);
        bce::simd::reset_tally_mode();

        if (level == sim::SimdLevel::Scalar) {
            scalar_conv = conv;
            checksum0 = checksum;
        } else if (checksum != checksum0) {
            std::cerr << kernel_section(level)
                      << ": checksum diverged from scalar\n";
            return 2;
        }
        const std::string sec = kernel_section(level);
        json.set(sec, "conv_8bit_macs_per_s", conv);
        json.set(sec, "matmul_8bit_macs_per_s", mm);
        json.set(sec, "conv_8bit_gather_macs_per_s", conv_gather);
        json.set(sec, "hist_over_gather",
                 conv_gather > 0.0 ? conv / conv_gather : 0.0);
        json.set(sec, "speedup_vs_scalar",
                 scalar_conv > 0.0 ? conv / scalar_conv : 0.0);
        best_conv = std::max(best_conv, conv);
        char line[200];
        std::snprintf(line, sizeof(line),
                      "%-14s conv %10.2f MMAC/s  matmul %10.2f MMAC/s  "
                      "gather %10.2f MMAC/s  vs scalar %5.2fx\n",
                      sec.c_str(), conv / 1e6, mm / 1e6,
                      conv_gather / 1e6,
                      scalar_conv > 0.0 ? conv / scalar_conv : 0.0);
        std::cout << line;
    }
    sim::reset_simd_level();

    // ---- Per-mode front-half breakdown at the resolved ISA ----------
    {
        const std::size_t marshal_reps = 400;
        const std::size_t kernel_reps = 40;
        constexpr dnn::FrontendMode modes[] = {
            dnn::FrontendMode::Legacy, dnn::FrontendMode::Fused,
            dnn::FrontendMode::Elided};

        StageRig rig;
        const dnn::FrontendMode auto_mode =
            dnn::resolve_frontend(rig.l, 8);

        MarshalResult by_mode[3];
        for (const dnn::FrontendMode mode : modes) {
            const std::size_t m = static_cast<std::size_t>(mode);
            by_mode[m] = rig.measure_marshal(mode, marshal_reps);
            // Byte-identity gate: every mode must marshal the same
            // patch bytes.
            if (by_mode[m].patchFnv != by_mode[0].patchFnv) {
                std::cerr << "stages_"
                          << dnn::frontend_mode_name(mode)
                          << ": patch bytes diverged from legacy "
                             "(front-end modes are not byte-identical)"
                             "\n";
                return 2;
            }
        }
        // One shared kernel timing: the kernel reads identical patch
        // bytes whichever mode marshalled them, so measuring it once
        // keeps kernel noise out of the cross-mode comparison.
        std::int64_t stage_checksum = 0;
        const double kernel =
            rig.measure_kernel(kernel_reps, stage_checksum);

        for (const dnn::FrontendMode mode : modes) {
            const MarshalResult &s =
                by_mode[static_cast<std::size_t>(mode)];
            const double total = s.marshal + kernel;
            const std::string sec =
                std::string("stages_") + dnn::frontend_mode_name(mode);
            json.set(sec, "frontend_mode",
                     static_cast<double>(
                         static_cast<std::size_t>(mode)));
            json.set(sec, "quantize_ms_per_image", 1e3 * s.quantize);
            json.set(sec, "marshal_ms_per_image", 1e3 * s.marshal);
            json.set(sec, "kernel_ms_per_image", 1e3 * kernel);
            json.set(sec, "total_ms_per_image", 1e3 * total);
            json.set(sec, "images_per_s",
                     total > 0.0 ? 1.0 / total : 0.0);
            json.set(sec, "front_half_fraction",
                     total > 0.0 ? s.marshal / total : 0.0);
            json.set(sec, "marshal_bytes_per_image", s.marshalBytes);
            const double marshal_bw =
                s.marshal > 0.0 ? s.marshalBytes / s.marshal : 0.0;
            json.set(sec, "marshal_bytes_per_s", marshal_bw);
            json.set(sec, "marshal_bw_fraction_of_triad",
                     membw > 0.0 ? marshal_bw / membw : 0.0);
            char line[220];
            std::snprintf(
                line, sizeof(line),
                "stages[%-6s]%s marshal %.4f ms  kernel %.3f ms  "
                "front-half %4.1f%%  %6.1f im/s  marshal bw %5.2f "
                "GB/s\n",
                dnn::frontend_mode_name(mode),
                mode == auto_mode ? "*" : " ", 1e3 * s.marshal,
                1e3 * kernel,
                total > 0.0 ? 100.0 * s.marshal / total : 0.0,
                total > 0.0 ? 1.0 / total : 0.0, marshal_bw / 1e9);
            std::cout << line;
        }

        // Summary: legacy per-stage keys for continuity with PR 9, the
        // auto-resolved mode's figures (what production runs), and the
        // e2e uplift of auto over forced-legacy.
        const MarshalResult &lg = by_mode[0];
        const MarshalResult &au =
            by_mode[static_cast<std::size_t>(auto_mode)];
        const double legacy_total = lg.marshal + kernel;
        const double auto_total = au.marshal + kernel;
        json.set("stages", "quantize_ms_per_image", 1e3 * lg.quantize);
        json.set("stages", "im2col_ms_per_image",
                 1e3 * (lg.marshal - lg.quantize));
        json.set("stages", "kernel_ms_per_image", 1e3 * kernel);
        json.set("stages", "auto_frontend_mode",
                 static_cast<double>(auto_mode));
        json.set("stages", "front_half_fraction",
                 auto_total > 0.0 ? au.marshal / auto_total : 0.0);
        json.set("stages", "images_per_s_legacy",
                 legacy_total > 0.0 ? 1.0 / legacy_total : 0.0);
        json.set("stages", "images_per_s_auto",
                 auto_total > 0.0 ? 1.0 / auto_total : 0.0);
        json.set("stages", "auto_over_legacy_images_per_s",
                 auto_total > 0.0 ? legacy_total / auto_total : 0.0);
        char line[200];
        std::snprintf(line, sizeof(line),
                      "stages: auto=%s  front-half %4.2f%%  e2e uplift "
                      "%.3fx over legacy\n",
                      dnn::frontend_mode_name(auto_mode),
                      auto_total > 0.0
                          ? 100.0 * au.marshal / auto_total
                          : 0.0,
                      auto_total > 0.0 ? legacy_total / auto_total
                                       : 0.0);
        std::cout << line;
    }

    // ---- Roofline placement -----------------------------------------
    // The steady-state tiered MAC streams exactly the two int8
    // operands; tables and tally state are cache-resident.
    const double bytes_per_mac = 2.0;
    const double roof = membw / bytes_per_mac;
    json.set("roofline", "stream_bytes_per_mac", bytes_per_mac);
    json.set("roofline", "roofline_macs_per_s", roof);
    json.set("roofline", "achieved_fraction",
             roof > 0.0 ? best_conv / roof : 0.0);
    std::cout << "bandwidth roof " << roof / 1e6
              << " MMAC/s; best kernel reaches "
              << (roof > 0.0 ? 100.0 * best_conv / roof : 0.0) << "%\n";

    // ---- Thread scaling ---------------------------------------------
    // On a 1-hardware-thread host every multi-worker point measures
    // oversubscription, not scaling: record the skip and emit no
    // efficiency figures at all rather than misleading ones.
    if (hw <= 1) {
        json.set("scaling", "skipped", 1.0);
        json.set("scaling", "hardware_threads", static_cast<double>(hw));
        std::cout << "scaling: skipped (1 hardware thread)\n";
    } else {
        const std::size_t reps_per_thread = 20000;
        double rate1 = 0.0, rate8 = 0.0;
        json.set("scaling", "skipped", 0.0);
        for (const unsigned t : {1u, 2u, 4u, 8u}) {
            const double rate =
                measure_scaling_macs_per_s(t, reps_per_thread);
            if (t == 1)
                rate1 = rate;
            if (t == 8)
                rate8 = rate;
            const double eff =
                rate1 > 0.0 ? rate / (static_cast<double>(t) * rate1)
                            : 0.0;
            const std::string key_rate =
                "rate_t" + std::to_string(t) + "_macs_per_s";
            const std::string key_eff =
                "efficiency_t" + std::to_string(t);
            json.set("scaling", key_rate, rate);
            json.set("scaling", key_eff, eff);
            char line[120];
            std::snprintf(line, sizeof(line),
                          "threads %u: %10.2f MMAC/s  efficiency "
                          "%5.2f\n",
                          t, rate / 1e6, eff);
            std::cout << line;
        }
        json.set("scaling", "t8_over_t1",
                 rate1 > 0.0 ? rate8 / rate1 : 0.0);
        json.set("scaling", "hardware_threads", static_cast<double>(hw));
    }

    if (!json.save(out_path)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        sim::BenchJson baseline;
        if (!baseline.load(baseline_path)) {
            std::cerr << "cannot load baseline " << baseline_path << "\n";
            return 1;
        }
        bool ok = true;
        // Only a >5x collapse vs the committed baseline fails, and only
        // for kernel points this host actually measured: the gate
        // catches algorithmic regressions, not runner noise or a
        // narrower-ISA runner.
        for (const sim::SimdLevel level : all_levels) {
            const std::string sec = kernel_section(level);
            const double now = json.get(sec, "conv_8bit_macs_per_s",
                                        0.0);
            const double ref = baseline.get(sec, "conv_8bit_macs_per_s",
                                            0.0);
            if (now > 0.0 && ref > 0.0 && now < ref / 5.0) {
                std::cerr << sec << ": conv " << now
                          << " MAC/s is >5x below baseline " << ref
                          << "\n";
                ok = false;
            }
        }
        {
            // The front half must not regress: a >5x collapse of the
            // production (auto) whole-image rate fails like a kernel
            // collapse would.
            const double now =
                json.get("stages", "images_per_s_auto", 0.0);
            const double ref =
                baseline.get("stages", "images_per_s_auto", 0.0);
            if (now > 0.0 && ref > 0.0 && now < ref / 5.0) {
                std::cerr << "stages: images_per_s_auto " << now
                          << " is >5x below baseline " << ref << "\n";
                ok = false;
            }
        }
        if (json.get("scaling", "skipped", 1.0) != 0.0) {
            std::cout << "note: scaling skipped on this host; points "
                         "not gated\n";
        } else {
            const double now = json.get("scaling", "t8_over_t1", 0.0);
            const double ref = baseline.get("scaling", "t8_over_t1",
                                            0.0);
            if (ref > 0.0 && now < ref / 5.0) {
                std::cerr << "scaling: t8_over_t1 " << now
                          << " is >5x below baseline " << ref << "\n";
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::cout << "baseline check passed (threshold: 5x)\n";
    }
    return 0;
}
