/**
 * @file
 * Roofline and scaling study of the SIMD tiered datapath.
 *
 * Measurements, one JSON document (default BENCH_pr9.json):
 *
 *  - host: hardware threads and the ISA the dispatcher resolved, so
 *    every number downstream can be read in context.
 *
 *  - membw: a STREAM-triad pass (c[i] = a[i] + s * b[i] over arrays
 *    far larger than LLC) giving the memory bandwidth that bounds any
 *    streaming kernel on this host.
 *
 *  - kernel_<isa>: steady-state conv/matmul MAC/s of the tiered span
 *    kernels with the dispatcher pinned to each ISA variant this
 *    binary carries AND this CPU supports (scalar always; sse42/avx2/
 *    avx512 on x86, neon on ARM). The headline conv number runs the
 *    gather-free histogram tally (the production default); a second
 *    conv point pins the delta-plane gather so the ablation
 *    hist_over_gather quantifies exactly what the factored fold buys.
 *    speedup_vs_scalar compares the headline against the scalar
 *    tiered loop.
 *
 *  - stages: per-stage wall time of one conv layer's full front half
 *    vs its span kernels at the resolved ISA — quantize_span over the
 *    input plane, im2col_patch_i8 over every output position, then
 *    the tiered dot-product spans. front_half_fraction is the
 *    quantize+im2col share of the total; the PR 9 vectorization is
 *    aimed at driving it down.
 *
 *  - roofline: the tiered MAC streams two int8 operands per multiply
 *    (the tables and tallies stay cache-resident), so the bandwidth
 *    roof is membw / 2 MAC/s. achieved_fraction locates the best
 *    measured kernel against that roof.
 *
 *  - scaling: aggregate MAC/s with 1/2/4/8 ThreadPool workers, each
 *    owning a private engine (the production batch-dispatch shape).
 *    On a 1-hardware-thread host the efficiency figures could only
 *    measure oversubscription, so the section records skipped = 1 and
 *    nothing else is emitted or gated.
 *
 * With --check-baseline FILE the run exits 1 on a >5x collapse of any
 * kernel point present in both the run and the baseline.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bce/bce.hh"
#include "bce/simd_kernels.hh"
#include "dnn/im2col.hh"
#include "dnn/layer.hh"
#include "dnn/quantize.hh"
#include "mem/energy_account.hh"
#include "mem/subarray.hh"
#include "sim/bench_json.hh"
#include "sim/cpuid.hh"
#include "sim/parallel.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace {

using namespace bfree;

/** A self-contained tiered BCE rig. */
struct Engine
{
    tech::CacheGeometry geom{};
    tech::TechParams tech{};
    mem::EnergyAccount account;
    mem::Subarray subarray{geom, tech, account};
    bce::Bce bce{subarray, tech, account};

    explicit Engine(bce::BceMode mode)
    {
        bce.setTier(bce::ExecTier::Tiered);
        bce.loadMultLutImage();
        bce.setMode(mode);
    }
};

/** Deterministic int8 operand pattern within [-limit, limit]. */
std::vector<std::int8_t>
pattern(std::size_t n, int seed, int limit)
{
    std::vector<std::int8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int r = static_cast<int>((i * 37 + seed * 101) % 1000);
        v[i] = static_cast<std::int8_t>(r % (2 * limit + 1) - limit);
    }
    return v;
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - start)
        .count();
}

/**
 * STREAM-triad memory bandwidth: three float arrays well past any LLC,
 * best-of-3 timed passes, 3 streamed floats (2 loads + 1 store) per
 * element.
 */
double
measure_membw_bytes_per_s()
{
    const std::size_t n = 16u << 20; // 3 x 64 MiB of floats
    std::vector<float> a(n, 1.0f), b(n, 2.0f), c(n, 0.0f);
    const float s = 3.0f;

    double best = 0.0;
    for (int pass = 0; pass < 4; ++pass) {
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < n; ++i)
            c[i] = a[i] + s * b[i];
        const double secs = seconds_since(start);
        const double bytes = 3.0 * static_cast<double>(n) * sizeof(float);
        if (pass > 0 && secs > 0.0) // pass 0 is the page-fault warm-up
            best = std::max(best, bytes / secs);
        // Fold the result back in so the triad cannot be optimized out.
        a[0] += c[n - 1] * 1e-30f;
    }
    return best;
}

/** Steady-state MAC/s of one span kernel on the active ISA and tally. */
double
measure_kernel_macs_per_s(bce::BceMode mode, unsigned bits,
                          std::size_t reps, std::int64_t &checksum)
{
    const std::size_t len = 512;
    const int limit = bits == 4 ? 7 : 127;
    const std::vector<std::int8_t> a = pattern(len, 1, limit);
    const std::vector<std::int8_t> b = pattern(len, 2, limit);

    Engine e(mode);
    auto pass = [&]() -> std::int64_t {
        if (mode == bce::BceMode::Conv)
            return e.bce.dotProductSpan(a.data(), b.data(), len, bits);
        return e.bce.matmulDotSpan(a.data(), b.data(), len, bits);
    };
    checksum += pass(); // warm-up: table seeding stays untimed

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < reps; ++r)
        checksum += pass();
    const double secs = seconds_since(start);
    const double macs = static_cast<double>(reps) * len;
    return secs > 0.0 ? macs / secs : 0.0;
}

/** Wall seconds per stage of one conv image at the active ISA. */
struct StageSeconds
{
    double quantize = 0.0;
    double im2col = 0.0;
    double kernel = 0.0;
};

/**
 * The production conv pipeline of core/functional.cc, staged and timed
 * separately: quantize the whole input plane once, extract every int8
 * patch with the row-run copies, then run the tiered span kernel per
 * (output position, output channel). Patches are staged into one
 * buffer so the kernel timing reads exactly what im2col produced
 * without re-extracting inside the timed kernel loop.
 */
StageSeconds
measure_stage_breakdown(std::size_t reps, std::int64_t &checksum)
{
    const dnn::Layer l =
        dnn::make_conv("stage", {32, 16, 16}, 32, 3, 1, 1);
    const dnn::FeatureShape out = l.outputShape();
    const std::size_t in_elems = l.input.elements();
    const std::size_t patch_len =
        std::size_t(l.input.c) * l.kernelH * l.kernelW;
    const std::size_t positions = std::size_t(out.h) * out.w;

    std::vector<float> in(in_elems);
    for (std::size_t i = 0; i < in_elems; ++i)
        in[i] = static_cast<float>(static_cast<int>(i * 13 % 255) - 127)
                / 64.0f;
    dnn::SymQuant sq;
    sq.scale = 1.0 / 64.0;

    std::vector<std::int8_t> qin(in_elems);
    std::vector<std::int8_t> patches(positions * patch_len);
    const std::vector<std::int8_t> weights =
        pattern(std::size_t(l.outChannels) * patch_len, 5, 127);

    Engine e(bce::BceMode::Conv);
    // Warm-up: fault pages and seed the conv table untimed.
    dnn::quantize_span(sq, in.data(), in_elems, qin.data());
    checksum += e.bce.dotProductSpan(qin.data(), qin.data(),
                                     std::min(in_elems, patch_len), 8);

    StageSeconds s;
    for (std::size_t r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        dnn::quantize_span(sq, in.data(), in_elems, qin.data());
        s.quantize += seconds_since(t0);

        t0 = std::chrono::steady_clock::now();
        for (unsigned oh = 0; oh < out.h; ++oh)
            for (unsigned ow = 0; ow < out.w; ++ow)
                dnn::im2col_patch_i8(
                    l, qin.data(), oh, ow,
                    patches.data()
                        + (std::size_t(oh) * out.w + ow) * patch_len);
        s.im2col += seconds_since(t0);

        t0 = std::chrono::steady_clock::now();
        for (std::size_t p = 0; p < positions; ++p)
            for (unsigned oc = 0; oc < l.outChannels; ++oc)
                checksum += e.bce.dotProductSpan(
                    patches.data() + p * patch_len,
                    weights.data() + std::size_t(oc) * patch_len,
                    patch_len, 8);
        s.kernel += seconds_since(t0);
    }
    return s;
}

/**
 * Aggregate MAC/s with @p threads pool workers, each running the
 * conv_8bit span workload on a private engine — the shape
 * run_functional_batch uses for batched inference.
 */
double
measure_scaling_macs_per_s(unsigned threads, std::size_t reps_per_thread)
{
    const std::size_t len = 512;
    const std::vector<std::int8_t> a = pattern(len, 1, 127);
    const std::vector<std::int8_t> b = pattern(len, 2, 127);

    std::vector<std::function<void()>> tasks;
    tasks.reserve(threads);
    std::vector<std::int64_t> sink(threads, 0);
    for (unsigned t = 0; t < threads; ++t) {
        tasks.push_back([&, t] {
            Engine e(bce::BceMode::Conv);
            for (std::size_t r = 0; r < reps_per_thread; ++r)
                sink[t] += e.bce.dotProductSpan(a.data(), b.data(), len,
                                                8);
        });
    }

    const auto start = std::chrono::steady_clock::now();
    sim::ThreadPool pool(threads);
    pool.run(std::move(tasks));
    const double secs = seconds_since(start);
    const double macs = static_cast<double>(threads)
                        * static_cast<double>(reps_per_thread) * len;
    return secs > 0.0 ? macs / secs : 0.0;
}

std::string
kernel_section(sim::SimdLevel level)
{
    return std::string("kernel_") + sim::simd_level_name(level);
}

constexpr sim::SimdLevel all_levels[] = {
    sim::SimdLevel::Scalar, sim::SimdLevel::Sse42, sim::SimdLevel::Neon,
    sim::SimdLevel::Avx2, sim::SimdLevel::Avx512};

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_pr9.json";
    std::string baseline_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--out"))
            out_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--check-baseline"))
            baseline_path = argv[i + 1];
    }

    const unsigned hw = sim::resolve_threads(0);
    const sim::SimdLevel dispatched = sim::active_simd_level();
    std::cout << "micro_roofline: host has " << hw
              << " hardware thread(s); dispatcher resolved "
              << sim::simd_level_name(dispatched) << "\n";

    sim::BenchJson json;
    json.set("host", "hardware_threads", static_cast<double>(hw));
    json.set("host", "simd_level", static_cast<double>(dispatched));

    // ---- Memory bandwidth roof -------------------------------------
    const double membw = measure_membw_bytes_per_s();
    json.set("membw", "triad_bytes_per_s", membw);
    std::cout << "triad bandwidth: " << membw / 1e9 << " GB/s\n";

    // ---- Per-ISA kernel points --------------------------------------
    const std::size_t reps = 20000;
    std::int64_t checksum0 = 0; // scalar reference checksums
    double scalar_conv = 0.0;
    double best_conv = 0.0;
    for (const sim::SimdLevel level : all_levels) {
        if (!sim::simd_level_compiled(level)
            || !sim::simd_level_supported(level))
            continue;
        sim::force_simd_level(level);
        std::int64_t checksum = 0;

        // Headline: the gather-free histogram tally (the default).
        bce::simd::force_tally_mode(bce::simd::TallyMode::Histogram);
        const double conv = measure_kernel_macs_per_s(
            bce::BceMode::Conv, 8, reps, checksum);
        const double mm = measure_kernel_macs_per_s(
            bce::BceMode::Matmul, 8, reps, checksum);

        // Ablation: same span, delta-plane gather pinned.
        bce::simd::force_tally_mode(bce::simd::TallyMode::Gather);
        const double conv_gather = measure_kernel_macs_per_s(
            bce::BceMode::Conv, 8, reps, checksum);
        bce::simd::reset_tally_mode();

        if (level == sim::SimdLevel::Scalar) {
            scalar_conv = conv;
            checksum0 = checksum;
        } else if (checksum != checksum0) {
            std::cerr << kernel_section(level)
                      << ": checksum diverged from scalar\n";
            return 2;
        }
        const std::string sec = kernel_section(level);
        json.set(sec, "conv_8bit_macs_per_s", conv);
        json.set(sec, "matmul_8bit_macs_per_s", mm);
        json.set(sec, "conv_8bit_gather_macs_per_s", conv_gather);
        json.set(sec, "hist_over_gather",
                 conv_gather > 0.0 ? conv / conv_gather : 0.0);
        json.set(sec, "speedup_vs_scalar",
                 scalar_conv > 0.0 ? conv / scalar_conv : 0.0);
        best_conv = std::max(best_conv, conv);
        char line[200];
        std::snprintf(line, sizeof(line),
                      "%-14s conv %10.2f MMAC/s  matmul %10.2f MMAC/s  "
                      "gather %10.2f MMAC/s  vs scalar %5.2fx\n",
                      sec.c_str(), conv / 1e6, mm / 1e6,
                      conv_gather / 1e6,
                      scalar_conv > 0.0 ? conv / scalar_conv : 0.0);
        std::cout << line;
    }
    sim::reset_simd_level();

    // ---- Per-stage breakdown at the resolved ISA --------------------
    {
        std::int64_t stage_checksum = 0;
        const std::size_t stage_reps = 40;
        const StageSeconds s =
            measure_stage_breakdown(stage_reps, stage_checksum);
        const double per = 1.0 / static_cast<double>(stage_reps);
        const double total = s.quantize + s.im2col + s.kernel;
        const double front = s.quantize + s.im2col;
        json.set("stages", "quantize_ms_per_image",
                 1e3 * s.quantize * per);
        json.set("stages", "im2col_ms_per_image", 1e3 * s.im2col * per);
        json.set("stages", "kernel_ms_per_image", 1e3 * s.kernel * per);
        json.set("stages", "front_half_fraction",
                 total > 0.0 ? front / total : 0.0);
        char line[200];
        std::snprintf(line, sizeof(line),
                      "stages: quantize %.3f ms  im2col %.3f ms  "
                      "kernel %.3f ms  front-half %4.1f%%\n",
                      1e3 * s.quantize * per, 1e3 * s.im2col * per,
                      1e3 * s.kernel * per,
                      total > 0.0 ? 100.0 * front / total : 0.0);
        std::cout << line;
    }

    // ---- Roofline placement -----------------------------------------
    // The steady-state tiered MAC streams exactly the two int8
    // operands; tables and tally state are cache-resident.
    const double bytes_per_mac = 2.0;
    const double roof = membw / bytes_per_mac;
    json.set("roofline", "stream_bytes_per_mac", bytes_per_mac);
    json.set("roofline", "roofline_macs_per_s", roof);
    json.set("roofline", "achieved_fraction",
             roof > 0.0 ? best_conv / roof : 0.0);
    std::cout << "bandwidth roof " << roof / 1e6
              << " MMAC/s; best kernel reaches "
              << (roof > 0.0 ? 100.0 * best_conv / roof : 0.0) << "%\n";

    // ---- Thread scaling ---------------------------------------------
    // On a 1-hardware-thread host every multi-worker point measures
    // oversubscription, not scaling: record the skip and emit no
    // efficiency figures at all rather than misleading ones.
    if (hw <= 1) {
        json.set("scaling", "skipped", 1.0);
        json.set("scaling", "hardware_threads", static_cast<double>(hw));
        std::cout << "scaling: skipped (1 hardware thread)\n";
    } else {
        const std::size_t reps_per_thread = 20000;
        double rate1 = 0.0, rate8 = 0.0;
        json.set("scaling", "skipped", 0.0);
        for (const unsigned t : {1u, 2u, 4u, 8u}) {
            const double rate =
                measure_scaling_macs_per_s(t, reps_per_thread);
            if (t == 1)
                rate1 = rate;
            if (t == 8)
                rate8 = rate;
            const double eff =
                rate1 > 0.0 ? rate / (static_cast<double>(t) * rate1)
                            : 0.0;
            const std::string key_rate =
                "rate_t" + std::to_string(t) + "_macs_per_s";
            const std::string key_eff =
                "efficiency_t" + std::to_string(t);
            json.set("scaling", key_rate, rate);
            json.set("scaling", key_eff, eff);
            char line[120];
            std::snprintf(line, sizeof(line),
                          "threads %u: %10.2f MMAC/s  efficiency "
                          "%5.2f\n",
                          t, rate / 1e6, eff);
            std::cout << line;
        }
        json.set("scaling", "t8_over_t1",
                 rate1 > 0.0 ? rate8 / rate1 : 0.0);
        json.set("scaling", "hardware_threads", static_cast<double>(hw));
    }

    if (!json.save(out_path)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        sim::BenchJson baseline;
        if (!baseline.load(baseline_path)) {
            std::cerr << "cannot load baseline " << baseline_path << "\n";
            return 1;
        }
        bool ok = true;
        // Only a >5x collapse vs the committed baseline fails, and only
        // for kernel points this host actually measured: the gate
        // catches algorithmic regressions, not runner noise or a
        // narrower-ISA runner.
        for (const sim::SimdLevel level : all_levels) {
            const std::string sec = kernel_section(level);
            const double now = json.get(sec, "conv_8bit_macs_per_s",
                                        0.0);
            const double ref = baseline.get(sec, "conv_8bit_macs_per_s",
                                            0.0);
            if (now > 0.0 && ref > 0.0 && now < ref / 5.0) {
                std::cerr << sec << ": conv " << now
                          << " MAC/s is >5x below baseline " << ref
                          << "\n";
                ok = false;
            }
        }
        if (json.get("scaling", "skipped", 1.0) != 0.0) {
            std::cout << "note: scaling skipped on this host; points "
                         "not gated\n";
        } else {
            const double now = json.get("scaling", "t8_over_t1", 0.0);
            const double ref = baseline.get("scaling", "t8_over_t1",
                                            0.0);
            if (ref > 0.0 && now < ref / 5.0) {
                std::cerr << "scaling: t8_over_t1 " << now
                          << " is >5x below baseline " << ref << "\n";
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::cout << "baseline check passed (threshold: 5x)\n";
    }
    return 0;
}
