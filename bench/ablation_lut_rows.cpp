/**
 * @file
 * Ablation — LUT-row budget per partition.
 *
 * The design point reserves 2 rows per partition (8 rows, 64 bytes per
 * sub-array). This ablation sweeps that budget and reports what each
 * choice buys: which tables fit (multiply needs 49 B, the division
 * table 32 B, a PWL table 4 B/segment), the activation approximation
 * error of the largest PWL table that fits, and the precharge area
 * cost (which scales with the decoupled region).
 */

#include <cmath>
#include <cstdio>

#include "lut/division.hh"
#include "lut/lut_image.hh"
#include "lut/mult_lut.hh"
#include "lut/pwl.hh"
#include "tech/geometry.hh"

int
main()
{
    using namespace bfree;

    std::printf("Ablation — LUT rows reserved per partition\n\n");
    std::printf("%6s %8s %8s %8s %10s %12s %10s\n", "rows", "bytes",
                "mult49", "divide", "PWL segs", "sigmoid err",
                "area cost");

    for (unsigned rows_per_partition : {1u, 2u, 3u, 4u, 8u}) {
        tech::CacheGeometry geom;
        geom.lutRowsPerPartition = rows_per_partition;
        const unsigned bytes = geom.lutBytesPerSubarray();

        const bool mult_fits =
            lut::serialize(lut::MultLut{}).fits(bytes);
        const bool div_fits =
            lut::serialize(lut::DivisionLut(4)).fits(bytes);

        // Largest power-of-two segment count whose table fits
        // (4 bytes per segment).
        unsigned segments = 1;
        while (segments * 2 * 4 <= bytes)
            segments *= 2;
        const double err =
            lut::make_sigmoid_table(segments)
                .maxAbsError([](double x) {
                    return 1.0 / (1.0 + std::exp(-x));
                });

        // Precharge area scales with the decoupled region (0.5% at
        // the 2-row design point).
        const double area_pct =
            0.5 * rows_per_partition / 2.0;

        std::printf("%6u %8u %8s %8s %10u %12.4f %9.2f%%\n",
                    rows_per_partition, bytes,
                    mult_fits ? "yes" : "no", div_fits ? "yes" : "no",
                    segments, err, area_pct);
    }

    std::printf("\nThe paper's 2-row budget is the knee: the 49-entry "
                "multiply table and the division table fit, 16-segment "
                "PWL activations stay accurate, and the precharge "
                "overhead stays at 0.5%%.\n");
    return 0;
}
