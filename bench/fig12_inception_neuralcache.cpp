/**
 * @file
 * Fig. 12 — Inception-v3 on BFree vs Neural Cache.
 *
 *  (a) layer-wise runtime comparison (we print the mixed-layer series
 *      as the per-layer table, sorted by position);
 *  (b) BFree runtime breakdown;
 *  (c) Neural Cache runtime breakdown (note its exposed input-load and
 *      reduction phases);
 *  (d) BFree cache energy breakdown excluding DRAM (sub-array access +
 *      BCE dominate).
 *
 * Paper headline: 1.72x speedup, 3.14x lower energy.
 */

#include <cstdio>
#include <iostream>

#include "core/bfree.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;
    map::ExecConfig cfg;
    cfg.mapper.forcedMode = map::ExecMode::ConvMode; // paper's setup

    const dnn::Network net = dnn::make_inception_v3();
    const map::RunResult bf = acc.run(net, cfg);
    const map::RunResult nc = acc.runNeuralCache(net, cfg);

    // ------------------------------------------------------------------
    // (a) Layer-wise runtime: print the convolution layers.
    // ------------------------------------------------------------------
    std::printf("Fig. 12(a) — layer-wise runtime (convolution layers, "
                "us)\n");
    std::printf("%-26s %12s %14s %8s\n", "layer", "BFree(us)",
                "NeuralCache(us)", "speedup");
    int printed = 0;
    for (std::size_t i = 0; i < bf.layers.size() && printed < 24; ++i) {
        if (bf.layers[i].kind != dnn::LayerKind::Conv)
            continue;
        const double tb = bf.layers[i].time.total() * 1e6;
        const double tn = nc.layers[i].time.total() * 1e6;
        std::printf("%-26s %12.2f %14.2f %7.2fx\n",
                    bf.layers[i].name.c_str(), tb, tn, tn / tb);
        ++printed;
    }
    std::printf("  ... (remaining layers omitted)\n\n");

    // ------------------------------------------------------------------
    // (b)/(c) Runtime breakdowns.
    // ------------------------------------------------------------------
    std::printf("Fig. 12(b) — BFree runtime breakdown\n");
    core::print_phase_shares(std::cout, "BFree", bf.time);
    std::printf("Fig. 12(c) — Neural Cache runtime breakdown\n");
    core::print_phase_shares(std::cout, "NeuralCache", nc.time);

    // ------------------------------------------------------------------
    // (d) BFree energy excluding DRAM.
    // ------------------------------------------------------------------
    std::printf("\nFig. 12(d) — BFree cache energy breakdown "
                "(DRAM excluded)\n");
    core::print_energy_breakdown(std::cout, bf.energy,
                                 /*exclude_dram=*/true);

    // ------------------------------------------------------------------
    // Headline.
    // ------------------------------------------------------------------
    const double speedup =
        nc.secondsPerInference() / bf.secondsPerInference();
    const double energy =
        nc.joulesPerInference() / bf.joulesPerInference();
    std::printf("\nBFree:       %s, %s per inference\n",
                core::format_seconds(bf.secondsPerInference()).c_str(),
                core::format_joules(bf.joulesPerInference()).c_str());
    std::printf("NeuralCache: %s, %s per inference\n",
                core::format_seconds(nc.secondsPerInference()).c_str(),
                core::format_joules(nc.joulesPerInference()).c_str());
    std::printf("speedup %.2fx (paper 1.72x), energy ratio %.2fx "
                "(paper 3.14x)\n",
                speedup, energy);
    return 0;
}
