/**
 * @file
 * Table III — Runtime and energy of BFree vs CPU (Xeon E5-2697) and
 * GPU (Titan V) on LSTM (300-step sequence), BERT-base and BERT-large
 * at batch sizes 1 and 16.
 */

#include <cstdio>

#include "core/bfree.hh"
#include "core/report.hh"

namespace {

void
block(bfree::core::BFreeAccelerator &acc, const bfree::dnn::Network &net,
      std::initializer_list<unsigned> batches, const char *paper_note)
{
    using namespace bfree;
    std::printf("%s  [%s]\n", net.name().c_str(), paper_note);
    for (unsigned batch : batches) {
        map::ExecConfig cfg;
        cfg.batch = batch;
        const auto bf = acc.run(net, cfg);
        const auto cpu = acc.runCpu(net, batch);
        const auto gpu = acc.runGpu(net, batch);
        std::printf("  batch %2u: CPU %9.1f ms / %7.2f J   GPU %8.2f "
                    "ms / %6.2f J   BFree %7.3f ms / %7.4f J\n",
                    batch, cpu.secondsPerInference * 1e3,
                    cpu.joulesPerInference,
                    gpu.secondsPerInference * 1e3,
                    gpu.joulesPerInference,
                    bf.secondsPerInference() * 1e3,
                    bf.joulesPerInference());
        std::printf("            speedup %6.0fx vs CPU, %5.1fx vs GPU; "
                    "energy %6.0fx vs CPU, %5.1fx vs GPU\n",
                    cpu.secondsPerInference / bf.secondsPerInference(),
                    gpu.secondsPerInference / bf.secondsPerInference(),
                    cpu.joulesPerInference / bf.joulesPerInference(),
                    gpu.joulesPerInference / bf.joulesPerInference());
    }
}

} // namespace

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;
    std::printf("Table III — runtime & energy vs CPU and GPU\n\n");

    block(acc, dnn::make_lstm(), {1u},
          "paper: CPU 888.3 ms/31.1 J, GPU 96.2 ms/4.3 J, BFree "
          "0.43 ms/0.01 J");
    block(acc, dnn::make_bert_base(), {1u, 16u},
          "paper b1: CPU 1160 ms/34.8 J, GPU 47.3 ms/1.67 J, BFree "
          "5.3 ms/0.12 J; b16: 121.3/3.64, 3.8/0.45, 1.2/0.04");
    block(acc, dnn::make_bert_large(), {1u, 16u},
          "paper b1: CPU 2910 ms/87.3 J, GPU 89.7 ms/4.5 J, BFree "
          "35.6 ms/0.39 J; b16: 453.1/13.6, 11.1/1.7, 6.7/0.12");

    std::printf("\nabstract headline (BERT-base): 101x vs CPU / 3x vs "
                "GPU speed, 91x / 11x energy\n");
    return 0;
}
