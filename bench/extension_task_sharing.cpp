/**
 * @file
 * Extension — task sharing (the paper's future-work direction made
 * concrete): two networks co-scheduled on disjoint slice partitions of
 * the same 35 MB PIM fabric, sharing only the main-memory channel.
 * Sweeps the slice split and reports each tenant's slowdown and the
 * combined throughput.
 */

#include <cstdio>

#include "dnn/model_zoo.hh"
#include "map/task_sharing.hh"

int
main()
{
    using namespace bfree;
    using namespace bfree::map;

    const tech::CacheGeometry geom;
    const tech::TechParams tech;

    std::printf("Extension — task sharing on the PIM fabric\n");
    std::printf("(tenant A: Inception-v3, tenant B: BERT-base, batch "
                "1, DRAM)\n\n");
    std::printf("%8s %14s %14s %10s %10s %12s %10s\n", "A slices",
                "A lat(ms)", "B lat(ms)", "A slow", "B slow",
                "combined/s", "pressure");

    const dnn::Network a = dnn::make_inception_v3();
    const dnn::Network b = dnn::make_bert_base();

    for (unsigned split : {2u, 4u, 7u, 10u, 12u}) {
        const SharedRunResult r =
            run_shared(geom, tech, a, b, split);
        std::printf("%8u %14.3f %14.3f %9.2fx %9.2fx %12.1f %9.2fx\n",
                    split, r.a.sharedSeconds * 1e3,
                    r.b.sharedSeconds * 1e3, r.a.slowdown(),
                    r.b.slowdown(), r.combinedThroughput(),
                    r.channelPressure);
    }

    std::printf("\nAnd a cache-resident partner (LSTM) next to a "
                "streaming CNN:\n");
    const SharedRunResult quiet =
        run_shared(geom, tech, a, dnn::make_lstm(), 7);
    std::printf("Inception + LSTM at 7/7: CNN slowdown %.3fx, LSTM "
                "slowdown %.3fx (LSTM demands %.1f%% of the channel)\n",
                quiet.a.slowdown(), quiet.b.slowdown(),
                100.0 * quiet.b.channelDemand);

    std::printf("\nCompute is isolated on disjoint slices; only the "
                "channel couples the tenants.\n");
    return 0;
}
