/**
 * @file
 * Fig. 2 — Energy and latency breakdown of a slice data access.
 *
 * Paper's points: the interconnect between the sub-array and the slice
 * port is > 90% of both latency and energy; the sub-array itself is
 * ~6% of latency and ~9% of energy. This is the motivation for
 * confining PIM traffic inside the sub-array.
 */

#include <cstdio>

#include "tech/access_breakdown.hh"

int
main()
{
    using namespace bfree::tech;

    const CacheGeometry geom;
    const TechParams tech;
    const SliceAccessBreakdown b = slice_access_breakdown(geom, tech);

    std::printf("Fig. 2 — slice data access breakdown (35 MB LLC, "
                "2.5 MB slice)\n");
    std::printf("route length: %.2f mm\n\n",
                slice_route_mm(geom, tech));
    std::printf("%-16s %12s %8s %12s %8s\n", "component",
                "latency(ns)", "lat%", "energy(pJ)", "en%");

    for (const AccessComponent *c :
         {&b.interconnect, &b.subarray, &b.decodeTiming}) {
        std::printf("%-16s %12.3f %7.1f%% %12.3f %7.1f%%\n",
                    c->name.c_str(), c->latencyNs,
                    100.0 * b.latencyFraction(*c), c->energyPj,
                    100.0 * b.energyFraction(*c));
    }
    std::printf("%-16s %12.3f %8s %12.3f\n", "total",
                b.totalLatencyNs(), "", b.totalEnergyPj());

    std::printf("\npaper: interconnect >90%% of latency and energy; "
                "sub-array ~6%% latency / ~9%% energy\n");
    std::printf("measured: interconnect %.1f%% latency / %.1f%% energy; "
                "sub-array %.1f%% / %.1f%%\n",
                100.0 * b.latencyFraction(b.interconnect),
                100.0 * b.energyFraction(b.interconnect),
                100.0 * b.latencyFraction(b.subarray),
                100.0 * b.energyFraction(b.subarray));
    return 0;
}
