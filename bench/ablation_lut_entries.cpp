/**
 * @file
 * Ablation — multiply-LUT organization (Section III-C1).
 *
 * Compares the three table organizations the paper discusses:
 * a naive 256-entry 4-bit table, the chosen 49-entry odd x odd table,
 * and the 28-entry triangular variant ("LUT entries can be further
 * reduced by half ... but this will lead to reduced PIM parallelism").
 * Reports storage (vs the 64-byte LUT region), expected datapath work
 * per 8-bit multiply, and lookup parallelism.
 */

#include <cstdio>

#include "lut/mult_lut.hh"
#include "lut/operand_analyzer.hh"

int
main()
{
    using namespace bfree::lut;

    MultLut lut;

    // Measure analyzer work across all 8-bit products.
    std::uint64_t lut_lookups = 0;
    std::uint64_t shifts = 0;
    std::uint64_t adds = 0;
    std::uint64_t pairs = 0;
    for (int a = -128; a <= 127; ++a) {
        for (int b = -128; b <= 127; ++b) {
            const MultResult r = multiply_signed(a, b, 8, lut);
            lut_lookups += r.counts.lutLookups;
            shifts += r.counts.shifts;
            adds += r.counts.adds;
            ++pairs;
        }
    }

    std::printf("Ablation — multiply LUT organization\n\n");
    std::printf("%-22s %8s %10s %14s %10s\n", "organization", "entries",
                "bytes", "fits 64B LUT", "par/cycle");
    for (const MultLutVariant &v : mult_lut_variants()) {
        // Triangular halves storage but serializes the two operand
        // orders onto one port (reduced PIM parallelism).
        const unsigned parallel =
            v.entries == 28 ? 1 : 2;
        std::printf("%-22s %8u %10u %14s %10u\n", v.name, v.entries,
                    v.entries, v.entries <= 64 ? "yes" : "no",
                    parallel);
    }

    std::printf("\nanalyzer statistics over all 65536 signed 8-bit "
                "products (49-entry table):\n");
    std::printf("  avg LUT lookups / multiply: %.2f\n",
                static_cast<double>(lut_lookups) / pairs);
    std::printf("  avg shifts / multiply:      %.2f\n",
                static_cast<double>(shifts) / pairs);
    std::printf("  avg adds / multiply:        %.2f\n",
                static_cast<double>(adds) / pairs);
    std::printf("\n49 entries cover every product: odd x odd pairs hit "
                "the table, everything else is shift/add in the "
                "operand analyzer.\n");
    return 0;
}
