/**
 * @file
 * Ablation — fabric scaling.
 *
 * BFree's performance comes from sub-array-level parallelism: 4480
 * sub-arrays x 4 MACs/cycle at full cache. This ablation sweeps the
 * slice count (i.e. how much of the LLC is converted to PIM) and the
 * batch size, to show where compute parallelism stops paying because
 * the main-memory channel takes over — the system-level story behind
 * Fig. 13/14.
 */

#include <cstdio>

#include "core/bfree.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;

    std::printf("Ablation — slice-count scaling (VGG-16, batch 16, "
                "DRAM)\n\n");
    std::printf("%7s %12s %14s %12s %12s\n", "slices", "subarrays",
                "latency(ms)", "compute(ms)", "speedup");
    double base = 0.0;
    for (unsigned slices : {1u, 2u, 4u, 7u, 14u}) {
        map::ExecConfig cfg;
        cfg.batch = 16;
        cfg.mapper.slices = slices;
        const map::RunResult r =
            acc.run(dnn::make_vgg16(), cfg);
        if (base == 0.0)
            base = r.secondsPerInference();
        std::printf("%7u %12u %14.3f %12.3f %11.2fx\n", slices,
                    slices * acc.geometry().subarraysPerSlice(),
                    r.secondsPerInference() * 1e3,
                    r.time.compute * 1e3,
                    base / r.secondsPerInference());
    }

    std::printf("\nAblation — batch scaling (BERT-base, DRAM)\n\n");
    std::printf("%7s %16s %16s %14s\n", "batch", "latency/inf(ms)",
                "weight-load(ms)", "energy/inf(mJ)");
    for (unsigned batch : {1u, 2u, 4u, 8u, 16u, 32u}) {
        map::ExecConfig cfg;
        cfg.batch = batch;
        const map::RunResult r =
            acc.run(dnn::make_bert_base(), cfg);
        std::printf("%7u %16.3f %16.3f %14.2f\n", batch,
                    r.secondsPerInference() * 1e3,
                    r.time.weightLoad * 1e3,
                    r.joulesPerInference() * 1e3);
    }

    std::printf("\nCompute scales with slices until the channel "
                "dominates; batching amortizes the weight stream until "
                "intermediate spill traffic takes over.\n");
    return 0;
}
