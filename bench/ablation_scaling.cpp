/**
 * @file
 * Ablation — fabric scaling.
 *
 * BFree's performance comes from sub-array-level parallelism: 4480
 * sub-arrays x 4 MACs/cycle at full cache. This ablation sweeps the
 * slice count (i.e. how much of the LLC is converted to PIM) and the
 * batch size, to show where compute parallelism stops paying because
 * the main-memory channel takes over — the system-level story behind
 * Fig. 13/14.
 *
 * All sweep points run on the parallel sweep engine (--threads N,
 * default: hardware concurrency); results are joined in job order, so
 * the output is bit-identical for any thread count. Each slice-count
 * point is additionally cross-validated through the event-driven
 * detailed sub-bank model, which gives the sweep real per-job work and
 * ties the analytic numbers back to the cycle-accurate datapath.
 */

#include <cstdio>
#include <vector>

#include "core/bfree.hh"
#include "core/report.hh"
#include "map/detailed_sim.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"

namespace {

using namespace bfree;

/** Deterministic detailed-chain job for one sweep point. */
map::DetailedJob
make_detailed_job(unsigned nodes, unsigned slice_len, unsigned waves,
                  unsigned bits, std::uint64_t seed)
{
    map::DetailedJob job;
    job.nodes = nodes;
    job.sliceLen = slice_len;
    job.bits = bits;
    sim::Rng rng(seed);
    const std::int64_t lo = bits == 4 ? -8 : -128;
    const std::int64_t hi = bits == 4 ? 7 : 127;
    job.weights.assign(nodes, std::vector<std::int8_t>(slice_len));
    for (auto &slice : job.weights) {
        for (auto &w : slice)
            w = static_cast<std::int8_t>(rng.uniformInt(lo, hi));
    }
    job.inputs.assign(
        waves,
        std::vector<std::int8_t>(std::size_t(nodes) * slice_len));
    for (auto &wave : job.inputs) {
        for (auto &x : wave)
            x = static_cast<std::int8_t>(rng.uniformInt(lo, hi));
    }
    return job;
}

/** Reference dot product of wave @p wave against the job's weights. */
std::int32_t
reference_dot(const map::DetailedJob &job, unsigned wave)
{
    std::int32_t sum = 0;
    for (unsigned n = 0; n < job.nodes; ++n) {
        for (unsigned i = 0; i < job.sliceLen; ++i) {
            sum += std::int32_t(job.weights[n][i])
                   * std::int32_t(
                         job.inputs[wave][std::size_t(n) * job.sliceLen
                                          + i]);
        }
    }
    return sum;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfree;

    const unsigned threads = sim::threads_from_args(argc, argv);
    core::BFreeAccelerator acc;

    const std::vector<unsigned> slice_points = {1u, 2u, 4u, 7u, 14u};
    const std::vector<unsigned> batch_points = {1u, 2u, 4u, 8u, 16u, 32u};

    // One job list covers both sweeps; runMany shards it across the
    // work-stealing pool and returns results in job order.
    std::vector<map::ExecJob> jobs;
    for (unsigned slices : slice_points) {
        map::ExecConfig cfg;
        cfg.batch = 16;
        cfg.mapper.slices = slices;
        jobs.push_back({dnn::make_vgg16(), cfg});
    }
    for (unsigned batch : batch_points) {
        map::ExecConfig cfg;
        cfg.batch = batch;
        jobs.push_back({dnn::make_bert_base(), cfg});
    }
    const std::vector<map::RunResult> results = acc.runMany(jobs, threads);

    std::printf("Ablation — slice-count scaling (VGG-16, batch 16, "
                "DRAM)\n\n");
    std::printf("%7s %12s %14s %12s %12s\n", "slices", "subarrays",
                "latency(ms)", "compute(ms)", "speedup");
    const double base = results[0].secondsPerInference();
    for (std::size_t i = 0; i < slice_points.size(); ++i) {
        const map::RunResult &r = results[i];
        std::printf("%7u %12u %14.3f %12.3f %11.2fx\n", slice_points[i],
                    slice_points[i] * acc.geometry().subarraysPerSlice(),
                    r.secondsPerInference() * 1e3,
                    r.time.compute * 1e3,
                    base / r.secondsPerInference());
    }

    std::printf("\nAblation — batch scaling (BERT-base, DRAM)\n\n");
    std::printf("%7s %16s %16s %14s\n", "batch", "latency/inf(ms)",
                "weight-load(ms)", "energy/inf(mJ)");
    for (std::size_t i = 0; i < batch_points.size(); ++i) {
        const map::RunResult &r = results[slice_points.size() + i];
        std::printf("%7u %16.3f %16.3f %14.2f\n", batch_points[i],
                    r.secondsPerInference() * 1e3,
                    r.time.weightLoad * 1e3,
                    r.joulesPerInference() * 1e3);
    }

    // Cross-validate each slice point through the event-driven model:
    // one sub-bank chain per (point, precision), exact LUT-datapath
    // integers. These jobs carry the sweep's real CPU work, so this is
    // also where extra worker threads pay off.
    std::printf("\nDetailed cross-validation (8-node chains)\n\n");
    std::printf("%7s %6s %10s %8s %10s %8s\n", "point", "bits",
                "slice_len", "waves", "cycles", "exact");
    std::vector<map::DetailedJob> detailed;
    const unsigned waves = 96;
    const unsigned slice_len = 128;
    for (std::size_t i = 0; i < slice_points.size(); ++i) {
        for (unsigned bits : {8u, 4u}) {
            detailed.push_back(make_detailed_job(
                8, slice_len, waves, bits,
                0xab1a7e00ULL + 2 * slice_points[i] + bits));
        }
    }
    const std::vector<map::DetailedRunResult> runs = map::run_detailed_batch(
        acc.geometry(), acc.techParams(), detailed, threads);
    bool all_exact = true;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        bool exact = runs[i].outputs.size() == waves;
        for (unsigned w = 0; exact && w < waves; ++w)
            exact = runs[i].outputs[w] == reference_dot(detailed[i], w);
        all_exact = all_exact && exact;
        std::printf("%7zu %6u %10u %8u %10llu %8s\n", i / 2,
                    detailed[i].bits, slice_len, waves,
                    static_cast<unsigned long long>(runs[i].cycles),
                    exact ? "yes" : "NO");
    }

    std::printf("\nCompute scales with slices until the channel "
                "dominates; batching amortizes the weight stream until "
                "intermediate spill traffic takes over.\n");
    return all_exact ? 0 : 1;
}
