/**
 * @file
 * Section II-C — the PIM-OPC (operations per PIM cycle) analysis that
 * motivates bitline-computing-free PIM.
 *
 * "Considering the column muxing of 4:1 ... 8 Boolean operations are
 * possible in one PIM cycle, hence PIM-OPC is 8. ... a 8-bit
 * multiplication takes 102 PIM cycles, therefore PIM-OPC is
 * approximately 0.63 which is much less than 1." BFree's LUT datapath
 * pushes multiply PIM-OPC back above 1 per sub-array (0.5 MAC/cycle in
 * conv mode = 4 nibble products/cycle; 4 MACs/cycle in matmul mode).
 */

#include <cstdio>

#include "baselines/bit_serial.hh"
#include "bce/bce.hh"
#include "tech/geometry.hh"

int
main()
{
    using namespace bfree;

    const tech::CacheGeometry geom;
    const unsigned bitlines = geom.cellsPerRow; // 64 per partition set

    std::printf("Section II-C — PIM operations per cycle "
                "(one sub-array, %u bitlines)\n\n", bitlines);
    std::printf("%-38s %12s %10s\n", "operation", "cycles",
                "PIM-OPC");

    // Bitline computing (Neural Cache style).
    std::printf("%-38s %12u %10.2f\n",
                "boolean op, bit-parallel 8-bit ops", 1u,
                static_cast<double>(bitlines) / 8.0);
    const auto add8 = baseline::bit_serial_add_cycles(8);
    std::printf("%-38s %12llu %10.2f\n", "8-bit add, bit-serial",
                static_cast<unsigned long long>(add8),
                static_cast<double>(bitlines) / add8);
    const auto mul8 = baseline::bit_serial_mult_cycles(8);
    std::printf("%-38s %12llu %10.2f\n",
                "8-bit multiply, bit-serial",
                static_cast<unsigned long long>(mul8),
                static_cast<double>(bitlines) / mul8);

    // LUT-based BFree.
    std::printf("%-38s %12s %10.2f\n",
                "8-bit MAC, BFree conv mode", "2",
                bce::Bce::macsPerCycle(bce::BceMode::Conv, 8));
    std::printf("%-38s %12s %10.2f\n",
                "8-bit MAC, BFree matmul mode", "0.25",
                bce::Bce::macsPerCycle(bce::BceMode::Matmul, 8));
    std::printf("%-38s %12s %10.2f\n",
                "4-bit MAC, BFree matmul mode", "0.125",
                bce::Bce::macsPerCycle(bce::BceMode::Matmul, 4));

    std::printf("\npaper: bit-serial multiply PIM-OPC ~0.63 "
                "(measured %.2f); BFree restores multiply throughput "
                "without widening the sub-array.\n",
                static_cast<double>(bitlines) / mul8);
    return 0;
}
