/**
 * @file
 * Section V-B — area and power accounting of the BFree additions:
 * LUT precharge 0.5% per sub-array, BCE 6% per 2.5 MB slice,
 * controllers 0.1%, total cache overhead ~5.6%; BCE vs a specialized
 * MAC unit (3% smaller, 48% more energy efficient).
 */

#include <cstdio>

#include "tech/area_model.hh"

int
main()
{
    using namespace bfree::tech;

    const CacheGeometry geom;
    const TechParams tech;
    const AreaReport r = compute_area(geom, tech);

    std::printf("Section V-B — BFree area accounting (16 nm)\n\n");
    std::printf("sub-array (8 KB):        %8.5f mm^2\n", r.subarrayMm2);
    std::printf("  + LUT precharge:       %8.5f mm^2 (%.2f%% of "
                "sub-array; paper 0.5%%)\n",
                r.lutPrechargeMm2, 100.0 * r.lutPrechargeFraction);
    std::printf("BCE per sub-array:       %8.5f mm^2\n",
                r.bcePerSubarrayMm2);
    std::printf("slice (2.5 MB) base:     %8.3f mm^2\n", r.sliceBaseMm2);
    std::printf("slice with BFree:        %8.3f mm^2 (BCE %.1f%% of "
                "slice; paper 6%%)\n",
                r.sliceBfreeMm2, 100.0 * r.bceFractionOfSlice);
    std::printf("cache (35 MB) base:      %8.3f mm^2\n", r.cacheBaseMm2);
    std::printf("cache with BFree:        %8.3f mm^2\n",
                r.cacheBfreeMm2);
    std::printf("controllers:             %8.4f mm^2 (%.2f%% of cache; "
                "paper 0.1%%)\n",
                r.controllerMm2, 100.0 * r.controllerFraction);
    std::printf("total overhead:          %8.2f%% (paper 5.6%%)\n",
                100.0 * r.totalOverheadFraction);

    std::printf("\ncontroller power: cache %.1f mW, slice %.1f mW "
                "(paper: 0.8 / 1.4 mW)\n",
                tech.cacheControllerMw, tech.sliceControllerMw);
    std::printf("BCE power: conv %.1f mW, matmul %.1f mW "
                "(paper: 0.4 / 1.3 mW)\n",
                tech.bceConvModeMw, tech.bceMatmulModeMw);
    std::printf("BCE vs specialized MAC: %.0f%% smaller area, %.0f%% "
                "more energy efficient (paper: 3%% / 48%%)\n",
                100.0 * (tech.specializedMacAreaVsBce - 1.0),
                100.0 * (tech.specializedMacEnergyVsBce - 1.0));
    std::printf("iso-area Eyeriss: %u PEs (paper: 144 = 12x12)\n",
                iso_area_eyeriss_pes(geom, tech));
    return 0;
}
