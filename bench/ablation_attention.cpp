/**
 * @file
 * Ablation — the K/Q/V overlap schedule (Section IV-B2, Fig. 10).
 *
 * Quantifies what the paper's attention scheduling buys: Q and K
 * projections in parallel, V's projection hidden behind the
 * scores-softmax pipeline (which only occupies the scalar/softmax
 * units).
 */

#include <cstdio>

#include "dnn/model_zoo.hh"
#include "map/attention_schedule.hh"

int
main()
{
    using namespace bfree;
    using namespace bfree::map;

    const tech::CacheGeometry geom;
    const tech::TechParams tech;
    Mapper mapper(geom);

    std::printf("Ablation — attention K/Q/V overlap scheduling\n\n");
    std::printf("%-12s %6s %6s %12s %14s %9s %10s\n", "config", "seq",
                "d", "serial(us)", "overlap(us)", "savings",
                "V hidden");

    struct Config
    {
        const char *name;
        unsigned seq;
        unsigned d;
    };
    const Config configs[] = {
        {"BERT-base", 128, 768},   {"BERT-large", 128, 1024},
        {"long-seq", 512, 768},    {"short-seq", 32, 768},
        {"small-d", 128, 256},
    };

    for (const Config &c : configs) {
        const dnn::Layer attn =
            dnn::make_attention("attn", c.seq, c.d, c.d / 64);
        const AttentionSchedule s =
            schedule_attention(attn, mapper.map(attn), tech);
        std::printf("%-12s %6u %6u %12.2f %14.2f %8.1f%% %10s\n",
                    c.name, c.seq, c.d, s.serialSeconds * 1e6,
                    s.overlappedSeconds * 1e6, 100.0 * s.savings(),
                    s.vFullyHidden ? "yes" : "no");
    }

    std::printf("\nLonger sequences grow the softmax window (s^2) "
                "faster than V's projection (s): V hides completely.\n");
    return 0;
}
