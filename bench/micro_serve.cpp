/**
 * @file
 * Open-loop serving benchmark: sustained request throughput and the
 * latency distribution under Poisson and bursty arrivals.
 *
 * Closed-loop batch benches (micro_plan) measure how fast the engine
 * chews a batch it already has; this bench measures what the paper's
 * datapath delivers as a *service*: requests arrive on a virtual
 * clock whether or not the server is ready, the continuous batcher
 * merges them into in-flight batches, and the report is a latency
 * distribution (p50/p95/p99 in serve ticks) plus deadline misses —
 * not just images/s. The offered load is derived from a measured
 * capacity probe, so the Poisson section runs near saturation and the
 * bursty section deliberately overruns the admission bound.
 *
 * Output: a BenchJson document (--out FILE, default BENCH_pr6.json)
 * with serve_capacity / serve_poisson / serve_bursty sections. With
 * --check-baseline FILE the run exits 1 when a tracked rate collapsed
 * more than 5x below the committed baseline (non-gating CI smoke).
 *
 * With --dump-stats the bench instead prints the deterministic replay
 * record — the full batch log, the serve stats group (histograms
 * included) and the output checksum, with no wall-clock anywhere —
 * which the CI determinism job byte-compares at --threads 1 vs 8.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/network_plan.hh"
#include "dnn/layer.hh"
#include "dnn/network.hh"
#include "sim/bench_json.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"

#include "serve/server.hh"
#include "serve/trace.hh"

namespace {

using namespace bfree;
using Clock = std::chrono::steady_clock;

/** The served model: a small MLP, heavy enough to batch usefully. */
dnn::Network
make_served_mlp()
{
    dnn::Network net("serve-mlp-256", {128, 1, 1});
    net.add(dnn::make_fc("fc1", 128, 256));
    net.add(dnn::make_activation("act1", dnn::LayerKind::Relu,
                                 {256, 1, 1}));
    net.add(dnn::make_fc("fc2", 256, 64));
    net.add(dnn::make_activation("act2", dnn::LayerKind::Sigmoid,
                                 {64, 1, 1}));
    net.add(dnn::make_fc("fc3", 64, 10));
    net.add(dnn::make_activation("prob", dnn::LayerKind::Softmax,
                                 {10, 1, 1}));
    return net;
}

/** Bit-pattern checksum over served outputs in id order. */
std::uint64_t
outputs_checksum(const serve::ReplayReport &rep)
{
    std::uint64_t sum = 0;
    for (const dnn::FloatTensor &t : rep.outputs) {
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::uint32_t bits;
            std::memcpy(&bits, &t[i], sizeof bits);
            sum = sum * 1099511628211ull + bits;
        }
        sum = sum * 31 + t.size();
    }
    return sum;
}

void
emit_section(sim::BenchJson &json, const std::string &section,
             const serve::ServeEngine &engine,
             const serve::ReplayReport &rep, std::size_t offered,
             double wallSeconds)
{
    const serve::ServeStats &s = engine.stats();
    json.set(section, "offered_requests",
             static_cast<double>(offered));
    json.set(section, "served_requests",
             static_cast<double>(rep.served.size()));
    json.set(section, "rejected_queue_full", s.rejectedFull.value());
    json.set(section, "batches", s.batches.value());
    json.set(section, "mean_batch_occupancy",
             s.batches.value() > 0.0
                 ? s.batchedRequests.value() / s.batches.value()
                 : 0.0);
    json.set(section, "latency_p50_ticks", s.latencyPercentile(0.50));
    json.set(section, "latency_p95_ticks", s.latencyPercentile(0.95));
    json.set(section, "latency_p99_ticks", s.latencyPercentile(0.99));
    json.set(section, "queue_wait_p99_ticks",
             s.queueWaitPercentile(0.99));
    json.set(section, "deadline_miss_rate",
             s.completed.value() > 0.0
                 ? s.deadlineMisses.value() / s.completed.value()
                 : 0.0);
    json.set(section, "virtual_end_tick",
             static_cast<double>(rep.endTick));
    json.set(section, "sustained_req_per_s",
             wallSeconds > 0.0
                 ? static_cast<double>(rep.served.size()) / wallSeconds
                 : 0.0);
    std::printf("%-14s %5zu/%zu served  %4.0f batches  occ %5.2f  "
                "p50/p95/p99 %6.0f/%6.0f/%6.0f ticks  miss %5.1f%%  "
                "%8.1f req/s\n",
                section.c_str(), rep.served.size(), offered,
                s.batches.value(),
                json.get(section, "mean_batch_occupancy"),
                s.latencyPercentile(0.50), s.latencyPercentile(0.95),
                s.latencyPercentile(0.99),
                100.0 * json.get(section, "deadline_miss_rate"),
                json.get(section, "sustained_req_per_s"));
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned threads = sim::threads_from_args(argc, argv);
    std::string out_path = "BENCH_pr6.json";
    std::string baseline_path;
    bool dump_stats = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--dump-stats"))
            dump_stats = true;
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--check-baseline") && i + 1 < argc)
            baseline_path = argv[i + 1];
    }

    const dnn::Network net = make_served_mlp();
    sim::Rng wrng(17);
    const core::NetworkWeights weights = core::random_weights(net, wrng);
    const core::NetworkPlan plan =
        core::NetworkPlan::compile(net, weights, 8);

    serve::ServeConfig cfg;
    cfg.queueDepth = 32;
    cfg.batcher.maxBatch = 8;
    cfg.batcher.windowTicks = 400;
    cfg.threads = threads;
    cfg.cyclesPerTick = 1000;
    cfg.stats.occupancyBins = cfg.batcher.maxBatch + 1;
    // Latencies here live in the hundreds-to-thousands of ticks;
    // tighten the histogram so a bin is 128 ticks, not the default 8k.
    cfg.stats.latencyHistMaxTicks = 32768;
    cfg.stats.latencyBins = 256;

    // --- capacity probe ---------------------------------------------
    // One full batch's modelled service time sets the offered load:
    // its per-request share is the saturation inter-arrival gap. The
    // probe is deterministic (BCE cycles), so the derived trace is
    // identical on every host.
    sim::Tick perRequestTicks = 0;
    {
        serve::ServeEngine probe(plan, cfg);
        serve::ArrivalTrace burst;
        for (std::size_t i = 0; i < cfg.batcher.maxBatch; ++i)
            burst.arrivals.push_back({.tick = 1, .inputSeed = 1000 + i,
                                      .deadlineTicks = serve::no_deadline});
        const serve::ReplayReport rep = probe.replay(burst);
        const sim::Tick service = rep.endTick - 1;
        perRequestTicks =
            std::max<sim::Tick>(1, service / cfg.batcher.maxBatch);
    }

    // --- offered loads ----------------------------------------------
    const std::size_t poisson_n = 256;
    const std::size_t bursty_n = 256;
    // Poisson at ~80% of saturation; deadline at 8 full-batch services.
    const double poissonGap =
        1.25 * static_cast<double>(perRequestTicks);
    const sim::Tick deadline =
        8 * perRequestTicks * cfg.batcher.maxBatch;
    sim::Rng prng(42);
    const serve::ArrivalTrace poisson =
        serve::poisson_trace(prng, poisson_n, poissonGap, deadline);
    // Bursts twice the queue bound with a tighter deadline: admission
    // control and deadline misses both engage.
    sim::Rng brng(43);
    const serve::ArrivalTrace bursty = serve::bursty_trace(
        brng, bursty_n, /*burstSize=*/2 * cfg.queueDepth,
        /*meanBurstGapTicks=*/static_cast<double>(perRequestTicks)
            * cfg.batcher.maxBatch * 12,
        deadline / 2);

    if (dump_stats) {
        // Deterministic block only: schedule, stats (histograms
        // included) and output checksums are byte-identical for any
        // --threads, so this output byte-compares across thread
        // counts. No wall-clock values anywhere.
        std::printf("micro_serve replay record: net=%s bits=8 "
                    "queue=%zu maxBatch=%zu window=%llu "
                    "cyclesPerTick=%llu\n",
                    net.name().c_str(), cfg.queueDepth,
                    cfg.batcher.maxBatch,
                    static_cast<unsigned long long>(
                        cfg.batcher.windowTicks),
                    static_cast<unsigned long long>(cfg.cyclesPerTick));
        for (const auto &[name, trace] :
             {std::pair<const char *, const serve::ArrivalTrace &>(
                  "poisson", poisson),
              std::pair<const char *, const serve::ArrivalTrace &>(
                  "bursty", bursty)}) {
            serve::ServeEngine engine(plan, cfg);
            const serve::ReplayReport rep = engine.replay(trace);
            std::printf("--- %s trace (%zu arrivals) ---\n", name,
                        trace.size());
            std::fputs(rep.batchLog.c_str(), stdout);
            std::ostringstream os;
            engine.stats().dumpAll(os);
            std::fputs(os.str().c_str(), stdout);
            std::printf("datapath_cycles %llu\n",
                        static_cast<unsigned long long>(
                            rep.datapathStats.cycles));
            std::printf("datapath_macs %llu\n",
                        static_cast<unsigned long long>(
                            rep.datapathStats.macs));
            std::printf("energy_total %.17g\n", rep.energyJoules);
            std::printf("output_checksum %016llx\n",
                        static_cast<unsigned long long>(
                            outputs_checksum(rep)));
        }
        return 0;
    }

    sim::BenchJson json;
    json.set("host", "hardware_threads",
             static_cast<double>(sim::resolve_threads(0)));
    json.set("serve_config", "queue_depth",
             static_cast<double>(cfg.queueDepth));
    json.set("serve_config", "max_batch",
             static_cast<double>(cfg.batcher.maxBatch));
    json.set("serve_config", "window_ticks",
             static_cast<double>(cfg.batcher.windowTicks));
    json.set("serve_config", "cycles_per_tick",
             static_cast<double>(cfg.cyclesPerTick));
    json.set("serve_capacity", "per_request_ticks",
             static_cast<double>(perRequestTicks));
    json.set("serve_capacity", "saturation_req_per_ktick",
             1000.0 / static_cast<double>(perRequestTicks));

    {
        serve::ServeEngine engine(plan, cfg);
        const auto t0 = Clock::now();
        const serve::ReplayReport rep = engine.replay(poisson);
        const auto t1 = Clock::now();
        emit_section(json, "serve_poisson", engine, rep, poisson.size(),
                     std::chrono::duration<double>(t1 - t0).count());
    }
    {
        serve::ServeEngine engine(plan, cfg);
        const auto t0 = Clock::now();
        const serve::ReplayReport rep = engine.replay(bursty);
        const auto t1 = Clock::now();
        emit_section(json, "serve_bursty", engine, rep, bursty.size(),
                     std::chrono::duration<double>(t1 - t0).count());
    }

    if (!json.save(out_path)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        sim::BenchJson baseline;
        if (!baseline.load(baseline_path)) {
            std::cerr << "cannot load baseline " << baseline_path << "\n";
            return 1;
        }
        const char *tracked[][2] = {
            {"serve_poisson", "sustained_req_per_s"},
            {"serve_bursty", "sustained_req_per_s"},
        };
        bool ok = true;
        for (const auto &key : tracked) {
            const double ref = baseline.get(key[0], key[1], 0.0);
            const double now = json.get(key[0], key[1], 0.0);
            // Only a >5x collapse vs the committed baseline fails: the
            // gate catches algorithmic regressions, not runner noise.
            if (ref > 0.0 && now < ref / 5.0) {
                std::cerr << key[0] << "." << key[1] << ": " << now
                          << " is >5x below baseline " << ref << "\n";
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::cout << "baseline check passed (threshold: 5x)\n";
    }
    return 0;
}
