/**
 * @file
 * Full-cache detailed-timing engine throughput: wall-clock of the
 * sharded epoch-barrier engine against the single-queue baseline on one
 * whole-cache GEMM (all 14 slices), with inline bit-exactness checks.
 *
 * Four engine configurations run the same workload:
 *
 *   single_queue        one event queue, per-flit routing (the
 *                       original literal model, the speedup baseline)
 *   single_queue_burst  one event queue, wave-train bursts
 *   sharded_1t          per-slice queues on the epoch engine, 1 worker
 *   sharded_nt          per-slice queues, --threads workers
 *
 * Every configuration must produce the same int32 accumulators as a
 * plain integer GEMM and a cycle count equal to detailed_cache_formula
 * (exit 2 on divergence). Output: a BenchJson document (--out FILE,
 * default BENCH_pr4.json) with seconds, events/s, waves/s and
 * speedup_vs_single_queue per configuration. With --check-baseline
 * FILE the run exits 1 when sharded_nt waves/s collapsed more than 5x
 * below the committed baseline (the non-gating CI perf-smoke job).
 *
 * --dump-stats FILE skips the timed passes and writes one line of
 * deterministic statistics (checksum, cycles, events, epochs, messages,
 * energy with full double precision) per configuration. The CI
 * determinism job runs it at --threads 1 and --threads 8 and byte-diffs
 * the two files.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "map/detailed_cache_sim.hh"
#include "sim/bench_json.hh"
#include "sim/parallel.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace {

using namespace bfree;
using map::CacheEngine;
using map::DetailedCacheOptions;
using map::DetailedCacheResult;
using map::DetailedCacheSim;
using map::GridEngine;

/** Deterministic small int8 values. */
std::vector<std::vector<std::int8_t>>
make_matrix(unsigned rows, unsigned cols, int seed)
{
    std::vector<std::vector<std::int8_t>> m(rows);
    for (unsigned r = 0; r < rows; ++r) {
        m[r].resize(cols);
        for (unsigned c = 0; c < cols; ++c)
            m[r][c] = static_cast<std::int8_t>(
                ((seed + 3 * r + 7 * c) % 23) - 11);
    }
    return m;
}

/** Position-sensitive checksum over the accumulator matrix. */
std::int64_t
checksum(const std::vector<std::vector<std::int32_t>> &accs)
{
    std::int64_t sum = 0;
    for (std::size_t f = 0; f < accs.size(); ++f)
        for (std::size_t w = 0; w < accs[f].size(); ++w)
            sum += std::int64_t(accs[f][w]) *
                   std::int64_t(f * 1315423911u + w * 2654435761u + 1);
    return sum;
}

/** One engine configuration under test. */
struct Config
{
    const char *name;
    CacheEngine engine;
    GridEngine grid;
    unsigned threads; // sharded only
};

struct Row
{
    DetailedCacheResult result;
    double seconds = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const unsigned threads = sim::threads_from_args(argc, argv);
    std::string out_path = "BENCH_pr4.json";
    std::string baseline_path;
    std::string dump_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--out"))
            out_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--check-baseline"))
            baseline_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--dump-stats"))
            dump_path = argv[i + 1];
    }

    // One whole-cache GEMM: 42 filters = 3 columns on each of the 14
    // slices, 16-element dot products on the default 8-row grids, 896
    // input waves. Per-flit routing schedules ~10^5 events while the
    // burst engine needs ~10^3 for the same simulated traffic.
    const unsigned k = 16, filters = 42, waves = 896;
    const std::size_t reps = dump_path.empty() ? 3 : 1;
    tech::CacheGeometry geom;
    tech::TechParams tech;
    const auto fbank = make_matrix(filters, k, 41);
    const auto inputs = make_matrix(waves, k, 5);

    const std::vector<Config> configs = {
        {"single_queue", CacheEngine::SingleQueue, GridEngine::PerFlit, 0},
        {"single_queue_burst", CacheEngine::SingleQueue, GridEngine::Burst,
         0},
        {"sharded_1t", CacheEngine::Sharded, GridEngine::Burst, 1},
        {"sharded_nt", CacheEngine::Sharded, GridEngine::Burst, threads},
    };

    // The ground truth every engine must reproduce.
    DetailedCacheSim probe(geom, tech,
                           {0, 8, CacheEngine::SingleQueue,
                            GridEngine::Burst, 0});
    const unsigned rows = probe.rowsFor(k);
    const std::uint64_t cps =
        std::uint64_t((k + rows - 1) / rows) * (8 / 4);
    const std::uint64_t formula = map::detailed_cache_formula(
        rows, map::partition_filters(filters, geom.numSlices), waves, cps,
        tech.routerHopCycles, tech.interSliceHopCycles);
    const std::int64_t expected = [&] {
        std::vector<std::vector<std::int32_t>> ref(filters);
        for (unsigned f = 0; f < filters; ++f) {
            ref[f].resize(waves);
            for (unsigned w = 0; w < waves; ++w) {
                std::int32_t acc = 0;
                for (unsigned i = 0; i < k; ++i)
                    acc += std::int32_t(fbank[f][i]) *
                           std::int32_t(inputs[w][i]);
                ref[f][w] = acc;
            }
        }
        return checksum(ref);
    }();

    std::vector<Row> rows_out(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const Config &c = configs[i];
        DetailedCacheOptions opts;
        opts.engine = c.engine;
        opts.grid = c.grid;
        opts.threads = c.threads;

        const auto start = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r) {
            DetailedCacheSim sim(geom, tech, opts);
            rows_out[i].result = sim.runGemm(fbank, inputs);
        }
        const auto stop = std::chrono::steady_clock::now();
        rows_out[i].seconds =
            std::chrono::duration<double>(stop - start).count();

        const auto &res = rows_out[i].result;
        if (checksum(res.accs) != expected) {
            std::cerr << c.name << ": accumulators diverged from the "
                      << "integer reference\n";
            return 2;
        }
        if (res.cycles != formula) {
            std::cerr << c.name << ": " << res.cycles
                      << " cycles != formula " << formula << "\n";
            return 2;
        }
    }

    if (!dump_path.empty()) {
        // Deterministic statistics only: byte-identical for any
        // --threads, so CI can diff runs directly.
        std::ofstream out(dump_path);
        if (!out) {
            std::cerr << "cannot write " << dump_path << "\n";
            return 1;
        }
        for (std::size_t i = 0; i < configs.size(); ++i) {
            const auto &res = rows_out[i].result;
            char line[256];
            std::snprintf(line, sizeof(line),
                          "%s checksum=%lld cycles=%llu events=%llu "
                          "epochs=%llu messages=%llu energy=%.17g\n",
                          configs[i].name,
                          static_cast<long long>(checksum(res.accs)),
                          static_cast<unsigned long long>(res.cycles),
                          static_cast<unsigned long long>(res.events),
                          static_cast<unsigned long long>(res.epochs),
                          static_cast<unsigned long long>(
                              res.crossMessages),
                          res.energy.total());
            out << line;
        }
        std::cout << "wrote " << dump_path << "\n";
        return 0;
    }

    const double base_seconds = rows_out[0].seconds;
    std::cout << "micro_detailed: full-cache GEMM, " << filters
              << " filters x " << waves << " waves, k=" << k << ", "
              << reps << " reps\n";

    sim::BenchJson json;
    json.set("host", "hardware_threads",
             static_cast<double>(sim::resolve_threads(0)));
    json.set("workload", "filters", filters);
    json.set("workload", "k", k);
    json.set("workload", "waves", waves);
    json.set("workload", "reps", double(reps));
    json.set("workload", "cycles", double(formula));
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const Row &row = rows_out[i];
        const double events_s =
            row.seconds > 0.0
                ? double(row.result.events) * reps / row.seconds
                : 0.0;
        const double waves_s =
            row.seconds > 0.0 ? double(waves) * reps / row.seconds : 0.0;
        const double speedup =
            row.seconds > 0.0 ? base_seconds / row.seconds : 0.0;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-20s %8.4f s  %12.0f events/s  %8.1f waves/s  "
                      "speedup %6.2fx\n",
                      configs[i].name, row.seconds, events_s, waves_s,
                      speedup);
        std::cout << line;
        json.set(configs[i].name, "seconds", row.seconds);
        json.set(configs[i].name, "events", double(row.result.events));
        json.set(configs[i].name, "events_per_s", events_s);
        json.set(configs[i].name, "waves_per_s", waves_s);
        json.set(configs[i].name, "speedup_vs_single_queue", speedup);
    }
    if (!json.save(out_path)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        sim::BenchJson baseline;
        if (!baseline.load(baseline_path)) {
            std::cerr << "cannot load baseline " << baseline_path << "\n";
            return 1;
        }
        const double ref =
            baseline.get("sharded_nt", "waves_per_s", 0.0);
        const double now =
            json.get("sharded_nt", "waves_per_s", 0.0);
        // Only a >5x collapse vs the committed baseline fails: the gate
        // catches algorithmic regressions, not runner noise.
        if (ref > 0.0 && now < ref / 5.0) {
            std::cerr << "sharded_nt: " << now
                      << " waves/s is >5x below baseline " << ref << "\n";
            return 1;
        }
        std::cout << "baseline check passed (threshold: 5x)\n";
    }
    return 0;
}
