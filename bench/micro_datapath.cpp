/**
 * @file
 * Tiered-vs-legacy datapath throughput: steady-state MAC/s of the
 * scalar decomposition engine against the memoized-table engine, per
 * (BCE mode, precision) point, with inline bit-exactness verification.
 *
 * Each point is one SweepRunner job (--threads N, default hardware
 * concurrency) owning a private legacy/tiered engine pair, so stdout
 * and the JSON are laid out deterministically for any thread count
 * (the measured rates themselves are wall-clock, not deterministic).
 *
 * Output: a BenchJson document (--out FILE, default BENCH_pr3.json)
 * with one section per point carrying legacy_macs_per_s,
 * tiered_macs_per_s and speedup. With --check-baseline FILE the run
 * exits 1 when any point's tiered MAC/s regressed more than 5x below
 * the committed baseline (the non-gating CI perf-smoke job).
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bce/bce.hh"
#include "mem/energy_account.hh"
#include "mem/subarray.hh"
#include "sim/bench_json.hh"
#include "sim/cpuid.hh"
#include "sim/parallel.hh"
#include "tech/geometry.hh"
#include "tech/tech_params.hh"

namespace {

using namespace bfree;

/** One benchmark point. */
struct Point
{
    const char *name;
    bce::BceMode mode;
    unsigned bits;
    std::size_t reps;
};

/** A self-contained BCE rig at one tier. */
struct Engine
{
    tech::CacheGeometry geom{};
    tech::TechParams tech{};
    mem::EnergyAccount account;
    mem::Subarray subarray{geom, tech, account};
    bce::Bce bce{subarray, tech, account};

    Engine(bce::ExecTier tier, bce::BceMode mode)
    {
        bce.setTier(tier);
        bce.loadMultLutImage();
        bce.setMode(mode);
    }
};

/** Deterministic int8 operand pattern. */
std::vector<std::int8_t>
pattern(std::size_t n, int seed, int limit)
{
    std::vector<std::int8_t> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        const int r = static_cast<int>((i * 37 + seed * 101) % 1000);
        v[i] = static_cast<std::int8_t>(r % (2 * limit + 1) - limit);
    }
    return v;
}

struct Measurement
{
    double macsPerSecond = 0.0;
    std::int64_t checksum = 0;
};

/**
 * Time @p reps passes of the point's span kernel on @p engine. One
 * untimed warm-up pass first, so the tiered engine's one-off table
 * seeding (and both engines' cache warm-up) stays out of the
 * steady-state rate.
 */
Measurement
measure(Engine &engine, const Point &p, const std::vector<std::int8_t> &a,
        const std::vector<std::int8_t> &b)
{
    const std::size_t len = a.size();
    auto pass = [&]() -> std::int64_t {
        if (p.mode == bce::BceMode::Conv)
            return engine.bce.dotProductSpan(a.data(), b.data(), len,
                                             p.bits);
        return engine.bce.matmulDotSpan(a.data(), b.data(), len, p.bits);
    };

    Measurement m;
    m.checksum = pass(); // warm-up: seeds memo tables, not timed

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < p.reps; ++r)
        m.checksum += pass();
    const auto stop = std::chrono::steady_clock::now();

    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    const double macs = static_cast<double>(p.reps) * len;
    m.macsPerSecond = seconds > 0.0 ? macs / seconds : 0.0;
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned threads = sim::threads_from_args(argc, argv);
    std::string out_path = "BENCH_pr3.json";
    std::string baseline_path;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--out"))
            out_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--check-baseline"))
            baseline_path = argv[i + 1];
    }

    const std::vector<Point> points = {
        {"conv_8bit", bce::BceMode::Conv, 8, 4000},
        {"conv_4bit", bce::BceMode::Conv, 4, 4000},
        {"matmul_8bit", bce::BceMode::Matmul, 8, 4000},
        {"matmul_4bit", bce::BceMode::Matmul, 4, 4000},
    };
    const std::size_t span_len = 512;

    struct Row
    {
        Measurement legacy, tiered;
    };
    std::vector<Row> rows(points.size()); // pre-sized per-job slots

    std::vector<sim::SweepJob> jobs;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        jobs.push_back({p.name, [&, i, p](sim::SweepContext &ctx) {
            const int limit = p.bits == 4 ? 7 : 127;
            const std::vector<std::int8_t> a =
                pattern(span_len, int(i) * 2 + 1, limit);
            const std::vector<std::int8_t> b =
                pattern(span_len, int(i) * 2 + 2, limit);

            Engine legacy(bce::ExecTier::Legacy, p.mode);
            Engine tiered(bce::ExecTier::Tiered, p.mode);
            rows[i].legacy = measure(legacy, p, a, b);
            rows[i].tiered = measure(tiered, p, a, b);

            if (rows[i].legacy.checksum != rows[i].tiered.checksum) {
                std::cerr << p.name
                          << ": tiered checksum diverged from legacy\n";
                std::exit(2);
            }
            char line[160];
            std::snprintf(line, sizeof(line),
                          "%-12s legacy %10.2f MMAC/s  tiered %10.2f "
                          "MMAC/s  speedup %6.2fx\n",
                          p.name, rows[i].legacy.macsPerSecond / 1e6,
                          rows[i].tiered.macsPerSecond / 1e6,
                          rows[i].tiered.macsPerSecond
                              / rows[i].legacy.macsPerSecond);
            ctx.out << line;
        }});
    }

    sim::SweepRunner sweeper(threads);
    const sim::SweepReport report = sweeper.run(std::move(jobs));
    std::cout << "micro_datapath: steady-state MAC/s per (mode, bits)\n";
    std::cout << report.output();

    sim::BenchJson json;
    json.set("host", "hardware_threads",
             static_cast<double>(sim::resolve_threads(0)));
    json.set("host", "simd_level",
             static_cast<double>(sim::active_simd_level()));
    for (std::size_t i = 0; i < points.size(); ++i) {
        json.set(points[i].name, "legacy_macs_per_s",
                 rows[i].legacy.macsPerSecond);
        json.set(points[i].name, "tiered_macs_per_s",
                 rows[i].tiered.macsPerSecond);
        json.set(points[i].name, "speedup",
                 rows[i].tiered.macsPerSecond
                     / rows[i].legacy.macsPerSecond);
    }
    if (!json.save(out_path)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        sim::BenchJson baseline;
        if (!baseline.load(baseline_path)) {
            std::cerr << "cannot load baseline " << baseline_path << "\n";
            return 1;
        }
        bool ok = true;
        for (std::size_t i = 0; i < points.size(); ++i) {
            const double ref = baseline.get(points[i].name,
                                            "tiered_macs_per_s", 0.0);
            const double now = rows[i].tiered.macsPerSecond;
            // Only a >5x collapse vs the committed baseline fails: the
            // gate catches algorithmic regressions, not runner noise.
            if (ref > 0.0 && now < ref / 5.0) {
                std::cerr << points[i].name << ": tiered " << now
                          << " MAC/s is >5x below baseline " << ref
                          << "\n";
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::cout << "baseline check passed (threshold: 5x)\n";
    }
    return 0;
}
