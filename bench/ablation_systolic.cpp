/**
 * @file
 * Ablation — systolic input/compute overlap (Section III-D).
 *
 * BFree streams inputs through the sub-bank routers while the BCEs
 * compute, so the input-load time hides behind execution; Neural Cache
 * must load-then-compute. This ablation turns the overlap off in the
 * BFree model to quantify what the systolic dataflow buys, per memory
 * technology and batch size.
 */

#include <cstdio>

#include "core/bfree.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator acc;
    const dnn::Network vgg = dnn::make_vgg16();
    const dnn::Network inception = dnn::make_inception_v3();

    std::printf("Ablation — systolic overlap on/off\n\n");
    std::printf("%-14s %-7s %5s %14s %14s %8s\n", "network", "memory",
                "batch", "overlap(ms)", "no-overlap(ms)", "gain");

    for (const dnn::Network *net : {&vgg, &inception}) {
        for (auto kind : {tech::MainMemoryKind::DRAM,
                          tech::MainMemoryKind::HBM}) {
            for (unsigned batch : {1u, 16u}) {
                map::ExecConfig on;
                on.memory = kind;
                on.batch = batch;
                on.systolicOverlap = true;
                map::ExecConfig off = on;
                off.systolicOverlap = false;

                const double t_on =
                    acc.run(*net, on).secondsPerInference();
                const double t_off =
                    acc.run(*net, off).secondsPerInference();
                std::printf("%-14s %-7s %5u %14.3f %14.3f %7.2fx\n",
                            net->name().c_str(),
                            tech::main_memory_params(kind).name(),
                            batch, t_on * 1e3, t_off * 1e3,
                            t_off / t_on);
            }
        }
    }

    std::printf("\nThe overlap matters most when activations stream "
                "from DRAM (batch 16) — the situation Fig. 12(c) "
                "penalizes Neural Cache for.\n");
    return 0;
}
