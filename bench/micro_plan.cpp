/**
 * @file
 * Execution-plan amortization: cold plan compile vs per-call
 * quantization vs warm plan runs, plus batched multi-input throughput
 * on the work-stealing pool.
 *
 * The workload is a weight-heavy MLP (1024-2048-2048-10, ~6.3M
 * parameters), where the legacy path's per-call weight freeze is real
 * work of the same order as the datapath itself — the case the plan
 * layer exists for. Outputs are verified bitwise between the legacy and
 * warm-plan paths before any rate is reported.
 *
 * Output: a BenchJson document (--out FILE, default BENCH_pr5.json)
 * with plan_compile / whole_network / batch_Nt sections. With
 * --check-baseline FILE the run exits 1 when a tracked rate collapsed
 * more than 5x below the committed baseline (non-gating CI perf-smoke).
 *
 * With --dump-stats the bench instead prints the deterministic batch
 * statistics block (no wall-clock anywhere in the output) — the CI
 * determinism job byte-compares this at --threads 1 vs 8.
 */

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/functional.hh"
#include "dnn/layer.hh"
#include "dnn/network.hh"
#include "sim/bench_json.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"

namespace {

using namespace bfree;
using Clock = std::chrono::steady_clock;

/** Weight-dominated MLP: every parameter is touched once per run. */
dnn::Network
make_mlp()
{
    dnn::Network net("mlp-2x2048", {1024, 1, 1});
    net.add(dnn::make_fc("fc1", 1024, 2048));
    net.add(dnn::make_activation("act1", dnn::LayerKind::Sigmoid,
                                 {2048, 1, 1}));
    net.add(dnn::make_fc("fc2", 2048, 2048));
    net.add(dnn::make_activation("act2", dnn::LayerKind::Sigmoid,
                                 {2048, 1, 1}));
    net.add(dnn::make_fc("fc3", 2048, 10));
    net.add(dnn::make_activation("prob", dnn::LayerKind::Softmax,
                                 {10, 1, 1}));
    return net;
}

double
ms_between(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::milli>(b - a).count();
}

/**
 * Small CNN covering both conv front-end shapes: the 3x3 stride-1 and
 * 1x1 layers resolve to the elided front end, the 2x2 stride-2 layer
 * (disjoint windows) to the fused one. The --dump-stats block runs it
 * so the CI BFREE_FORCE_FRONTEND sweep byte-compares conv statistics
 * across legacy/fused/elided, not just the FC-only MLP.
 */
dnn::Network
make_cnn()
{
    dnn::Network net("cnn-frontend", {3, 8, 8});
    net.add(dnn::make_conv("c3x3", {3, 8, 8}, 8, 3, 1, 1));
    net.add(dnn::make_conv("c2x2s2", {8, 8, 8}, 8, 2, 2, 0));
    net.add(dnn::make_conv("c1x1", {8, 4, 4}, 4, 1, 1, 0));
    return net;
}

/** Bit-pattern checksum of a float tensor (exact, order-dependent). */
std::uint64_t
checksum(const dnn::FloatTensor &t)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        std::uint32_t bits;
        std::memcpy(&bits, &t[i], sizeof bits);
        sum = sum * 1099511628211ull + bits;
    }
    return sum;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned threads = sim::threads_from_args(argc, argv);
    std::string out_path = "BENCH_pr5.json";
    std::string baseline_path;
    bool dump_stats = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--dump-stats"))
            dump_stats = true;
        else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[i + 1];
        else if (!std::strcmp(argv[i], "--check-baseline") && i + 1 < argc)
            baseline_path = argv[i + 1];
    }

    const dnn::Network net = make_mlp();
    sim::Rng rng(5);
    const core::NetworkWeights weights = core::random_weights(net, rng);

    const std::size_t batch_n = 32;
    std::vector<dnn::FloatTensor> inputs;
    for (std::size_t i = 0; i < batch_n; ++i) {
        dnn::FloatTensor in({1024, 1, 1});
        in.fillUniform(rng, -1.0, 1.0);
        inputs.push_back(std::move(in));
    }

    const core::NetworkPlan plan =
        core::NetworkPlan::compile(net, weights, 8);

    if (dump_stats) {
        // Deterministic block only: batch statistics and the output
        // checksums are bit-identical for any --threads, so this
        // output byte-compares across thread counts.
        core::BatchOptions opts;
        opts.threads = threads;
        const core::BatchResult r =
            core::run_functional_batch(plan, inputs, opts);
        std::uint64_t osum = 0;
        for (const dnn::FloatTensor &t : r.outputs)
            osum = osum * 31 + checksum(t);
        std::printf("micro_plan batch stats: net=%s inputs=%zu bits=8\n",
                    net.name().c_str(), inputs.size());
        std::printf("cycles %llu\n",
                    static_cast<unsigned long long>(r.stats.cycles));
        std::printf("macs %llu\n",
                    static_cast<unsigned long long>(r.stats.macs));
        std::printf("rom_lookups %llu\n",
                    static_cast<unsigned long long>(
                        r.stats.counts.romLookups));
        std::printf("lut_lookups %llu\n",
                    static_cast<unsigned long long>(
                        r.stats.counts.lutLookups));
        std::printf("adds %llu\n",
                    static_cast<unsigned long long>(r.stats.counts.adds));
        std::printf("special_lut_events %llu\n",
                    static_cast<unsigned long long>(
                        r.stats.specialLutEvents));
        std::printf("energy_total %.17g\n", r.energy.total());
        std::printf("output_checksum %016llx\n",
                    static_cast<unsigned long long>(osum));

        // Conv block: all three front ends must produce these exact
        // bytes (the patch fed to the datapath is identical either
        // way), so this section byte-compares across the CI
        // BFREE_FORCE_FRONTEND sweep as well as across thread counts.
        const dnn::Network cnn = make_cnn();
        sim::Rng crng(10);
        const core::NetworkWeights cweights =
            core::random_weights(cnn, crng);
        std::vector<dnn::FloatTensor> cinputs;
        for (std::size_t i = 0; i < 8; ++i) {
            dnn::FloatTensor in({3, 8, 8});
            in.fillUniform(crng, -1.0, 1.0);
            cinputs.push_back(std::move(in));
        }
        const core::NetworkPlan cplan =
            core::NetworkPlan::compile(cnn, cweights, 8);
        const core::BatchResult cr =
            core::run_functional_batch(cplan, cinputs, opts);
        std::uint64_t csum = 0;
        for (const dnn::FloatTensor &t : cr.outputs)
            csum = csum * 31 + checksum(t);
        std::printf("micro_plan conv stats: net=%s inputs=%zu bits=8\n",
                    cnn.name().c_str(), cinputs.size());
        std::printf("cycles %llu\n",
                    static_cast<unsigned long long>(cr.stats.cycles));
        std::printf("macs %llu\n",
                    static_cast<unsigned long long>(cr.stats.macs));
        std::printf("lut_lookups %llu\n",
                    static_cast<unsigned long long>(
                        cr.stats.counts.lutLookups));
        std::printf("adds %llu\n",
                    static_cast<unsigned long long>(cr.stats.counts.adds));
        std::printf("energy_total %.17g\n", cr.energy.total());
        std::printf("output_checksum %016llx\n",
                    static_cast<unsigned long long>(csum));
        return 0;
    }

    sim::BenchJson json;
    json.set("host", "hardware_threads",
             static_cast<double>(sim::resolve_threads(0)));

    // --- cold compile ------------------------------------------------
    const int compile_reps = 5;
    const auto c0 = Clock::now();
    std::uint64_t frozen = 0;
    for (int r = 0; r < compile_reps; ++r) {
        const core::NetworkPlan p = core::NetworkPlan::compile(net,
                                                               weights, 8);
        frozen = p.stats().frozenValues;
    }
    const auto c1 = Clock::now();
    const double compile_ms = ms_between(c0, c1) / compile_reps;
    json.set("plan_compile", "compile_ms", compile_ms);
    json.set("plan_compile", "frozen_values",
             static_cast<double>(frozen));
    json.set("plan_compile", "arena_bytes",
             static_cast<double>(plan.stats().arenaBytes));

    // --- whole-network: per-call quantization vs warm plan -----------
    // Both supported integer precisions; the warm plan must beat the
    // per-call path at each (it skips the same freeze work either way).
    const int reps = 10;
    for (unsigned bits : {4u, 8u}) {
        const core::NetworkPlan p =
            core::NetworkPlan::compile(net, weights, bits);
        core::FunctionalExecutor legacy_exec;
        core::FunctionalExecutor warm_exec;

        core::FunctionalResult legacy_res =
            legacy_exec.run(net, inputs[0], weights, bits); // warm-up
        const auto l0 = Clock::now();
        for (int r = 0; r < reps; ++r)
            legacy_res = legacy_exec.run(net, inputs[0], weights, bits);
        const auto l1 = Clock::now();

        core::FunctionalResult warm_res = warm_exec.run(p, inputs[0]);
        const auto w0 = Clock::now();
        for (int r = 0; r < reps; ++r)
            warm_res = warm_exec.run(p, inputs[0]);
        const auto w1 = Clock::now();

        if (checksum(legacy_res.output) != checksum(warm_res.output)) {
            std::cerr << "warm plan output diverged from the legacy "
                         "per-call path at " << bits << " bits\n";
            return 2;
        }

        const double legacy_ms = ms_between(l0, l1) / reps;
        const double warm_ms = ms_between(w0, w1) / reps;
        const double speedup = warm_ms > 0.0 ? legacy_ms / warm_ms : 0.0;
        const std::string section =
            "whole_network_" + std::to_string(bits) + "bit";
        json.set(section, "legacy_ms_per_run", legacy_ms);
        json.set(section, "warm_plan_ms_per_run", warm_ms);
        json.set(section, "warm_runs_per_s",
                 warm_ms > 0.0 ? 1000.0 / warm_ms : 0.0);
        json.set(section, "speedup", speedup);
        std::printf("%-20s legacy %8.3f ms  warm plan %8.3f ms  "
                    "speedup %5.2fx\n",
                    section.c_str(), legacy_ms, warm_ms, speedup);
    }

    // --- batched throughput ------------------------------------------
    // Multi-worker points on a 1-hardware-thread host can only measure
    // oversubscription overhead: measure the 1-thread throughput, mark
    // the scaling section skipped, and emit no efficiency figures.
    const unsigned hw = sim::resolve_threads(0);
    double ips_first = 0.0;
    double ips_last = 0.0;
    for (unsigned t : {1u, 2u, 4u, 8u}) {
        if (hw <= 1 && t > 1)
            break;
        core::BatchOptions opts;
        opts.threads = t;
        (void)core::run_functional_batch(plan, inputs, opts); // warm-up
        const auto b0 = Clock::now();
        const core::BatchResult r =
            core::run_functional_batch(plan, inputs, opts);
        const auto b1 = Clock::now();
        const double sec =
            std::chrono::duration<double>(b1 - b0).count();
        const double ips =
            sec > 0.0 ? static_cast<double>(r.outputs.size()) / sec : 0.0;
        const std::string section = "batch_" + std::to_string(t) + "t";
        json.set(section, "images_per_s", ips);
        if (t == 1)
            ips_first = ips;
        // Scaling efficiency: fraction of perfect linear speedup over
        // the 1-thread point at this thread count.
        json.set(section, "scaling_efficiency",
                 ips_first > 0.0 ? ips / (ips_first * t) : 0.0);
        std::printf("%-14s %8.1f images/s\n", section.c_str(), ips);
        ips_last = ips;
    }
    json.set("batch_scaling", "skipped", hw <= 1 ? 1.0 : 0.0);
    if (hw <= 1)
        std::cout << "batch scaling: skipped (1 hardware thread)\n";
    else
        json.set("batch_scaling", "t8_over_t1",
                 ips_first > 0.0 ? ips_last / ips_first : 0.0);
    json.set("batch_scaling", "hardware_threads",
             static_cast<double>(hw));

    if (!json.save(out_path)) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";

    if (!baseline_path.empty()) {
        sim::BenchJson baseline;
        if (!baseline.load(baseline_path)) {
            std::cerr << "cannot load baseline " << baseline_path << "\n";
            return 1;
        }
        std::vector<std::array<const char *, 2>> tracked = {
            {"whole_network_4bit", "warm_runs_per_s"},
            {"whole_network_8bit", "warm_runs_per_s"},
        };
        // The batch_8t point is a scaling assertion; on a 1-thread
        // host it can only measure oversubscription, so skip it there.
        if (sim::resolve_threads(0) > 1)
            tracked.push_back({"batch_8t", "images_per_s"});
        else
            std::cout << "note: 1 hardware thread; batch scaling "
                         "points not gated\n";
        bool ok = true;
        for (const auto &key : tracked) {
            const double ref = baseline.get(key[0], key[1], 0.0);
            const double now = json.get(key[0], key[1], 0.0);
            // Only a >5x collapse vs the committed baseline fails: the
            // gate catches algorithmic regressions, not runner noise.
            if (ref > 0.0 && now < ref / 5.0) {
                std::cerr << key[0] << "." << key[1] << ": " << now
                          << " is >5x below baseline " << ref << "\n";
                ok = false;
            }
        }
        if (!ok)
            return 1;
        std::cout << "baseline check passed (threshold: 5x)\n";
    }
    return 0;
}
