/**
 * @file
 * bfree_lint — statically verify compiled PIM programs without
 * executing them. Compiles every layer of the requested networks and
 * runs the KernelVerifier rule catalogue over the result.
 *
 *   bfree_lint --all
 *   bfree_lint --network vgg16 --network bert-base
 *   bfree_lint --network inception --mode conv --precision 4
 *
 * Exit status: 0 when every kernel is clean, 1 when any
 * error-severity diagnostic fires, 2 on usage errors.
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/bfree.hh"
#include "dnn/quantize.hh"
#include "verify/kernel_verifier.hh"

namespace {

using namespace bfree;

void
usage(std::ostream &os)
{
    os << "usage: bfree_lint [options]\n"
          "  --network NAME    vgg16 | inception | lstm | bert-base |\n"
          "                    bert-large | tiny (repeatable)\n"
          "  --all             lint every network in the model zoo\n"
          "  --slices N        LLC slices to map onto (default 14)\n"
          "  --mode MODE       auto | conv | matmul (default auto)\n"
          "  --precision P     8 | 4 | mixed        (default 8)\n"
          "  --verbose         print warnings and notes too\n"
          "  --help            this text\n";
}

dnn::Network
select_network(const std::string &name)
{
    if (name == "vgg16")
        return dnn::make_vgg16();
    if (name == "inception")
        return dnn::make_inception_v3();
    if (name == "lstm")
        return dnn::make_lstm();
    if (name == "bert-base")
        return dnn::make_bert_base();
    if (name == "bert-large")
        return dnn::make_bert_large();
    if (name == "tiny")
        return dnn::make_tiny_cnn();
    std::cerr << "unknown network '" << name << "'\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    std::string mode = "auto";
    std::string precision = "8";
    unsigned slices = 14;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--network")
            names.push_back(next());
        else if (arg == "--all")
            names = {"vgg16", "inception", "lstm",
                     "bert-base", "bert-large", "tiny"};
        else if (arg == "--slices") {
            const std::string v = next();
            try {
                slices = static_cast<unsigned>(std::stoul(v));
            } catch (const std::exception &) {
                std::cerr << "--slices got '" << v << "'\n";
                return 2;
            }
        } else if (arg == "--mode")
            mode = next();
        else if (arg == "--precision")
            precision = next();
        else if (arg == "--verbose")
            verbose = true;
        else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (names.empty())
        names.push_back("vgg16");

    map::ExecConfig cfg;
    cfg.mapper.slices = slices;
    if (mode == "conv")
        cfg.mapper.forcedMode = map::ExecMode::ConvMode;
    else if (mode == "matmul")
        cfg.mapper.forcedMode = map::ExecMode::MatmulMode;
    else if (mode != "auto") {
        std::cerr << "unknown mode '" << mode << "'\n";
        return 2;
    }

    const core::BFreeAccelerator acc;
    std::size_t total_errors = 0;

    for (const std::string &name : names) {
        dnn::Network net = select_network(name);
        if (precision == "4")
            net.setUniformPrecision(4);
        else if (precision == "mixed")
            dnn::apply_mixed_precision(net);
        else if (precision != "8") {
            std::cerr << "unknown precision '" << precision << "'\n";
            return 2;
        }

        const verify::VerifyReport report = acc.lint(net, cfg);
        total_errors += report.errorCount();

        std::cout << net.name() << ": " << report.errorCount()
                  << " error(s), " << report.warningCount()
                  << " warning(s) across " << net.layers().size()
                  << " layers\n";
        for (const verify::Diagnostic &d : report.diagnostics()) {
            if (d.severity == verify::Severity::Error || verbose)
                std::cout << "  " << d.toString() << "\n";
        }
    }

    return total_errors > 0 ? 1 : 0;
}
