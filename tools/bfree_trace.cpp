/**
 * @file
 * bfree_trace — dump the cycle-by-cycle BCE pipeline for given
 * operands (the Fig. 6 / Fig. 7 walk-throughs, programmatically).
 *
 *   bfree_trace conv 4,6,5 3,3,7
 *   bfree_trace matmul 10,-3 8
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bce/pipeline_trace.hh"
#include "verify/kernel_verifier.hh"

namespace {

std::vector<int>
parse_list(const std::string &text)
{
    std::vector<int> out;
    std::istringstream in(text);
    std::string token;
    while (std::getline(in, token, ','))
        out.push_back(std::stoi(token));
    return out;
}

/**
 * Vet an operand list through the verifier instead of trusting it:
 * out-of-range operands would index past the 49-entry LUT. Prints the
 * diagnostics; returns false when any error fired.
 */
bool
operands_ok(const std::vector<int> &values, unsigned bits,
            bool is_signed, const std::string &location)
{
    bfree::verify::VerifyReport report;
    bfree::verify::check_operand_range(values, bits, is_signed, report,
                                       location);
    for (const bfree::verify::Diagnostic &d : report.diagnostics())
        std::cerr << d.toString() << "\n";
    return report.ok();
}

void
usage()
{
    std::cerr << "usage:\n"
                 "  bfree_trace conv W1,W2,... X1,X2,...\n"
                 "      conv-mode dot product of 4-bit operand lists\n"
                 "  bfree_trace matmul A1,A2,... WIDTH\n"
                 "      matmul-mode broadcast of 8-bit A operands\n"
                 "      against WIDTH-wide rows of ones\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfree::bce;

    if (argc < 2)
        usage();
    const std::string mode = argv[1];
    const bfree::lut::MultLut lut;

    if (mode == "conv") {
        if (argc != 4)
            usage();
        const std::vector<int> w = parse_list(argv[2]);
        const std::vector<int> x = parse_list(argv[3]);
        if (w.size() != x.size()) {
            std::cerr << "operand lists must have equal length\n";
            return 2;
        }
        if (!operands_ok(w, 4, /*is_signed=*/false, "weights")
            || !operands_ok(x, 4, /*is_signed=*/false, "inputs"))
            return 1;
        std::vector<unsigned> wu(w.begin(), w.end());
        std::vector<unsigned> xu(x.begin(), x.end());
        const PipelineTrace trace = trace_conv_dot(wu, xu, lut);
        std::printf("%s", trace.toString().c_str());
        return 0;
    }

    if (mode == "matmul") {
        if (argc != 4)
            usage();
        const std::vector<int> a = parse_list(argv[2]);
        const int width = std::stoi(argv[3]);
        if (!operands_ok(a, 8, /*is_signed=*/true, "a-operands"))
            return 1;
        if (width <= 0) {
            std::cerr << "WIDTH must be positive\n";
            return 2;
        }
        std::vector<std::int32_t> a_ops(a.begin(), a.end());
        std::vector<std::vector<std::int8_t>> rows(
            a_ops.size(),
            std::vector<std::int8_t>(static_cast<std::size_t>(width),
                                     1));
        const PipelineTrace trace =
            trace_matmul_broadcast(a_ops, rows, lut);
        std::printf("%s", trace.toString().c_str());
        return 0;
    }

    usage();
    return 2;
}
