/**
 * @file
 * bfree_trace — dump the cycle-by-cycle BCE pipeline for given
 * operands (the Fig. 6 / Fig. 7 walk-throughs, programmatically).
 *
 *   bfree_trace conv 4,6,5 3,3,7
 *   bfree_trace matmul 10,-3 8
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bce/pipeline_trace.hh"

namespace {

std::vector<int>
parse_list(const std::string &text)
{
    std::vector<int> out;
    std::istringstream in(text);
    std::string token;
    while (std::getline(in, token, ','))
        out.push_back(std::stoi(token));
    return out;
}

void
usage()
{
    std::cerr << "usage:\n"
                 "  bfree_trace conv W1,W2,... X1,X2,...\n"
                 "      conv-mode dot product of 4-bit operand lists\n"
                 "  bfree_trace matmul A1,A2,... WIDTH\n"
                 "      matmul-mode broadcast of 8-bit A operands\n"
                 "      against WIDTH-wide rows of ones\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfree::bce;

    if (argc < 2)
        usage();
    const std::string mode = argv[1];
    const bfree::lut::MultLut lut;

    if (mode == "conv") {
        if (argc != 4)
            usage();
        const std::vector<int> w = parse_list(argv[2]);
        const std::vector<int> x = parse_list(argv[3]);
        if (w.size() != x.size()) {
            std::cerr << "operand lists must have equal length\n";
            return 2;
        }
        std::vector<unsigned> wu(w.begin(), w.end());
        std::vector<unsigned> xu(x.begin(), x.end());
        const PipelineTrace trace = trace_conv_dot(wu, xu, lut);
        std::printf("%s", trace.toString().c_str());
        return 0;
    }

    if (mode == "matmul") {
        if (argc != 4)
            usage();
        const std::vector<int> a = parse_list(argv[2]);
        const int width = std::stoi(argv[3]);
        std::vector<std::int32_t> a_ops(a.begin(), a.end());
        std::vector<std::vector<std::int8_t>> rows(
            a_ops.size(),
            std::vector<std::int8_t>(static_cast<std::size_t>(width),
                                     1));
        const PipelineTrace trace =
            trace_matmul_broadcast(a_ops, rows, lut);
        std::printf("%s", trace.toString().c_str());
        return 0;
    }

    usage();
    return 2;
}
