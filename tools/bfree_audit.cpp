/**
 * @file
 * bfree_audit — whole-plan static analysis over the model zoo, without
 * executing anything. Where bfree_lint proves one kernel at a time,
 * the auditor lays every network out on the fabric and runs the
 * verify::PlanVerifier catalogue: region/interval disjointness,
 * producer/consumer dataflow, the capacity ledger, and the
 * serving-config audit.
 *
 *   bfree_audit --all
 *   bfree_audit --network vgg16 --precision 4
 *   bfree_audit --all --json findings.jsonl
 *
 * Exit status (shared with bfree_lint / bfree_cli): 0 when every audit
 * is clean, 1 when any error-severity finding fires, 2 on usage or
 * I/O errors.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dnn/model_zoo.hh"
#include "dnn/quantize.hh"
#include "serve/server.hh"
#include "verify/plan_verifier.hh"

namespace {

using namespace bfree;

void
usage(std::ostream &os)
{
    os << "usage: bfree_audit [options]\n"
          "  --network NAME    vgg16 | inception | lstm | bert-base |\n"
          "                    bert-large | tiny (repeatable)\n"
          "  --all             audit every network in the model zoo\n"
          "  --precision P     8 | 4 | mixed | both   (default both)\n"
          "  --slices N        LLC slices to map onto (default 14)\n"
          "  --slo TICKS       SLO deadline for the serve-config audit\n"
          "  --json FILE       append one JSON object per finding\n"
          "  --verbose         print warnings and notes too\n"
          "  --help            this text\n";
}

dnn::Network
select_network(const std::string &name)
{
    if (name == "vgg16")
        return dnn::make_vgg16();
    if (name == "inception")
        return dnn::make_inception_v3();
    if (name == "lstm")
        return dnn::make_lstm();
    if (name == "bert-base")
        return dnn::make_bert_base();
    if (name == "bert-large")
        return dnn::make_bert_large();
    if (name == "tiny")
        return dnn::make_tiny_cnn();
    std::cerr << "unknown network '" << name << "'\n";
    std::exit(2);
}

/** Minimal JSON string escaping (quotes, backslashes, control bytes). */
std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Print one audit's findings and stream them to the JSON sink. */
std::size_t
emit(const std::string &subject, unsigned bits,
     const verify::VerifyReport &report, bool verbose, std::ostream *json)
{
    std::cout << subject << ": " << report.errorCount() << " error(s), "
              << report.warningCount() << " warning(s)\n";
    for (const verify::Diagnostic &d : report.diagnostics()) {
        if (d.severity == verify::Severity::Error || verbose)
            std::cout << "  " << d.toString() << "\n";
        if (json) {
            *json << "{\"subject\":\"" << json_escape(subject)
                  << "\",\"precision\":" << bits << ",\"rule\":\""
                  << verify::rule_name(d.rule) << "\",\"severity\":\""
                  << verify::severity_name(d.severity)
                  << "\",\"location\":\"" << json_escape(d.location)
                  << "\",\"message\":\"" << json_escape(d.message)
                  << "\",\"fix\":\"" << json_escape(d.fixHint)
                  << "\"}\n";
        }
    }
    return report.errorCount();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    std::string precision = "both";
    std::string json_path;
    unsigned slices = 14;
    sim::Tick slo = sim::max_tick;
    bool verbose = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        auto next_u64 = [&]() -> std::uint64_t {
            const std::string v = next();
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                std::cerr << arg << " got '" << v << "'\n";
                std::exit(2);
            }
        };
        if (arg == "--network")
            names.push_back(next());
        else if (arg == "--all")
            names = {"vgg16", "inception", "lstm",
                     "bert-base", "bert-large", "tiny"};
        else if (arg == "--precision")
            precision = next();
        else if (arg == "--slices")
            slices = static_cast<unsigned>(next_u64());
        else if (arg == "--slo")
            slo = next_u64();
        else if (arg == "--json")
            json_path = next();
        else if (arg == "--verbose")
            verbose = true;
        else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (names.empty())
        names = {"vgg16", "inception", "lstm",
                 "bert-base", "bert-large", "tiny"};

    // Precisions to sweep; 0 = mixed (per-layer precisions accepted).
    std::vector<unsigned> sweeps;
    if (precision == "both")
        sweeps = {8, 4};
    else if (precision == "8")
        sweeps = {8};
    else if (precision == "4")
        sweeps = {4};
    else if (precision == "mixed")
        sweeps = {0};
    else {
        std::cerr << "unknown precision '" << precision << "'\n";
        return 2;
    }

    std::ofstream json_file;
    std::ostream *json = nullptr;
    if (!json_path.empty()) {
        json_file.open(json_path);
        if (!json_file) {
            std::cerr << "cannot open '" << json_path << "'\n";
            return 2;
        }
        json = &json_file;
    }

    map::MapperOptions mapper;
    mapper.slices = slices;
    const verify::PlanVerifier verifier{tech::CacheGeometry{}};

    std::size_t total_errors = 0;
    for (const std::string &name : names) {
        for (const unsigned bits : sweeps) {
            dnn::Network net = select_network(name);
            if (bits != 0)
                net.setUniformPrecision(bits);
            else
                dnn::apply_mixed_precision(net);

            const verify::VerifyReport report =
                verifier.verifyNetwork(net, bits, mapper);
            const std::string subject =
                net.name() + (bits == 0 ? " (mixed)"
                                        : " (" + std::to_string(bits)
                                              + "-bit)");
            total_errors += emit(subject, bits, report, verbose, json);
        }
    }

    // Audit the serving defaults the CLI and the serve tools construct
    // engines with, under the requested SLO deadline.
    {
        const serve::ServeConfig scfg;
        verify::ServeAuditConfig audit;
        audit.queueDepth = scfg.queueDepth;
        audit.maxBatch = scfg.batcher.maxBatch;
        audit.windowTicks = scfg.batcher.windowTicks;
        audit.cyclesPerTick = scfg.cyclesPerTick;
        audit.minServiceTicks = scfg.minServiceTicks;
        audit.sloDeadlineTicks = slo;
        total_errors += emit("serve defaults", 0,
                             verify::audit_serve_config(audit), verbose,
                             json);
    }

    if (json && !*json) {
        std::cerr << "failed writing '" << json_path << "'\n";
        return 2;
    }
    return total_errors > 0 ? 1 : 0;
}
