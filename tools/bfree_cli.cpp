/**
 * @file
 * bfree_cli — run any modelled workload/configuration from the shell.
 *
 *   bfree_cli --network bert-base --batch 16 --memory hbm
 *   bfree_cli --network vgg16 --slices 1 --baseline eyeriss
 *   bfree_cli --network inception --mode conv --baseline neural-cache
 *   bfree_cli --network vgg16 --precision mixed --csv
 *   bfree_cli --network lstm --stats
 */

#include <cstring>
#include <iostream>
#include <string>

#include "core/bfree.hh"
#include "core/report.hh"
#include "core/stats_export.hh"
#include "dnn/quantize.hh"

namespace {

using namespace bfree;

void
usage(std::ostream &os)
{
    os << "usage: bfree_cli [options]\n"
          "  --network NAME    vgg16 | inception | lstm | bert-base |\n"
          "                    bert-large | tiny   (default vgg16)\n"
          "  --batch N         batch size (default 1)\n"
          "  --memory KIND     dram | edram | hbm   (default dram)\n"
          "  --slices N        LLC slices to use (default 14)\n"
          "  --mode MODE       auto | conv | matmul (default auto)\n"
          "  --precision P     8 | 4 | mixed        (default 8)\n"
          "  --baseline B      none | neural-cache | eyeriss | cpu |\n"
          "                    gpu | all            (default none)\n"
          "  --describe        print the network's structure and exit\n"
          "  --layers          print the per-layer table\n"
          "  --csv             emit per-layer CSV instead of text\n"
          "  --stats           dump gem5-style statistics\n"
          "  --help            this text\n";
}

dnn::Network
select_network(const std::string &name)
{
    if (name == "vgg16")
        return dnn::make_vgg16();
    if (name == "inception")
        return dnn::make_inception_v3();
    if (name == "lstm")
        return dnn::make_lstm();
    if (name == "bert-base")
        return dnn::make_bert_base();
    if (name == "bert-large")
        return dnn::make_bert_large();
    if (name == "tiny")
        return dnn::make_tiny_cnn();
    std::cerr << "unknown network '" << name << "'\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string network = "vgg16";
    std::string memory = "dram";
    std::string mode = "auto";
    std::string precision = "8";
    std::string baseline = "none";
    unsigned batch = 1;
    unsigned slices = 14;
    bool layers = false;
    bool describe = false;
    bool csv = false;
    bool stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--network")
            network = next();
        else if (arg == "--batch")
            batch = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--memory")
            memory = next();
        else if (arg == "--slices")
            slices = static_cast<unsigned>(std::stoul(next()));
        else if (arg == "--mode")
            mode = next();
        else if (arg == "--precision")
            precision = next();
        else if (arg == "--baseline")
            baseline = next();
        else if (arg == "--describe")
            describe = true;
        else if (arg == "--layers")
            layers = true;
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--stats")
            stats = true;
        else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    dnn::Network net = select_network(network);
    if (precision == "4")
        net.setUniformPrecision(4);
    else if (precision == "mixed")
        dnn::apply_mixed_precision(net);
    else if (precision != "8") {
        std::cerr << "unknown precision '" << precision << "'\n";
        return 2;
    }

    if (describe) {
        core::describe_network(std::cout, net);
        return 0;
    }

    map::ExecConfig cfg;
    cfg.batch = batch;
    cfg.mapper.slices = slices;
    if (memory == "dram")
        cfg.memory = tech::MainMemoryKind::DRAM;
    else if (memory == "edram")
        cfg.memory = tech::MainMemoryKind::EDRAM;
    else if (memory == "hbm")
        cfg.memory = tech::MainMemoryKind::HBM;
    else {
        std::cerr << "unknown memory '" << memory << "'\n";
        return 2;
    }
    if (mode == "conv")
        cfg.mapper.forcedMode = map::ExecMode::ConvMode;
    else if (mode == "matmul")
        cfg.mapper.forcedMode = map::ExecMode::MatmulMode;
    else if (mode != "auto") {
        std::cerr << "unknown mode '" << mode << "'\n";
        return 2;
    }

    core::BFreeAccelerator acc;
    const map::RunResult run = acc.run(net, cfg);

    if (csv) {
        core::write_csv_header(std::cout);
        core::write_csv_rows(std::cout, run);
        return 0;
    }
    if (stats) {
        core::dump_run_stats(std::cout, run);
        return 0;
    }

    core::print_summary(std::cout, run);
    core::print_phase_shares(std::cout, "phase shares", run.time);
    std::cout << "energy breakdown:\n";
    core::print_energy_breakdown(std::cout, run.energy);
    if (layers) {
        std::cout << "\n";
        core::print_layer_table(std::cout, run);
    }

    auto compare = [&](const std::string &label, double seconds,
                       double joules) {
        std::cout << label << ": "
                  << core::format_seconds(seconds) << " / "
                  << core::format_joules(joules) << "  (BFree "
                  << seconds / run.secondsPerInference() << "x time, "
                  << joules / run.joulesPerInference()
                  << "x energy advantage)\n";
    };

    if (baseline == "neural-cache" || baseline == "all") {
        const auto nc = acc.runNeuralCache(net, cfg);
        compare("Neural Cache", nc.secondsPerInference(),
                nc.joulesPerInference());
    }
    if (baseline == "eyeriss" || baseline == "all") {
        const auto ey = acc.runEyeriss(net);
        compare("Eyeriss (iso-area)", ey.secondsPerInference(),
                ey.joulesPerInference());
    }
    if (baseline == "cpu" || baseline == "all") {
        const auto cpu = acc.runCpu(net, batch);
        compare(cpu.device, cpu.secondsPerInference,
                cpu.joulesPerInference);
    }
    if (baseline == "gpu" || baseline == "all") {
        const auto gpu = acc.runGpu(net, batch);
        compare(gpu.device, gpu.secondsPerInference,
                gpu.joulesPerInference);
    }
    return 0;
}
