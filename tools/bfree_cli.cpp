/**
 * @file
 * bfree_cli — run any modelled workload/configuration from the shell.
 *
 *   bfree_cli --network bert-base --batch 16 --memory hbm
 *   bfree_cli --network vgg16 --slices 1 --baseline eyeriss
 *   bfree_cli --network inception --mode conv --baseline neural-cache
 *   bfree_cli --network vgg16 --precision mixed --csv
 *   bfree_cli --network lstm --stats
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include <optional>

#include "core/bfree.hh"
#include "core/network_plan.hh"
#include "core/report.hh"
#include "core/stats_export.hh"
#include "dnn/im2col.hh"
#include "dnn/layer.hh"
#include "dnn/quantize.hh"
#include "serve/server.hh"
#include "serve/trace.hh"
#include "sim/parallel.hh"
#include "verify/plan_verifier.hh"

namespace {

using namespace bfree;

void
usage(std::ostream &os)
{
    os << "usage: bfree_cli [options]\n"
          "  --network NAME    vgg16 | inception | lstm | bert-base |\n"
          "                    bert-large | tiny   (default vgg16)\n"
          "  --batch N         batch size (default 1)\n"
          "  --memory KIND     dram | edram | hbm   (default dram)\n"
          "  --slices N        LLC slices to use (default 14)\n"
          "  --mode MODE       auto | conv | matmul (default auto)\n"
          "  --precision P     8 | 4 | mixed        (default 8)\n"
          "  --baseline B      none | neural-cache | eyeriss | cpu |\n"
          "                    gpu | all            (default none)\n"
          "  --threads N       worker threads for the run + baseline\n"
          "                    sweep (default: hardware concurrency)\n"
          "  --lint            statically verify the compiled kernels\n"
          "                    and exit (non-zero on errors)\n"
          "  --audit           whole-plan static analysis (regions,\n"
          "                    dataflow, capacity; the bfree_audit\n"
          "                    entry point) and exit (non-zero on\n"
          "                    errors)\n"
          "  --plan-stats      compile a functional execution plan and\n"
          "                    print its footprint (arena bytes,\n"
          "                    per-layer scratch, frozen weights,\n"
          "                    amortization counts), then exit\n"
          "  --serve-stats     replay a fixed-seed arrival trace\n"
          "                    through the serving front-end (request\n"
          "                    queue + continuous batcher) and dump the\n"
          "                    latency/SLO statistics, then exit\n"
          "  --describe        print the network's structure and exit\n"
          "  --layers          print the per-layer table\n"
          "  --csv             emit per-layer CSV instead of text\n"
          "  --stats           dump gem5-style statistics\n"
          "  --help            this text\n";
}

dnn::Network
select_network(const std::string &name)
{
    if (name == "vgg16")
        return dnn::make_vgg16();
    if (name == "inception")
        return dnn::make_inception_v3();
    if (name == "lstm")
        return dnn::make_lstm();
    if (name == "bert-base")
        return dnn::make_bert_base();
    if (name == "bert-large")
        return dnn::make_bert_large();
    if (name == "tiny")
        return dnn::make_tiny_cnn();
    std::cerr << "unknown network '" << name << "'\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string network = "vgg16";
    std::string memory = "dram";
    std::string mode = "auto";
    std::string precision = "8";
    std::string baseline = "none";
    unsigned batch = 1;
    unsigned slices = 14;
    unsigned threads = 0; // 0: hardware concurrency
    bool layers = false;
    bool describe = false;
    bool csv = false;
    bool stats = false;
    bool lint = false;
    bool audit = false;
    bool planStats = false;
    bool serveStats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        // stoul would accept "-3" and wrap it to ~4 billion.
        auto next_unsigned = [&](unsigned long max) -> unsigned {
            const std::string v = next();
            unsigned long n = 0;
            std::size_t used = 0;
            try {
                n = std::stoul(v, &used);
            } catch (const std::exception &) {
                used = 0;
            }
            if (used != v.size() || v[0] == '-' || n > max) {
                std::cerr << arg << " got '" << v
                          << "', expected a number in [0, " << max
                          << "]\n";
                std::exit(2);
            }
            return static_cast<unsigned>(n);
        };
        if (arg == "--network")
            network = next();
        else if (arg == "--batch")
            batch = next_unsigned(1u << 20);
        else if (arg == "--memory")
            memory = next();
        else if (arg == "--slices")
            slices = next_unsigned(1u << 10);
        else if (arg == "--threads")
            threads = next_unsigned(4096);
        else if (arg == "--mode")
            mode = next();
        else if (arg == "--precision")
            precision = next();
        else if (arg == "--baseline")
            baseline = next();
        else if (arg == "--lint")
            lint = true;
        else if (arg == "--audit")
            audit = true;
        else if (arg == "--plan-stats")
            planStats = true;
        else if (arg == "--serve-stats")
            serveStats = true;
        else if (arg == "--describe")
            describe = true;
        else if (arg == "--layers")
            layers = true;
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--stats")
            stats = true;
        else if (arg == "--help") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    dnn::Network net = select_network(network);
    if (precision == "4")
        net.setUniformPrecision(4);
    else if (precision == "mixed")
        dnn::apply_mixed_precision(net);
    else if (precision != "8") {
        std::cerr << "unknown precision '" << precision << "'\n";
        return 2;
    }

    if (describe) {
        core::describe_network(std::cout, net);
        return 0;
    }

    map::ExecConfig cfg;
    cfg.batch = batch;
    cfg.mapper.slices = slices;
    if (memory == "dram")
        cfg.memory = tech::MainMemoryKind::DRAM;
    else if (memory == "edram")
        cfg.memory = tech::MainMemoryKind::EDRAM;
    else if (memory == "hbm")
        cfg.memory = tech::MainMemoryKind::HBM;
    else {
        std::cerr << "unknown memory '" << memory << "'\n";
        return 2;
    }
    if (mode == "conv")
        cfg.mapper.forcedMode = map::ExecMode::ConvMode;
    else if (mode == "matmul")
        cfg.mapper.forcedMode = map::ExecMode::MatmulMode;
    else if (mode != "auto") {
        std::cerr << "unknown mode '" << mode << "'\n";
        return 2;
    }

    core::BFreeAccelerator acc;

    if (lint) {
        const verify::VerifyReport report = acc.lint(net, cfg);
        std::cout << net.name() << ": " << report.errorCount()
                  << " error(s), " << report.warningCount()
                  << " warning(s)\n";
        for (const verify::Diagnostic &d : report.diagnostics())
            std::cout << "  " << d.toString() << "\n";
        return report.ok() ? 0 : 1;
    }

    if (audit) {
        // Shares the bfree_audit entry point: whole-plan analysis over
        // the selected network at its configured per-layer precisions
        // (expected bits pinned for the uniform sweeps, 0 for mixed).
        const unsigned expected =
            (precision == "4") ? 4u : (precision == "8") ? 8u : 0u;
        const verify::PlanVerifier verifier{tech::CacheGeometry{}};
        const verify::VerifyReport report =
            verifier.verifyNetwork(net, expected, cfg.mapper);
        std::cout << net.name() << ": " << report.errorCount()
                  << " error(s), " << report.warningCount()
                  << " warning(s)\n";
        for (const verify::Diagnostic &d : report.diagnostics())
            std::cout << "  " << d.toString() << "\n";
        return report.ok() ? 0 : 1;
    }

    if (planStats) {
        // Plans are uniform-precision; "mixed" falls back to int8.
        const unsigned bits = (precision == "4") ? 4u : 8u;
        core::PlanStats probe;
        if (!core::NetworkPlan::tryEstimate(net, bits, probe)) {
            std::cout << net.name()
                      << ": no execution plan — the flattened layer "
                         "list cannot be planned (branched topology, "
                         "or a layer kind the functional path does "
                         "not execute)\n";
            return 0;
        }

        sim::Rng rng(42);
        const core::NetworkWeights weights =
            core::random_weights(net, rng);
        const core::NetworkPlan plan =
            acc.compilePlan(net, weights, bits);
        const core::PlanStats &ps = plan.stats();

        std::printf("execution plan: %s @ int%u\n", net.name().c_str(),
                    bits);
        std::printf("%-22s %-9s %10s %10s %10s %9s %8s\n", "layer",
                    "kind", "in", "out", "frozen", "scratchB", "front");
        bool executable = true;
        for (const core::PlannedLayer &pl : plan.layers()) {
            std::uint64_t frozen = 0;
            for (const dnn::QuantizedWeights &f : pl.frozen)
                frozen += f.count();
            // Non-conv layers have no conv front end; print "-" instead
            // of the (meaningless) Legacy default.
            const char *front =
                pl.layer.kind == dnn::LayerKind::Conv && bits <= 8
                    ? dnn::frontend_mode_name(pl.frontend)
                    : "-";
            std::printf("%-22s %-9s %10zu %10zu %10llu %9zu %8s\n",
                        pl.layer.name.c_str(),
                        dnn::layer_kind_name(pl.layer.kind), pl.inElems,
                        pl.outElems,
                        static_cast<unsigned long long>(frozen),
                        pl.scratchBytes, front);
            switch (pl.layer.kind) {
              case dnn::LayerKind::Conv:
              case dnn::LayerKind::Fc:
              case dnn::LayerKind::Relu:
              case dnn::LayerKind::Sigmoid:
              case dnn::LayerKind::Tanh:
              case dnn::LayerKind::MaxPool:
              case dnn::LayerKind::AvgPool:
              case dnn::LayerKind::Softmax:
                break;
              default:
                // Plannable for sizing, but only runnable standalone
                // (e.g. an LSTM cell via runLstmStep).
                executable = false;
                break;
            }
        }
        std::printf("arena: %zu B (2 x %zu B activations + %zu B peak "
                    "scratch, %zu-element peak activation)\n",
                    ps.arenaBytes, ps.activationBytes / 2,
                    ps.peakScratchBytes, ps.maxActivationElems);
        std::printf("frozen weights: %zu B (%llu values quantized once "
                    "at compile)\n",
                    ps.frozenWeightBytes,
                    static_cast<unsigned long long>(ps.frozenValues));
        if (ps.legacyFrontLayers + ps.fusedFrontLayers
                + ps.elidedFrontLayers
            > 0) {
            std::printf("conv front end: %zu legacy, %zu fused, %zu "
                        "elided; %zu B of quantized planes elided by "
                        "fusion\n",
                        ps.legacyFrontLayers, ps.fusedFrontLayers,
                        ps.elidedFrontLayers, ps.savedPlaneBytes);
        }

        // Amortization demo: run a batch through the plan so the reuse
        // counter is visible. Skipped when a layer only runs standalone
        // or the network is too large to execute functionally here.
        if (executable && net.totalMacs() <= (1ull << 26)) {
            std::vector<dnn::FloatTensor> inputs;
            for (unsigned i = 0; i < std::max(batch, 1u); ++i) {
                dnn::FloatTensor in({net.input().c, net.input().h,
                                     net.input().w});
                in.fillUniform(rng, 0.0, 1.0);
                inputs.push_back(std::move(in));
            }
            (void)acc.runFunctionalBatch(plan, inputs, threads);
            std::printf("amortization: %llu inference(s) served from "
                        "one compile\n",
                        static_cast<unsigned long long>(
                            plan.runsServed()));
        } else {
            std::printf("amortization: functional demo run skipped "
                        "(%s)\n",
                        executable ? "network too large to execute "
                                     "functionally here"
                                   : "layer only runs standalone");
        }
        return 0;
    }

    if (serveStats) {
        // Serving runs the functional plan, so it needs the same
        // guards as the --plan-stats demo: a plannable topology, only
        // runnable layer kinds, and a network small enough to execute
        // functionally at the shell.
        const unsigned bits = (precision == "4") ? 4u : 8u;
        core::PlanStats probe;
        if (!core::NetworkPlan::tryEstimate(net, bits, probe)) {
            std::cout << net.name()
                      << ": no execution plan — cannot serve this "
                         "topology functionally\n";
            return 0;
        }
        sim::Rng rng(42);
        const core::NetworkWeights weights =
            core::random_weights(net, rng);
        const core::NetworkPlan plan = acc.compilePlan(net, weights, bits);
        bool executable = net.totalMacs() <= (1ull << 26);
        for (const core::PlannedLayer &pl : plan.layers()) {
            switch (pl.layer.kind) {
              case dnn::LayerKind::Conv:
              case dnn::LayerKind::Fc:
              case dnn::LayerKind::Relu:
              case dnn::LayerKind::Sigmoid:
              case dnn::LayerKind::Tanh:
              case dnn::LayerKind::MaxPool:
              case dnn::LayerKind::AvgPool:
              case dnn::LayerKind::Softmax:
                break;
              default:
                executable = false;
                break;
            }
        }
        if (!executable) {
            std::cout << net.name()
                      << ": serving demo skipped (layer only runs "
                         "standalone, or network too large to execute "
                         "functionally here)\n";
            return 0;
        }

        serve::ServeConfig scfg;
        scfg.queueDepth = 32;
        // --batch selects the merge bound; the default of 1 would
        // disable batching, so serving defaults to 8 instead.
        scfg.batcher.maxBatch = batch > 1 ? batch : 8;
        scfg.batcher.windowTicks = 400;
        scfg.threads = threads;
        scfg.cyclesPerTick = 1000;
        scfg.stats.occupancyBins = scfg.batcher.maxBatch + 1;
        scfg.stats.latencyHistMaxTicks = 8192;
        scfg.stats.latencyBins = 128;
        serve::ServeEngine engine(plan, scfg);

        // Fixed-seed mixed trace: a Poisson stretch plus one burst —
        // the same replay for everyone, whatever the thread count.
        sim::Rng trng(7);
        serve::ArrivalTrace trace = serve::poisson_trace(
            trng, 24, /*meanGapTicks=*/500, /*deadline=*/20000);
        {
            const sim::Tick offset = trace.horizon() + 100;
            for (std::size_t i = 0; i < 8; ++i)
                trace.arrivals.push_back({.tick = offset,
                                          .inputSeed = 900 + i,
                                          .deadlineTicks = 20000});
        }
        const serve::ReplayReport rep = engine.replay(trace);
        std::printf("serving %s @ int%u: %zu arrivals, %zu served, "
                    "%.0f batches, end tick %llu\n",
                    net.name().c_str(), bits, trace.size(),
                    rep.served.size(), engine.stats().batches.value(),
                    static_cast<unsigned long long>(rep.endTick));
        engine.stats().dumpAll(std::cout);
        return 0;
    }

    // The main run and every requested baseline are independent jobs;
    // shard them across the sweep engine. Results land in fixed slots,
    // so the printed report below is identical for any thread count.
    map::RunResult run;
    std::optional<map::RunResult> nc_run;
    std::optional<map::RunResult> ey_run;
    std::optional<baseline::BaselineResult> cpu_run;
    std::optional<baseline::BaselineResult> gpu_run;
    {
        std::vector<sim::SweepJob> jobs;
        jobs.push_back({"bfree", [&](sim::SweepContext &) {
            run = acc.run(net, cfg);
        }});
        if (baseline == "neural-cache" || baseline == "all") {
            jobs.push_back({"neural_cache", [&](sim::SweepContext &) {
                nc_run = acc.runNeuralCache(net, cfg);
            }});
        }
        if (baseline == "eyeriss" || baseline == "all") {
            jobs.push_back({"eyeriss", [&](sim::SweepContext &) {
                ey_run = acc.runEyeriss(net);
            }});
        }
        if (baseline == "cpu" || baseline == "all") {
            jobs.push_back({"cpu", [&](sim::SweepContext &) {
                cpu_run = acc.runCpu(net, batch);
            }});
        }
        if (baseline == "gpu" || baseline == "all") {
            jobs.push_back({"gpu", [&](sim::SweepContext &) {
                gpu_run = acc.runGpu(net, batch);
            }});
        }
        sim::SweepRunner sweeper(threads);
        sweeper.run(std::move(jobs));
    }

    if (run.rejected) {
        std::cerr << "verification rejected " << run.network << ":\n";
        for (const verify::Diagnostic &d : run.diagnostics.diagnostics())
            std::cerr << "  " << d.toString() << "\n";
        return 1;
    }

    if (csv) {
        core::write_csv_header(std::cout);
        core::write_csv_rows(std::cout, run);
        return 0;
    }
    if (stats) {
        core::dump_run_stats(std::cout, run);
        return 0;
    }

    core::print_summary(std::cout, run);
    core::print_phase_shares(std::cout, "phase shares", run.time);
    std::cout << "energy breakdown:\n";
    core::print_energy_breakdown(std::cout, run.energy);
    if (layers) {
        std::cout << "\n";
        core::print_layer_table(std::cout, run);
    }

    auto compare = [&](const std::string &label, double seconds,
                       double joules) {
        std::cout << label << ": "
                  << core::format_seconds(seconds) << " / "
                  << core::format_joules(joules) << "  (BFree "
                  << seconds / run.secondsPerInference() << "x time, "
                  << joules / run.joulesPerInference()
                  << "x energy advantage)\n";
    };

    if (nc_run) {
        compare("Neural Cache", nc_run->secondsPerInference(),
                nc_run->joulesPerInference());
    }
    if (ey_run) {
        compare("Eyeriss (iso-area)", ey_run->secondsPerInference(),
                ey_run->joulesPerInference());
    }
    if (cpu_run) {
        compare(cpu_run->device, cpu_run->secondsPerInference,
                cpu_run->joulesPerInference);
    }
    if (gpu_run) {
        compare(gpu_run->device, gpu_run->secondsPerInference,
                gpu_run->joulesPerInference);
    }
    return 0;
}
