/**
 * @file
 * Transformer scenario: BERT-base and BERT-large on BFree vs the
 * CPU/GPU baselines (Table III), plus a functional single-head
 * attention computed with the reference executor to show the numerics
 * the fabric implements (softmax via exp-LUT + LUT division).
 *
 *   $ ./transformer_attention
 */

#include <iostream>

#include "core/bfree.hh"
#include "core/report.hh"
#include "dnn/reference.hh"
#include "lut/division.hh"
#include "lut/pwl.hh"

int
main()
{
    using namespace bfree;

    // ------------------------------------------------------------------
    // Functional flavor: LUT softmax against the exact softmax on one
    // attention score row.
    // ------------------------------------------------------------------
    const lut::PwlTable exp_table = lut::make_exp_table(32);
    const lut::DivisionLut div(4);
    const std::vector<double> scores = {1.2, -0.3, 0.8, 2.1, -1.0};
    const std::vector<double> lut_probs =
        lut::lut_softmax(scores, exp_table, div);

    std::cout << "== LUT softmax on one score row ==\n";
    for (std::size_t i = 0; i < scores.size(); ++i)
        std::cout << "  score " << scores[i] << " -> p=" << lut_probs[i]
                  << "\n";

    // ------------------------------------------------------------------
    // Architectural: Table III.
    // ------------------------------------------------------------------
    core::BFreeAccelerator accelerator;
    for (const dnn::Network &net :
         {dnn::make_bert_base(), dnn::make_bert_large()}) {
        std::cout << "\n== " << net.name() << " ==\n";
        for (unsigned batch : {1u, 16u}) {
            map::ExecConfig cfg;
            cfg.batch = batch;
            const map::RunResult bfree_r = accelerator.run(net, cfg);
            const auto cpu = accelerator.runCpu(net, batch);
            const auto gpu = accelerator.runGpu(net, batch);

            std::cout << "batch " << batch << ":\n";
            std::cout << "  CPU   "
                      << core::format_seconds(cpu.secondsPerInference)
                      << "  "
                      << core::format_joules(cpu.joulesPerInference)
                      << "\n";
            std::cout << "  GPU   "
                      << core::format_seconds(gpu.secondsPerInference)
                      << "  "
                      << core::format_joules(gpu.joulesPerInference)
                      << "\n";
            std::cout << "  BFree "
                      << core::format_seconds(
                             bfree_r.secondsPerInference())
                      << "  "
                      << core::format_joules(
                             bfree_r.joulesPerInference())
                      << "  ("
                      << cpu.secondsPerInference
                             / bfree_r.secondsPerInference()
                      << "x vs CPU, "
                      << gpu.secondsPerInference
                             / bfree_r.secondsPerInference()
                      << "x vs GPU)\n";
        }
    }

    // K/Q/V overlap note (Section IV-B2): V's projection hides behind
    // the softmax/scalar work on P.
    std::cout << "\nScheduling: K, Q, V projections are independent; "
                 "BFree overlaps V with the P softmax pipeline.\n";
    return 0;
}
