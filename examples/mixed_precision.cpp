/**
 * @file
 * Mixed-precision scenario (Fig. 14): VGG-16 with layer-wise 4/8-bit
 * execution across the three main-memory options and batch sizes,
 * showing the ~50% execution-time reduction the reconfigurable LUT
 * datapath buys when most layers drop to 4-bit.
 *
 *   $ ./mixed_precision
 */

#include <iostream>

#include "core/bfree.hh"
#include "core/report.hh"
#include "dnn/quantize.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator accelerator;

    dnn::Network vgg8 = dnn::make_vgg16();
    dnn::Network vggmix = dnn::make_vgg16();
    dnn::apply_mixed_precision(vggmix);

    std::cout << "mixed precision: "
              << 100.0 * dnn::fraction_macs_at_4bit(vggmix)
              << "% of MACs at 4-bit\n\n";

    std::cout << "memory    batch  precision  per-image latency"
                 "  (compute share)\n";
    for (auto kind : {tech::MainMemoryKind::DRAM,
                      tech::MainMemoryKind::EDRAM,
                      tech::MainMemoryKind::HBM}) {
        for (unsigned batch : {1u, 16u}) {
            for (const auto *mode : {"8-bit", "mixed"}) {
                const dnn::Network &net =
                    mode[0] == '8' ? vgg8 : vggmix;
                map::ExecConfig cfg;
                cfg.memory = kind;
                cfg.batch = batch;
                const map::RunResult r = accelerator.run(net, cfg);
                std::cout
                    << tech::main_memory_params(kind).name() << "\t  "
                    << batch << "\t " << mode << "\t    "
                    << core::format_seconds(r.secondsPerInference())
                    << "\t   ("
                    << 100.0 * r.time.compute
                           / r.secondsPerInference()
                    << "% compute)\n";
            }
        }
    }

    std::cout << "\nWith HBM the channel stops being the bottleneck and "
                 "the 4-bit datapath speedup shows through.\n";
    return 0;
}
