/**
 * @file
 * Design-space exploration: sweep slice count, main-memory technology
 * and precision for one workload and report the Pareto-interesting
 * points — the kind of study a downstream adopter runs before
 * committing silicon.
 *
 *   $ ./design_space [vgg16|inception|bert-base]
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/bfree.hh"
#include "core/report.hh"
#include "dnn/quantize.hh"

int
main(int argc, char **argv)
{
    using namespace bfree;

    const std::string which = argc > 1 ? argv[1] : "vgg16";
    dnn::Network base = [&] {
        if (which == "inception")
            return dnn::make_inception_v3();
        if (which == "bert-base")
            return dnn::make_bert_base();
        return dnn::make_vgg16();
    }();

    core::BFreeAccelerator accelerator;
    const tech::AreaReport area = accelerator.area();

    std::cout << "== design space: " << base.name()
              << " (batch 16) ==\n";
    std::cout << "BFree logic per slice: "
              << area.sliceBfreeMm2 - area.sliceBaseMm2
              << " mm^2 (+" << 100.0 * area.bceFractionOfSlice
              << "%)\n\n";

    struct Point
    {
        unsigned slices;
        tech::MainMemoryKind memory;
        bool mixed;
        double seconds;
        double joules;
    };
    std::vector<Point> points;

    for (unsigned slices : {1u, 4u, 14u}) {
        for (auto memory : {tech::MainMemoryKind::DRAM,
                            tech::MainMemoryKind::HBM}) {
            for (bool mixed : {false, true}) {
                dnn::Network net = base;
                if (mixed)
                    dnn::apply_mixed_precision(net);
                map::ExecConfig cfg;
                cfg.batch = 16;
                cfg.memory = memory;
                cfg.mapper.slices = slices;
                const map::RunResult r = accelerator.run(net, cfg);
                points.push_back({slices, memory, mixed,
                                  r.secondsPerInference(),
                                  r.joulesPerInference()});
            }
        }
    }

    std::cout << "slices  memory  precision   latency      energy\n";
    for (const Point &p : points) {
        std::cout << "  " << p.slices << "\t"
                  << tech::main_memory_params(p.memory).name() << "\t"
                  << (p.mixed ? "mixed" : "8-bit") << "\t    "
                  << core::format_seconds(p.seconds) << "  "
                  << core::format_joules(p.joules) << "\n";
    }

    // The fastest and the most frugal points.
    const Point *fastest = &points[0];
    const Point *frugal = &points[0];
    for (const Point &p : points) {
        if (p.seconds < fastest->seconds)
            fastest = &p;
        if (p.joules < frugal->joules)
            frugal = &p;
    }
    std::cout << "\nfastest: " << fastest->slices << " slices / "
              << tech::main_memory_params(fastest->memory).name()
              << (fastest->mixed ? " / mixed" : " / 8-bit") << " at "
              << core::format_seconds(fastest->seconds) << "\n";
    std::cout << "lowest energy: " << frugal->slices << " slices / "
              << tech::main_memory_params(frugal->memory).name()
              << (frugal->mixed ? " / mixed" : " / 8-bit") << " at "
              << core::format_joules(frugal->joules) << "\n";
    return 0;
}
