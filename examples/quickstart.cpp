/**
 * @file
 * Quickstart: build the accelerator, run a tiny quantized CNN through
 * the real LUT datapath, then estimate latency/energy of a full
 * network on the modelled 35 MB cache.
 *
 *   $ ./quickstart
 */

#include <iostream>

#include "core/bfree.hh"
#include "core/functional.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    // ------------------------------------------------------------------
    // 1. Functional: quantized inference through the LUT datapath.
    // ------------------------------------------------------------------
    const dnn::Network tiny = dnn::make_tiny_cnn();
    sim::Rng rng(1);
    const core::NetworkWeights weights =
        core::random_weights(tiny, rng);
    dnn::FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    core::FunctionalExecutor executor;
    const core::FunctionalResult result =
        executor.run(tiny, input, weights, /*bits=*/8);

    std::cout << "== functional run of " << tiny.name() << " ==\n";
    std::cout << "class probabilities:";
    for (std::size_t i = 0; i < result.output.size(); ++i)
        std::cout << " " << result.output[i];
    std::cout << "\n";
    std::cout << "BCE activity: " << result.stats.macs << " MACs, "
              << result.stats.cycles << " cycles, "
              << result.stats.counts.lutLookups << " LUT lookups, "
              << result.stats.counts.romLookups << " ROM lookups\n\n";

    // ------------------------------------------------------------------
    // 2. Architectural: latency/energy of Inception-v3 on the LLC.
    // ------------------------------------------------------------------
    core::BFreeAccelerator accelerator;
    const dnn::Network net = dnn::make_inception_v3();
    const map::RunResult run = accelerator.run(net);

    std::cout << "== architectural run ==\n";
    core::print_summary(std::cout, run);
    core::print_phase_shares(std::cout, "phase shares", run.time);
    std::cout << "energy breakdown:\n";
    core::print_energy_breakdown(std::cout, run.energy);

    // ------------------------------------------------------------------
    // 3. The headline comparison in one call each.
    // ------------------------------------------------------------------
    const map::RunResult nc = accelerator.runNeuralCache(net);
    std::cout << "\nNeural Cache baseline: "
              << core::format_seconds(nc.secondsPerInference())
              << " -> BFree speedup "
              << nc.secondsPerInference() / run.secondsPerInference()
              << "x\n";
    return 0;
}
