/**
 * @file
 * Quickstart: compile an execution plan for a tiny quantized CNN, run
 * it through the real LUT datapath (compile once, amortize across
 * inputs), then estimate latency/energy of a full network on the
 * modelled 35 MB cache.
 *
 *   $ ./quickstart
 */

#include <chrono>
#include <iostream>

#include "core/bfree.hh"
#include "core/functional.hh"
#include "core/report.hh"

namespace {

double
ms_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main()
{
    using namespace bfree;

    // ------------------------------------------------------------------
    // 1. Functional: plan once, then quantized inference through the
    //    LUT datapath with zero steady-state allocations.
    // ------------------------------------------------------------------
    const dnn::Network tiny = dnn::make_tiny_cnn();
    sim::Rng rng(1);
    const core::NetworkWeights weights =
        core::random_weights(tiny, rng);
    dnn::FloatTensor input({1, 8, 8});
    input.fillUniform(rng, 0.0, 1.0);

    // Compile: weights quantized and frozen, scratch arena sized.
    const auto t_compile = std::chrono::steady_clock::now();
    const core::NetworkPlan plan =
        core::NetworkPlan::compile(tiny, weights, /*bits=*/8);
    const double compile_ms = ms_since(t_compile);

    core::FunctionalExecutor executor;
    const core::FunctionalResult result = executor.run(plan, input);

    // Steady state: the plan is amortized across every further input.
    const int warm_runs = 50;
    const auto t_warm = std::chrono::steady_clock::now();
    for (int i = 0; i < warm_runs; ++i)
        (void)executor.run(plan, input);
    const double warm_ms = ms_since(t_warm) / warm_runs;

    std::cout << "== functional run of " << tiny.name() << " ==\n";
    std::cout << "class probabilities:";
    for (std::size_t i = 0; i < result.output.size(); ++i)
        std::cout << " " << result.output[i];
    std::cout << "\n";
    std::cout << "BCE activity: " << result.stats.macs << " MACs, "
              << result.stats.cycles << " cycles, "
              << result.stats.counts.lutLookups << " LUT lookups, "
              << result.stats.counts.romLookups << " ROM lookups\n";
    std::cout << "plan: " << plan.stats().frozenValues
              << " weights frozen in " << compile_ms << " ms, arena "
              << plan.stats().arenaBytes << " B; steady state " << warm_ms
              << " ms/run over " << plan.runsServed() << " runs\n\n";

    // ------------------------------------------------------------------
    // 2. Architectural: latency/energy of Inception-v3 on the LLC.
    // ------------------------------------------------------------------
    core::BFreeAccelerator accelerator;
    const dnn::Network net = dnn::make_inception_v3();
    const map::RunResult run = accelerator.run(net);

    std::cout << "== architectural run ==\n";
    core::print_summary(std::cout, run);
    core::print_phase_shares(std::cout, "phase shares", run.time);
    std::cout << "energy breakdown:\n";
    core::print_energy_breakdown(std::cout, run.energy);

    // ------------------------------------------------------------------
    // 3. The headline comparison in one call each.
    // ------------------------------------------------------------------
    const map::RunResult nc = accelerator.runNeuralCache(net);
    std::cout << "\nNeural Cache baseline: "
              << core::format_seconds(nc.secondsPerInference())
              << " -> BFree speedup "
              << nc.secondsPerInference() / run.secondsPerInference()
              << "x\n";
    return 0;
}
