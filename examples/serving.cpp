/**
 * @file
 * Serving: put a compiled plan behind the request queue + continuous
 * batcher and replay a bursty arrival trace against a latency SLO.
 *
 * Requests arrive on a virtual clock whether or not the engine is
 * busy; the batcher merges whatever queued into the next in-flight
 * batch (up to the merge bound, or when the oldest request's batching
 * window expires). The replay is deterministic: the same trace gives
 * the same batch compositions, outputs and stats on every run and at
 * every thread count.
 *
 *   $ ./serving
 */

#include <cstdio>
#include <iostream>

#include "core/network_plan.hh"
#include "dnn/layer.hh"
#include "dnn/network.hh"
#include "sim/random.hh"

#include "serve/server.hh"
#include "serve/trace.hh"

int
main()
{
    using namespace bfree;

    // A small MLP as the served model; weights frozen at compile.
    dnn::Network net("served-mlp", {64, 1, 1});
    net.add(dnn::make_fc("fc1", 64, 128));
    net.add(dnn::make_activation("act1", dnn::LayerKind::Relu,
                                 {128, 1, 1}));
    net.add(dnn::make_fc("fc2", 128, 10));
    net.add(dnn::make_activation("prob", dnn::LayerKind::Softmax,
                                 {10, 1, 1}));
    sim::Rng rng(21);
    const core::NetworkWeights weights = core::random_weights(net, rng);
    const core::NetworkPlan plan =
        core::NetworkPlan::compile(net, weights, /*bits=*/8);

    serve::ServeConfig cfg;
    cfg.queueDepth = 16;        // admission bound: 17th waiter rejected
    cfg.batcher.maxBatch = 4;   // merge at most 4 requests per dispatch
    cfg.batcher.windowTicks = 250; // ... or dispatch a partial batch
    cfg.cyclesPerTick = 100;
    cfg.stats.latencyHistMaxTicks = 8192;
    serve::ServeEngine engine(plan, cfg);

    // Bursty arrivals with a deadline: bursts of 6 against a merge
    // bound of 4, so queueing (and the occasional SLO miss) is visible.
    sim::Rng trng(5);
    const serve::ArrivalTrace trace = serve::bursty_trace(
        trng, /*count=*/30, /*burstSize=*/6,
        /*meanBurstGapTicks=*/3000, /*deadline=*/2000);

    const serve::ReplayReport rep = engine.replay(trace);

    std::cout << "batch schedule:\n" << rep.batchLog;

    const serve::ServeStats &s = engine.stats();
    std::printf("\nserved %zu/%zu requests in %llu ticks, "
                "%.0f batches (mean occupancy %.2f)\n",
                rep.served.size(), trace.size(),
                static_cast<unsigned long long>(rep.endTick),
                s.batches.value(),
                s.batchedRequests.value() / s.batches.value());
    std::printf("latency p50/p95/p99: %.0f/%.0f/%.0f ticks, "
                "deadline misses: %.0f\n",
                s.latencyPercentile(0.50), s.latencyPercentile(0.95),
                s.latencyPercentile(0.99), s.deadlineMisses.value());

    // The first served request's lifecycle, straight off its stamps.
    const serve::Request &first = rep.served.front();
    std::printf("request %llu: enqueued @%llu, dispatched @%llu, "
                "completed @%llu\n",
                static_cast<unsigned long long>(first.id),
                static_cast<unsigned long long>(first.enqueueTick),
                static_cast<unsigned long long>(first.dispatchTick),
                static_cast<unsigned long long>(first.completeTick));
    return 0;
}
