/**
 * @file
 * RNN scenario: the paper's LSTM-1024 over a 300-step TIMIT-style
 * sequence. The model is cache-resident, so the weight load is paid
 * once and each timestep runs start-to-finish inside the SRAM slice —
 * the case where CPUs/GPUs cannot hide their data movement (Table III).
 *
 * Also runs a small functional LSTM step with the reference executor
 * using the LUT sigmoid/tanh tables to show the numerics.
 *
 *   $ ./lstm_sequence
 */

#include <iostream>

#include "core/bfree.hh"
#include "core/functional.hh"
#include "core/report.hh"
#include "dnn/reference.hh"
#include "lut/pwl.hh"
#include "sim/random.hh"

int
main()
{
    using namespace bfree;

    // ------------------------------------------------------------------
    // Functional: one LSTM step, LUT activations vs exact.
    // ------------------------------------------------------------------
    const dnn::Layer cell = dnn::make_lstm_cell("demo", 8, 16);
    sim::Rng rng(3);
    std::vector<float> weights(4 * (8 + 16) * 16);
    std::vector<float> bias(4 * 16);
    for (float &w : weights)
        w = static_cast<float>(rng.uniformReal(-0.4, 0.4));
    for (float &b : bias)
        b = static_cast<float>(rng.uniformReal(-0.1, 0.1));

    dnn::LstmState state;
    state.h.assign(16, 0.0f);
    state.c.assign(16, 0.0f);
    std::vector<float> x(8);
    for (float &v : x)
        v = static_cast<float>(rng.uniformReal(-1.0, 1.0));

    const lut::PwlTable sigmoid = lut::make_sigmoid_table(32);
    const lut::PwlTable tanh_t = lut::make_tanh_table(32);

    // Exact float reference vs the same step through the real LUT
    // datapath (gate matvecs on the matmul-mode BCE, PWL activations).
    const dnn::LstmState exact =
        dnn::reference_lstm_step(cell, x, state, weights, bias);
    core::FunctionalExecutor executor;
    core::LayerWeights packed;
    packed.weights = weights;
    packed.bias = bias;
    const dnn::LstmState lut_state =
        executor.runLstmStep(cell, x, state, packed);

    std::cout << "== one functional LSTM step ==\n";
    std::cout << "h[0..3] exact:    ";
    for (int i = 0; i < 4; ++i)
        std::cout << exact.h[i] << " ";
    std::cout << "\nh[0..3] LUT path: ";
    for (int i = 0; i < 4; ++i)
        std::cout << lut_state.h[i] << " ";
    std::cout << "\n(" << executor.stats().macs
              << " MACs through the hardwired ROM, "
              << executor.stats().counts.lutLookups
              << " PWL table fetches)\n";
    std::cout << "LUT sigmoid(0.5) = " << sigmoid.evaluate(0.5)
              << " (exact 0.6225), LUT tanh(0.5) = "
              << tanh_t.evaluate(0.5) << " (exact 0.4621)\n";
    state = exact;

    // ------------------------------------------------------------------
    // Architectural: the Table III LSTM row.
    // ------------------------------------------------------------------
    core::BFreeAccelerator accelerator;
    const dnn::Network lstm = dnn::make_lstm();

    std::cout << "\n== " << lstm.name() << ", sequence of "
              << lstm.timesteps << " steps ==\n";
    const map::RunResult r = accelerator.run(lstm);
    core::print_summary(std::cout, r);
    core::print_phase_row(std::cout, "phases", r.time);

    const auto cpu = accelerator.runCpu(lstm, 1);
    const auto gpu = accelerator.runGpu(lstm, 1);
    std::cout << "CPU: " << core::format_seconds(cpu.secondsPerInference)
              << ", GPU: "
              << core::format_seconds(gpu.secondsPerInference)
              << " -> BFree is "
              << cpu.secondsPerInference / r.secondsPerInference()
              << "x / "
              << gpu.secondsPerInference / r.secondsPerInference()
              << "x faster (paper: ~2000x / ~220x; weights resident in "
                 "cache)\n";

    std::cout << "weights resident in cache: "
              << (lstm.totalWeightBytes() < 35ull * 1024 * 1024 / 2
                      ? "yes"
                      : "no")
              << " (" << lstm.totalWeightBytes() / 1024 / 1024
              << " MB of 35 MB)\n";
    return 0;
}
