/**
 * @file
 * CNN scenario: layer-by-layer inspection of VGG-16 on BFree — which
 * layers pick matmul mode, where the time and energy go, how batch
 * size changes the picture (the workload the paper's Fig. 13/14
 * study), and what the functional execution plan costs up front vs in
 * steady state.
 *
 *   $ ./cnn_inference
 */

#include <chrono>
#include <iostream>

#include "core/bfree.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator accelerator;
    const dnn::Network vgg = dnn::make_vgg16();

    std::cout << "== " << vgg.name() << " on BFree (batch 1, DRAM) ==\n";
    const map::RunResult b1 = accelerator.run(vgg);
    core::print_layer_table(std::cout, b1, 24);
    std::cout << "\n";
    core::print_summary(std::cout, b1);
    core::print_phase_shares(std::cout, "phase shares", b1.time);

    std::cout << "\n== batching amortizes the weight stream ==\n";
    for (unsigned batch : {1u, 4u, 16u}) {
        map::ExecConfig cfg;
        cfg.batch = batch;
        const map::RunResult r = accelerator.run(vgg, cfg);
        std::cout << "batch " << batch << ": "
                  << core::format_seconds(r.secondsPerInference())
                  << " / image ("
                  << core::format_seconds(r.time.weightLoad)
                  << " weight load)\n";
    }

    std::cout << "\n== execution plan: compile once, amortize ==\n";
    // The dry planning pass sizes VGG-16's steady-state arena without
    // touching a weight; the full compile/steady-state split is shown
    // on the tiny CNN, where functional inference runs in milliseconds.
    core::PlanStats vgg_plan;
    if (core::NetworkPlan::tryEstimate(vgg, 8, vgg_plan))
        std::cout << "VGG-16 plan estimate: arena "
                  << vgg_plan.arenaBytes / (1024.0 * 1024.0)
                  << " MB for "
                  << vgg_plan.maxActivationElems << "-element "
                  << "activations\n";

    const dnn::Network tiny = dnn::make_tiny_cnn();
    sim::Rng rng(7);
    const core::NetworkWeights tiny_w = core::random_weights(tiny, rng);
    dnn::FloatTensor image({1, 8, 8});
    image.fillUniform(rng, 0.0, 1.0);

    using Clock = std::chrono::steady_clock;
    const auto c0 = Clock::now();
    const core::NetworkPlan plan = accelerator.compilePlan(tiny, tiny_w);
    const auto c1 = Clock::now();
    core::FunctionalExecutor exec;
    (void)exec.run(plan, image); // cold: sizes arena, seeds memo tables
    const auto w0 = Clock::now();
    const int reps = 50;
    for (int i = 0; i < reps; ++i)
        (void)exec.run(plan, image);
    const auto w1 = Clock::now();
    const auto ms = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration<double, std::milli>(b - a).count();
    };
    std::cout << "tiny CNN: plan compile " << ms(c0, c1)
              << " ms (one-time), steady state " << ms(w0, w1) / reps
              << " ms/image across " << plan.runsServed() << " runs\n";

    std::cout << "\n== iso-area Eyeriss comparison (one slice) ==\n";
    map::ExecConfig slice_cfg;
    slice_cfg.mapper.slices = 1;
    const map::RunResult slice_run = accelerator.run(vgg, slice_cfg);
    const map::RunResult eyeriss = accelerator.runEyeriss(vgg);
    std::cout << "BFree (2.5 MB slice): "
              << core::format_seconds(slice_run.secondsPerInference())
              << "\nEyeriss (iso-area):   "
              << core::format_seconds(eyeriss.secondsPerInference())
              << "\nspeedup: "
              << eyeriss.secondsPerInference()
                     / slice_run.secondsPerInference()
              << "x (paper: 3.97x)\n";
    return 0;
}
