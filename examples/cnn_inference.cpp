/**
 * @file
 * CNN scenario: layer-by-layer inspection of VGG-16 on BFree — which
 * layers pick matmul mode, where the time and energy go, and how batch
 * size changes the picture (the workload the paper's Fig. 13/14 study).
 *
 *   $ ./cnn_inference
 */

#include <iostream>

#include "core/bfree.hh"
#include "core/report.hh"

int
main()
{
    using namespace bfree;

    core::BFreeAccelerator accelerator;
    const dnn::Network vgg = dnn::make_vgg16();

    std::cout << "== " << vgg.name() << " on BFree (batch 1, DRAM) ==\n";
    const map::RunResult b1 = accelerator.run(vgg);
    core::print_layer_table(std::cout, b1, 24);
    std::cout << "\n";
    core::print_summary(std::cout, b1);
    core::print_phase_shares(std::cout, "phase shares", b1.time);

    std::cout << "\n== batching amortizes the weight stream ==\n";
    for (unsigned batch : {1u, 4u, 16u}) {
        map::ExecConfig cfg;
        cfg.batch = batch;
        const map::RunResult r = accelerator.run(vgg, cfg);
        std::cout << "batch " << batch << ": "
                  << core::format_seconds(r.secondsPerInference())
                  << " / image ("
                  << core::format_seconds(r.time.weightLoad)
                  << " weight load)\n";
    }

    std::cout << "\n== iso-area Eyeriss comparison (one slice) ==\n";
    map::ExecConfig slice_cfg;
    slice_cfg.mapper.slices = 1;
    const map::RunResult slice_run = accelerator.run(vgg, slice_cfg);
    const map::RunResult eyeriss = accelerator.runEyeriss(vgg);
    std::cout << "BFree (2.5 MB slice): "
              << core::format_seconds(slice_run.secondsPerInference())
              << "\nEyeriss (iso-area):   "
              << core::format_seconds(eyeriss.secondsPerInference())
              << "\nspeedup: "
              << eyeriss.secondsPerInference()
                     / slice_run.secondsPerInference()
              << "x (paper: 3.97x)\n";
    return 0;
}
